//! # SQLB — Satisfaction-based Query Load Balancing
//!
//! A Rust reproduction of *"SQLB: A Query Allocation Framework for
//! Autonomous Consumers and Providers"* (Quiané-Ruiz, Lamarre, Valduriez —
//! VLDB 2007).
//!
//! SQLB allocates queries at a mediator sitting between **autonomous
//! consumers and providers**. Instead of only balancing load, it balances
//! the *intentions* of both sides — what consumers want from providers and
//! what providers want to work on — weighted by how satisfied each side has
//! been recently, so nobody is punished for long and nobody starves.
//!
//! This facade crate re-exports the individual crates of the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | identifiers, the query model `q = <c, d, n>`, bounded value domains |
//! | [`metrics`] | mean / Jain fairness / min–max balance (Section 4), time series |
//! | [`obs`] | zero-overhead-when-off observability: counters, histograms, flight recorder |
//! | [`satisfaction`] | adequation, satisfaction, allocation satisfaction (Section 3) |
//! | [`matchmaking`] | capability registry and matchmakers producing `P_q` |
//! | [`reputation`] | provider reputation used by consumer intentions |
//! | [`core`] | intention functions, scoring, Algorithm 1, the SQLB allocator |
//! | [`baselines`] | Capacity based, Mariposa-like, Random, Round-robin |
//! | [`agents`] | consumer/provider agents, utilization, departures, populations |
//! | [`mediation`] | concurrent mediation runtime (fork / waituntil / timeout) |
//! | [`transport`] | socket-backed mediation: TCP/UDS wave server and participant hosts |
//! | [`sim`] | discrete-event simulator and per-figure experiment drivers |
//!
//! ## Quick start
//!
//! Score and allocate a query with SQLB directly:
//!
//! ```
//! use sqlb::prelude::*;
//!
//! // A query from consumer c0 asking for one provider.
//! let query = Query::single(QueryId::new(1), ConsumerId::new(0), QueryClass::Light, SimTime::ZERO);
//!
//! // What the mediation gathered about the two candidates: the consumer's
//! // intention for each provider and each provider's intention for the query.
//! let candidates = vec![
//!     CandidateInfo::new(ProviderId::new(0))
//!         .with_consumer_intention(0.8)
//!         .with_provider_intention(-0.4), // the consumer's favourite does not want it
//!     CandidateInfo::new(ProviderId::new(1))
//!         .with_consumer_intention(0.6)
//!         .with_provider_intention(0.7), // both sides are happy with this one
//! ];
//!
//! let mut sqlb = SqlbAllocator::new();
//! let mut state = MediatorState::paper_default();
//! let allocation = sqlb.allocate(&query, &candidates, &state);
//! state.record_allocation(&query, &candidates, &allocation);
//! assert_eq!(allocation.selected, vec![ProviderId::new(1)]);
//! ```
//!
//! Or run a full simulated system (the paper's evaluation substrate):
//!
//! ```
//! use sqlb::sim::{engine::run_simulation, Method, SimulationConfig, WorkloadPattern};
//!
//! let config = SimulationConfig::scaled(8, 16, 60.0, 7)
//!     .with_workload(WorkloadPattern::Fixed(0.5));
//! let report = run_simulation(config, Method::Sqlb).unwrap();
//! assert!(report.completed_queries > 0);
//! ```

#![warn(missing_docs)]

pub use sqlb_agents as agents;
pub use sqlb_baselines as baselines;
pub use sqlb_core as core;
pub use sqlb_matchmaking as matchmaking;
pub use sqlb_mediation as mediation;
pub use sqlb_metrics as metrics;
pub use sqlb_obs as obs;
pub use sqlb_reputation as reputation;
pub use sqlb_satisfaction as satisfaction;
pub use sqlb_sim as sim;
pub use sqlb_transport as transport;
pub use sqlb_types as types;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use sqlb_agents::{
        AdaptationClass, CapacityClass, ConsumerAgent, ConsumerConfig, ConsumerDepartureRule,
        DepartureReason, EnabledReasons, InterestClass, Population, PopulationConfig,
        ProviderAgent, ProviderConfig, ProviderDepartureRule, UtilizationWindow,
    };
    pub use sqlb_baselines::{CapacityBased, MariposaLike, RandomAllocator, RoundRobinAllocator};
    pub use sqlb_core::allocation::{
        Allocation, AllocationMethod, Bid, CandidateInfo, MediatorView, UniformView,
    };
    pub use sqlb_core::scoring::{omega, provider_score, rank_candidates, RankedProvider};
    pub use sqlb_core::{
        consumer_intention, provider_intention, IntentionParams, MediatorState, OmegaPolicy,
        QueryAllocationModule, SqlbAllocator, SqlbConfig,
    };
    pub use sqlb_matchmaking::{Capability, CapabilityRegistry, Matchmaker, UniversalMatchmaker};
    pub use sqlb_metrics::{fairness, mean, min_max_ratio, Summary, TimeSeries};
    pub use sqlb_reputation::ReputationStore;
    pub use sqlb_satisfaction::{allocation_satisfaction, ConsumerTracker, ProviderTracker};
    pub use sqlb_sim::{Method, SimulationConfig, Simulator, WorkloadPattern};
    pub use sqlb_types::{
        Capacity, ConsumerId, Intention, Preference, ProviderId, Query, QueryClass,
        QueryDescription, QueryId, Reputation, SimDuration, SimTime, Utilization, WorkUnits,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_end_to_end_path() {
        let query = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Heavy,
            SimTime::ZERO,
        );
        let candidates = vec![
            CandidateInfo::new(ProviderId::new(0))
                .with_consumer_intention(0.9)
                .with_provider_intention(0.9),
            CandidateInfo::new(ProviderId::new(1))
                .with_consumer_intention(-0.9)
                .with_provider_intention(-0.9),
        ];
        let mut sqlb = SqlbAllocator::new();
        let state = MediatorState::paper_default();
        let allocation = sqlb.allocate(&query, &candidates, &state);
        assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
    }
}
