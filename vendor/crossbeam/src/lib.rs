//! Offline stand-in for the `crossbeam` channel API used by this
//! workspace, backed by `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with a `crossbeam::channel`-shaped API.

    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, every sender is gone, or the
        /// deadline passes.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let timeout = deadline.saturating_duration_since(Instant::now());
            self.0.recv_timeout(timeout)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            tx.clone().send(42).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            assert_eq!(rx.try_recv(), Ok(42));
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn recv_deadline_times_out() {
            let (tx, rx) = unbounded::<u32>();
            let deadline = Instant::now() + Duration::from_millis(20);
            assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
            drop(tx);
            let deadline = Instant::now() + Duration::from_millis(20);
            assert_eq!(
                rx.recv_deadline(deadline),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
