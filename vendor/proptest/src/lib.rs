//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! Instead of shrinking and persistence, this shim runs each property a
//! fixed number of cases with inputs drawn from a deterministic generator
//! seeded from the test's name. Supported surface:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) over functions of the form `fn name(x in strategy, ...)`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] (return
//!   [`TestCaseError`] instead of panicking, so they compose with `?`);
//! * range strategies over integers and floats, tuple strategies,
//!   [`collection::vec`], [`bool::ANY`](crate::bool::ANY),
//!   [`num::f64::ANY`](crate::num::f64::ANY), [`Just`] and
//!   [`Strategy::prop_map`].

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Deterministic generator driving every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name, so each property gets
    /// a stable but distinct stream.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A failed property case. Constructed by the `prop_assert*` macros; test
/// helpers can also return it from `Result<(), TestCaseError>` functions.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-property configuration. Only the number of cases is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of arbitrary values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        (start + rng.unit_f64() * (end - start)).min(end)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod bool {
    //! Boolean strategies.

    /// Strategy yielding arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Any boolean.
    pub const ANY: AnyBool = AnyBool;

    impl crate::Strategy for AnyBool {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut crate::TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64` strategies.

        /// Strategy yielding arbitrary `f64`s, including non-finite values.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        /// Any `f64`: special values (±0, ±∞, NaN, subnormals) mixed with
        /// arbitrary bit patterns.
        pub const ANY: AnyF64 = AnyF64;

        impl crate::Strategy for AnyF64 {
            type Value = ::core::primitive::f64;

            fn sample(&self, rng: &mut crate::TestRng) -> ::core::primitive::f64 {
                match rng.next_u64() % 10 {
                    0 => ::core::primitive::f64::NAN,
                    1 => ::core::primitive::f64::INFINITY,
                    2 => ::core::primitive::f64::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => ::core::primitive::f64::MIN_POSITIVE / 2.0, // subnormal
                    _ => ::core::primitive::f64::from_bits(rng.next_u64()),
                }
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // A `match` avoids negating the condition, which trips clippy's
        // neg_cmp_op_on_partial_ord lint for float comparisons.
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
            }
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(x in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property '{}' failed at case {}: {}",
                        stringify!($name),
                        __case,
                        __e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn helper(x: f64) -> Result<(), TestCaseError> {
        prop_assert!(x >= 0.0, "got {x}");
        Ok(())
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..=1.0, b in crate::bool::ANY) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..=1.0).contains(&y));
            prop_assert!((b as u8) <= 1);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec((0u32..5, crate::bool::ANY), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in &v {
                prop_assert!(*n < 5);
            }
        }

        #[test]
        fn question_mark_composes(x in 0.0f64..1.0) {
            helper(x)?;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(v in (1u32..3).prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn any_f64_hits_special_values() {
        let mut rng = TestRng::for_test("any_f64");
        let mut saw_nan = false;
        let mut saw_inf = false;
        let mut saw_finite = false;
        for _ in 0..200 {
            let x = crate::Strategy::sample(&crate::num::f64::ANY, &mut rng);
            saw_nan |= x.is_nan();
            saw_inf |= x.is_infinite();
            saw_finite |= x.is_finite();
        }
        assert!(saw_nan && saw_inf && saw_finite);
    }
}
