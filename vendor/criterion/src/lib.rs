//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! Each benchmark runs a short warm-up, picks a batch size so one timed
//! batch lasts at least ~50 µs, then measures batches until a small time
//! budget is exhausted. Results (mean ns/iter) are printed at the end of
//! `main` and kept on the [`Criterion`] value so harnesses can export them
//! (see [`Criterion::results`] and [`Criterion::export_json`]).
//!
//! There is no statistical analysis, no plotting and no comparison with
//! previous runs — just stable, quick measurements suitable for spotting
//! order-of-magnitude regressions offline.

use std::fmt;
use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/id` label.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_millis(200),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let result = run_bench(id.to_string(), Duration::from_millis(200), f);
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a summary table to stdout.
    pub fn print_summary(&self) {
        println!("{:<54} {:>14} {:>12}", "benchmark", "mean_ns/iter", "iters");
        for r in &self.results {
            println!("{:<54} {:>14.1} {:>12}", r.id, r.mean_ns, r.iterations);
        }
    }

    /// Writes the results as a JSON array to `path`.
    pub fn export_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.mean_ns,
                r.iterations,
                comma
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }
}

/// A group of related benchmarks sharing a label prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the time budget for each benchmark of the group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        // Cap the budget: this shim is for quick offline smoke benches.
        self.measurement_time = time.min(Duration::from_millis(500));
        self
    }

    /// Accepted for API compatibility; sampling is time-budget driven here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let result = run_bench(label, self.measurement_time, f);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    budget: Duration,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f` until the time budget is exhausted.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and estimate the cost of one call.
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Pick a batch size lasting at least ~50 µs per measurement.
        let batch = (Duration::from_micros(50).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iterations += batch as u64;
        }
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }
}

fn run_bench(id: String, budget: Duration, mut f: impl FnMut(&mut Bencher)) -> BenchResult {
    let mut bencher = Bencher {
        budget,
        mean_ns: 0.0,
        iterations: 0,
    };
    f(&mut bencher);
    BenchResult {
        id,
        mean_ns: bencher.mean_ns,
        iterations: bencher.iterations,
    }
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main`, running every group and printing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.print_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "g/noop");
        assert_eq!(c.results()[1].id, "g/with_input/4");
        assert!(c.results().iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut c = Criterion::default();
        c.bench_function("solo", |b| b.iter(|| 2 + 2));
        let path = std::env::temp_dir().join("criterion_shim_test.json");
        c.export_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('[') && text.trim_end().ends_with(']'));
        assert!(text.contains("\"id\": \"solo\""));
        let _ = std::fs::remove_file(path);
    }
}
