//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! actually serializes anything (there is no `serde_json` and no wire
//! format in the build environment). This proc-macro crate accepts the
//! derives and expands them to nothing, so `use serde::{Deserialize,
//! Serialize};` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! Both derives register the `serde` helper attribute, so field-level
//! annotations like `#[serde(default = "...")]` parse exactly as they do
//! under the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
