//! Offline stand-in for the `parking_lot` API used by this workspace: a
//! `Mutex` whose `lock()` returns the guard directly (no poison handling),
//! backed by `std::sync::Mutex`.

use std::sync::PoisonError;

/// A mutex with `parking_lot`'s ergonomics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (like `parking_lot`, which has
    /// no poisoning at all).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
