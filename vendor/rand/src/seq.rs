//! Sequence helpers.

use crate::Rng;

/// Random slice operations, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
