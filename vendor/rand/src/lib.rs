//! Minimal, dependency-free stand-in for the parts of the `rand` 0.9 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead of the real crate. It provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`);
//! * the [`Rng`] extension trait with `random`, `random_range` and
//!   `random_bool`;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The stream of values differs from the real `rand` crate; everything in
//! this workspace only relies on determinism per seed and on reasonable
//! uniformity, both of which hold here.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of uniform 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T` (for `f64`:
    /// uniform in `[0, 1)`).
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u32, u64);

macro_rules! signed_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

signed_range_impls!(i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u: f64 = f64::sample_standard(rng);
        (start + u * (end - start)).min(end)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_samples_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_their_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let f = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
