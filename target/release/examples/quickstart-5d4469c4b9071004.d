/root/repo/target/release/examples/quickstart-5d4469c4b9071004.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5d4469c4b9071004: examples/quickstart.rs

examples/quickstart.rs:
