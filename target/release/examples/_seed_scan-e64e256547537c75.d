/root/repo/target/release/examples/_seed_scan-e64e256547537c75.d: examples/_seed_scan.rs

/root/repo/target/release/examples/_seed_scan-e64e256547537c75: examples/_seed_scan.rs

examples/_seed_scan.rs:
