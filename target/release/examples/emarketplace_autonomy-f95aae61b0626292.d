/root/repo/target/release/examples/emarketplace_autonomy-f95aae61b0626292.d: examples/emarketplace_autonomy.rs

/root/repo/target/release/examples/emarketplace_autonomy-f95aae61b0626292: examples/emarketplace_autonomy.rs

examples/emarketplace_autonomy.rs:
