/root/repo/target/release/examples/_verify_shards-4156b28d93ed2d08.d: examples/_verify_shards.rs

/root/repo/target/release/examples/_verify_shards-4156b28d93ed2d08: examples/_verify_shards.rs

examples/_verify_shards.rs:
