/root/repo/target/release/examples/live_mediation-c15000060e8034d6.d: examples/live_mediation.rs

/root/repo/target/release/examples/live_mediation-c15000060e8034d6: examples/live_mediation.rs

examples/live_mediation.rs:
