/root/repo/target/release/deps/diagnose-a98cabfc51573f6b.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/release/deps/diagnose-a98cabfc51573f6b: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
