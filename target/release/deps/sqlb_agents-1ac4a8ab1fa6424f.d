/root/repo/target/release/deps/sqlb_agents-1ac4a8ab1fa6424f.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/release/deps/libsqlb_agents-1ac4a8ab1fa6424f.rlib: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/release/deps/libsqlb_agents-1ac4a8ab1fa6424f.rmeta: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
