/root/repo/target/release/deps/serde-e6e0b5f5a8eeac14.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e6e0b5f5a8eeac14.so: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
