/root/repo/target/release/deps/fig5_autonomy-72f7b5f8443507e0.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/release/deps/fig5_autonomy-72f7b5f8443507e0: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
