/root/repo/target/release/deps/fig6_consumer_departures-cb1ffeea08347598.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/release/deps/fig6_consumer_departures-cb1ffeea08347598: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
