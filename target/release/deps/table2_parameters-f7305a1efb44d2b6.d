/root/repo/target/release/deps/table2_parameters-f7305a1efb44d2b6.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/release/deps/table2_parameters-f7305a1efb44d2b6: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
