/root/repo/target/release/deps/parking_lot-23e4ff22849cebbf.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-23e4ff22849cebbf.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-23e4ff22849cebbf.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
