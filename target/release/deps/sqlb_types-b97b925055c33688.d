/root/repo/target/release/deps/sqlb_types-b97b925055c33688.d: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs

/root/repo/target/release/deps/libsqlb_types-b97b925055c33688.rlib: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs

/root/repo/target/release/deps/libsqlb_types-b97b925055c33688.rmeta: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs

crates/types/src/lib.rs:
crates/types/src/capacity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/query.rs:
crates/types/src/table.rs:
crates/types/src/time.rs:
crates/types/src/values.rs:
