/root/repo/target/release/deps/sqlb_core-df3e8829e0721a94.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

/root/repo/target/release/deps/libsqlb_core-df3e8829e0721a94.rlib: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

/root/repo/target/release/deps/libsqlb_core-df3e8829e0721a94.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/intention.rs:
crates/core/src/mediator.rs:
crates/core/src/mediator_state.rs:
crates/core/src/module.rs:
crates/core/src/scoring.rs:
crates/core/src/sqlb.rs:
