/root/repo/target/release/deps/sqlb_metrics-5cde5a1daf264d28.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libsqlb_metrics-5cde5a1daf264d28.rlib: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libsqlb_metrics-5cde5a1daf264d28.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
