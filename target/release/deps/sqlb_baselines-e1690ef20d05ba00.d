/root/repo/target/release/deps/sqlb_baselines-e1690ef20d05ba00.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/release/deps/libsqlb_baselines-e1690ef20d05ba00.rlib: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/release/deps/libsqlb_baselines-e1690ef20d05ba00.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
