/root/repo/target/release/deps/allocation-51c21f761a610d35.d: crates/bench/benches/allocation.rs

/root/repo/target/release/deps/allocation-51c21f761a610d35: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
