/root/repo/target/release/deps/sqlb_satisfaction-8d60aa16e85aae2d.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/release/deps/libsqlb_satisfaction-8d60aa16e85aae2d.rlib: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/release/deps/libsqlb_satisfaction-8d60aa16e85aae2d.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
