/root/repo/target/release/deps/sqlb_mediation-7c400b08cf647a65.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/release/deps/libsqlb_mediation-7c400b08cf647a65.rlib: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/release/deps/libsqlb_mediation-7c400b08cf647a65.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
