/root/repo/target/release/deps/serde-2a256d5077396d10.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-2a256d5077396d10.so: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
