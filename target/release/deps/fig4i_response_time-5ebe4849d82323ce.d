/root/repo/target/release/deps/fig4i_response_time-5ebe4849d82323ce.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/release/deps/fig4i_response_time-5ebe4849d82323ce: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
