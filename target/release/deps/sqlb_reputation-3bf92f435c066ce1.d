/root/repo/target/release/deps/sqlb_reputation-3bf92f435c066ce1.d: crates/reputation/src/lib.rs

/root/repo/target/release/deps/libsqlb_reputation-3bf92f435c066ce1.rlib: crates/reputation/src/lib.rs

/root/repo/target/release/deps/libsqlb_reputation-3bf92f435c066ce1.rmeta: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
