/root/repo/target/release/deps/sqlb_matchmaking-a7c87a1958def95c.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/release/deps/libsqlb_matchmaking-a7c87a1958def95c.rlib: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/release/deps/libsqlb_matchmaking-a7c87a1958def95c.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
