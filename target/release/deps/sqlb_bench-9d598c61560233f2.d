/root/repo/target/release/deps/sqlb_bench-9d598c61560233f2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsqlb_bench-9d598c61560233f2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsqlb_bench-9d598c61560233f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
