/root/repo/target/release/deps/fig4_captive-07b1269327027b25.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/release/deps/fig4_captive-07b1269327027b25: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
