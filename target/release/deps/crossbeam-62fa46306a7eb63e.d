/root/repo/target/release/deps/crossbeam-62fa46306a7eb63e.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-62fa46306a7eb63e.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-62fa46306a7eb63e.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
