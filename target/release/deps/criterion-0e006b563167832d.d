/root/repo/target/release/deps/criterion-0e006b563167832d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0e006b563167832d.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0e006b563167832d.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
