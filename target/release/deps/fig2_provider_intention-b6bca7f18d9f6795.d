/root/repo/target/release/deps/fig2_provider_intention-b6bca7f18d9f6795.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/release/deps/fig2_provider_intention-b6bca7f18d9f6795: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
