/root/repo/target/release/deps/sqlb_sim-94f31d11bfa6ed4b.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/release/deps/libsqlb_sim-94f31d11bfa6ed4b.rlib: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/release/deps/libsqlb_sim-94f31d11bfa6ed4b.rmeta: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
