/root/repo/target/release/deps/table3_departures-55a069010ee906f9.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/release/deps/table3_departures-55a069010ee906f9: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
