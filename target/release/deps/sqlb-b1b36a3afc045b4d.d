/root/repo/target/release/deps/sqlb-b1b36a3afc045b4d.d: src/lib.rs

/root/repo/target/release/deps/libsqlb-b1b36a3afc045b4d.rlib: src/lib.rs

/root/repo/target/release/deps/libsqlb-b1b36a3afc045b4d.rmeta: src/lib.rs

src/lib.rs:
