/root/repo/target/release/deps/fig3_omega-99b7bbaeabf007aa.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/release/deps/fig3_omega-99b7bbaeabf007aa: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
