/root/repo/target/release/deps/proptest-d79176ac7e3fdd09.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d79176ac7e3fdd09.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d79176ac7e3fdd09.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
