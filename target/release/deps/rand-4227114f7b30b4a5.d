/root/repo/target/release/deps/rand-4227114f7b30b4a5.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-4227114f7b30b4a5.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-4227114f7b30b4a5.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
