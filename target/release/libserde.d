/root/repo/target/release/libserde.so: /root/repo/vendor/serde/src/lib.rs
