/root/repo/target/debug/deps/diagnose-0617c2b73d5194e1.d: crates/bench/src/bin/diagnose.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnose-0617c2b73d5194e1.rmeta: crates/bench/src/bin/diagnose.rs Cargo.toml

crates/bench/src/bin/diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
