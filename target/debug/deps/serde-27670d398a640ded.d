/root/repo/target/debug/deps/serde-27670d398a640ded.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-27670d398a640ded.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
