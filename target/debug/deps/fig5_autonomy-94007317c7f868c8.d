/root/repo/target/debug/deps/fig5_autonomy-94007317c7f868c8.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/debug/deps/libfig5_autonomy-94007317c7f868c8.rmeta: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
