/root/repo/target/debug/deps/table2_parameters-545f7d7e9815d517.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/table2_parameters-545f7d7e9815d517: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
