/root/repo/target/debug/deps/sqlb_matchmaking-9cd5a6970e1de556.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/sqlb_matchmaking-9cd5a6970e1de556: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
