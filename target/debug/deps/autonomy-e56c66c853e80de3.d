/root/repo/target/debug/deps/autonomy-e56c66c853e80de3.d: tests/autonomy.rs Cargo.toml

/root/repo/target/debug/deps/libautonomy-e56c66c853e80de3.rmeta: tests/autonomy.rs Cargo.toml

tests/autonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
