/root/repo/target/debug/deps/sqlb_bench-f1046b534e71f547.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-f1046b534e71f547.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-f1046b534e71f547.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
