/root/repo/target/debug/deps/fig4i_response_time-fd4f53a4d360feb9.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/debug/deps/libfig4i_response_time-fd4f53a4d360feb9.rmeta: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
