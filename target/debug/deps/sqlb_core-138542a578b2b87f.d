/root/repo/target/debug/deps/sqlb_core-138542a578b2b87f.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

/root/repo/target/debug/deps/libsqlb_core-138542a578b2b87f.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/intention.rs:
crates/core/src/mediator.rs:
crates/core/src/mediator_state.rs:
crates/core/src/module.rs:
crates/core/src/scoring.rs:
crates/core/src/sqlb.rs:
