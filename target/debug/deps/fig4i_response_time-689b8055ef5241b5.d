/root/repo/target/debug/deps/fig4i_response_time-689b8055ef5241b5.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/debug/deps/fig4i_response_time-689b8055ef5241b5: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
