/root/repo/target/debug/deps/sqlb_baselines-dc6b829fc7aeaed8.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-dc6b829fc7aeaed8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
