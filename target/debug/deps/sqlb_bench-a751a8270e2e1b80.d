/root/repo/target/debug/deps/sqlb_bench-a751a8270e2e1b80.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-a751a8270e2e1b80.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
