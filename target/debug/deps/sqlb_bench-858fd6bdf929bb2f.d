/root/repo/target/debug/deps/sqlb_bench-858fd6bdf929bb2f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-858fd6bdf929bb2f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-858fd6bdf929bb2f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
