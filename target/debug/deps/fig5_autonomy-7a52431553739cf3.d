/root/repo/target/debug/deps/fig5_autonomy-7a52431553739cf3.d: crates/bench/src/bin/fig5_autonomy.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_autonomy-7a52431553739cf3.rmeta: crates/bench/src/bin/fig5_autonomy.rs Cargo.toml

crates/bench/src/bin/fig5_autonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
