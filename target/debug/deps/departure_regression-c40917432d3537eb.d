/root/repo/target/debug/deps/departure_regression-c40917432d3537eb.d: tests/departure_regression.rs

/root/repo/target/debug/deps/departure_regression-c40917432d3537eb: tests/departure_regression.rs

tests/departure_regression.rs:
