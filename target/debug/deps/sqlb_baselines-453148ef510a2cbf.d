/root/repo/target/debug/deps/sqlb_baselines-453148ef510a2cbf.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-453148ef510a2cbf.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
