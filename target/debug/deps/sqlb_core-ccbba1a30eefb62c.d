/root/repo/target/debug/deps/sqlb_core-ccbba1a30eefb62c.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

/root/repo/target/debug/deps/sqlb_core-ccbba1a30eefb62c: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/intention.rs:
crates/core/src/mediator.rs:
crates/core/src/mediator_state.rs:
crates/core/src/module.rs:
crates/core/src/scoring.rs:
crates/core/src/sqlb.rs:
