/root/repo/target/debug/deps/mediation_integration-8fac3e04641a0e42.d: tests/mediation_integration.rs Cargo.toml

/root/repo/target/debug/deps/libmediation_integration-8fac3e04641a0e42.rmeta: tests/mediation_integration.rs Cargo.toml

tests/mediation_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
