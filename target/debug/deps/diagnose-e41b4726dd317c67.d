/root/repo/target/debug/deps/diagnose-e41b4726dd317c67.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/debug/deps/diagnose-e41b4726dd317c67: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
