/root/repo/target/debug/deps/fig6_consumer_departures-7ffc451bce935173.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/debug/deps/fig6_consumer_departures-7ffc451bce935173: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
