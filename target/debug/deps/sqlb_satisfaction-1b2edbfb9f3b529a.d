/root/repo/target/debug/deps/sqlb_satisfaction-1b2edbfb9f3b529a.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-1b2edbfb9f3b529a.rlib: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-1b2edbfb9f3b529a.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
