/root/repo/target/debug/deps/fig4_captive-1f5df5e9b4e2a763.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/debug/deps/fig4_captive-1f5df5e9b4e2a763: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
