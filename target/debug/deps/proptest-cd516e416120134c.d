/root/repo/target/debug/deps/proptest-cd516e416120134c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cd516e416120134c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cd516e416120134c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
