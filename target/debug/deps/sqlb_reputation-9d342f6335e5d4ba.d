/root/repo/target/debug/deps/sqlb_reputation-9d342f6335e5d4ba.d: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-9d342f6335e5d4ba.rmeta: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
