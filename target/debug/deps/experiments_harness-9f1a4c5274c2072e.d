/root/repo/target/debug/deps/experiments_harness-9f1a4c5274c2072e.d: tests/experiments_harness.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_harness-9f1a4c5274c2072e.rmeta: tests/experiments_harness.rs Cargo.toml

tests/experiments_harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
