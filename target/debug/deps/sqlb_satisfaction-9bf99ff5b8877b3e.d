/root/repo/target/debug/deps/sqlb_satisfaction-9bf99ff5b8877b3e.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_satisfaction-9bf99ff5b8877b3e.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs Cargo.toml

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
