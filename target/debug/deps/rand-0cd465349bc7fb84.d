/root/repo/target/debug/deps/rand-0cd465349bc7fb84.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-0cd465349bc7fb84.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
