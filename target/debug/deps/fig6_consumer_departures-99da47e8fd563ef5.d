/root/repo/target/debug/deps/fig6_consumer_departures-99da47e8fd563ef5.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/debug/deps/libfig6_consumer_departures-99da47e8fd563ef5.rmeta: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
