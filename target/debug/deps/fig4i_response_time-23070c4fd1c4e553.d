/root/repo/target/debug/deps/fig4i_response_time-23070c4fd1c4e553.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/debug/deps/fig4i_response_time-23070c4fd1c4e553: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
