/root/repo/target/debug/deps/fig3_omega-388be0108a1f0c52.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/debug/deps/fig3_omega-388be0108a1f0c52: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
