/root/repo/target/debug/deps/sqlb_bench-7ad237c277eb4947.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_bench-7ad237c277eb4947.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
