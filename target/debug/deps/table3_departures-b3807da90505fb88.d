/root/repo/target/debug/deps/table3_departures-b3807da90505fb88.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/debug/deps/libtable3_departures-b3807da90505fb88.rmeta: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
