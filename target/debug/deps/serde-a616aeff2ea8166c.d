/root/repo/target/debug/deps/serde-a616aeff2ea8166c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a616aeff2ea8166c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
