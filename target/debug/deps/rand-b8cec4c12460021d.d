/root/repo/target/debug/deps/rand-b8cec4c12460021d.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs Cargo.toml

/root/repo/target/debug/deps/librand-b8cec4c12460021d.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
