/root/repo/target/debug/deps/serde-5a75fb30eb7e2991.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-5a75fb30eb7e2991.so: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
