/root/repo/target/debug/deps/serde-9bad6d6dd01c2c59.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9bad6d6dd01c2c59.so: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
