/root/repo/target/debug/deps/sqlb_reputation-f6f9531df5180bc9.d: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-f6f9531df5180bc9.rlib: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-f6f9531df5180bc9.rmeta: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
