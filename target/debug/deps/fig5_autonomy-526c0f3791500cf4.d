/root/repo/target/debug/deps/fig5_autonomy-526c0f3791500cf4.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/debug/deps/fig5_autonomy-526c0f3791500cf4: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
