/root/repo/target/debug/deps/fig2_provider_intention-49cbafb8855c3e5c.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/debug/deps/fig2_provider_intention-49cbafb8855c3e5c: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
