/root/repo/target/debug/deps/fig4_captive-c8cc9fd4323d5042.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/debug/deps/fig4_captive-c8cc9fd4323d5042: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
