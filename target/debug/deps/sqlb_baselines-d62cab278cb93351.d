/root/repo/target/debug/deps/sqlb_baselines-d62cab278cb93351.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_baselines-d62cab278cb93351.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
