/root/repo/target/debug/deps/sqlb_mediation-93d457e15f95e6a3.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/sqlb_mediation-93d457e15f95e6a3: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
