/root/repo/target/debug/deps/fig4_captive-4f3172733771a6d3.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/debug/deps/libfig4_captive-4f3172733771a6d3.rmeta: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
