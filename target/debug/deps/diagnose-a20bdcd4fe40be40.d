/root/repo/target/debug/deps/diagnose-a20bdcd4fe40be40.d: crates/bench/src/bin/diagnose.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnose-a20bdcd4fe40be40.rmeta: crates/bench/src/bin/diagnose.rs Cargo.toml

crates/bench/src/bin/diagnose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
