/root/repo/target/debug/deps/sqlb_agents-1683214bacb73a54.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_agents-1683214bacb73a54.rmeta: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs Cargo.toml

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
