/root/repo/target/debug/deps/fig3_omega-e7e5b5c8de05459d.d: crates/bench/src/bin/fig3_omega.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_omega-e7e5b5c8de05459d.rmeta: crates/bench/src/bin/fig3_omega.rs Cargo.toml

crates/bench/src/bin/fig3_omega.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
