/root/repo/target/debug/deps/fig6_consumer_departures-486d1dc8f8fa84a0.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/debug/deps/fig6_consumer_departures-486d1dc8f8fa84a0: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
