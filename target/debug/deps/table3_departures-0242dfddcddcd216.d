/root/repo/target/debug/deps/table3_departures-0242dfddcddcd216.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/debug/deps/table3_departures-0242dfddcddcd216: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
