/root/repo/target/debug/deps/sqlb_mediation-f89cefe520b8e649.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-f89cefe520b8e649.rlib: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-f89cefe520b8e649.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
