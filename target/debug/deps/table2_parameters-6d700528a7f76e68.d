/root/repo/target/debug/deps/table2_parameters-6d700528a7f76e68.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/libtable2_parameters-6d700528a7f76e68.rmeta: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
