/root/repo/target/debug/deps/fig6_consumer_departures-a44f20a5fdcc82cc.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/debug/deps/fig6_consumer_departures-a44f20a5fdcc82cc: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
