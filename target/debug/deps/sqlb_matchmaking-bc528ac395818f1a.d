/root/repo/target/debug/deps/sqlb_matchmaking-bc528ac395818f1a.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-bc528ac395818f1a.rlib: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-bc528ac395818f1a.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
