/root/repo/target/debug/deps/sqlb_metrics-b2659f1706337424.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-b2659f1706337424.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
