/root/repo/target/debug/deps/sqlb_agents-5c3481dbfb7ac3b2.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/sqlb_agents-5c3481dbfb7ac3b2: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
