/root/repo/target/debug/deps/sqlb_baselines-38c73e9dfabe268c.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-38c73e9dfabe268c.rlib: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-38c73e9dfabe268c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
