/root/repo/target/debug/deps/sqlb_satisfaction-f80e81e26bbad70a.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/sqlb_satisfaction-f80e81e26bbad70a: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
