/root/repo/target/debug/deps/diagnose-d033de6732add9af.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/debug/deps/diagnose-d033de6732add9af: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
