/root/repo/target/debug/deps/allocation_properties-fde44e41b73d6369.d: tests/allocation_properties.rs

/root/repo/target/debug/deps/liballocation_properties-fde44e41b73d6369.rmeta: tests/allocation_properties.rs

tests/allocation_properties.rs:
