/root/repo/target/debug/deps/sqlb_core-36730924b2c513ad.d: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_core-36730924b2c513ad.rmeta: crates/core/src/lib.rs crates/core/src/allocation.rs crates/core/src/intention.rs crates/core/src/mediator.rs crates/core/src/mediator_state.rs crates/core/src/module.rs crates/core/src/scoring.rs crates/core/src/sqlb.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/allocation.rs:
crates/core/src/intention.rs:
crates/core/src/mediator.rs:
crates/core/src/mediator_state.rs:
crates/core/src/module.rs:
crates/core/src/scoring.rs:
crates/core/src/sqlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
