/root/repo/target/debug/deps/allocation-5f33b37c6c0dc0ca.d: crates/bench/benches/allocation.rs Cargo.toml

/root/repo/target/debug/deps/liballocation-5f33b37c6c0dc0ca.rmeta: crates/bench/benches/allocation.rs Cargo.toml

crates/bench/benches/allocation.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
