/root/repo/target/debug/deps/proptest-6cc3d05d75f811e2.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6cc3d05d75f811e2.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
