/root/repo/target/debug/deps/table3_departures-718348a432fa2895.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/debug/deps/table3_departures-718348a432fa2895: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
