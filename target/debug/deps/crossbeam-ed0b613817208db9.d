/root/repo/target/debug/deps/crossbeam-ed0b613817208db9.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ed0b613817208db9.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
