/root/repo/target/debug/deps/proptest-a46141fcec72dc6f.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a46141fcec72dc6f.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
