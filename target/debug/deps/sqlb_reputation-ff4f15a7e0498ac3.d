/root/repo/target/debug/deps/sqlb_reputation-ff4f15a7e0498ac3.d: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/sqlb_reputation-ff4f15a7e0498ac3: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
