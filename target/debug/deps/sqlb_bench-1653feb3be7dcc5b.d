/root/repo/target/debug/deps/sqlb_bench-1653feb3be7dcc5b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sqlb_bench-1653feb3be7dcc5b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
