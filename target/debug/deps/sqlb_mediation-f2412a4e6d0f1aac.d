/root/repo/target/debug/deps/sqlb_mediation-f2412a4e6d0f1aac.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_mediation-f2412a4e6d0f1aac.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs Cargo.toml

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
