/root/repo/target/debug/deps/sqlb_sim-09a5fceef05b5167.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/debug/deps/libsqlb_sim-09a5fceef05b5167.rmeta: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
