/root/repo/target/debug/deps/proptest-d07d92add77cb3cd.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d07d92add77cb3cd.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
