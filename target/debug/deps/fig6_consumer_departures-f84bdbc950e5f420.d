/root/repo/target/debug/deps/fig6_consumer_departures-f84bdbc950e5f420.d: crates/bench/src/bin/fig6_consumer_departures.rs

/root/repo/target/debug/deps/libfig6_consumer_departures-f84bdbc950e5f420.rmeta: crates/bench/src/bin/fig6_consumer_departures.rs

crates/bench/src/bin/fig6_consumer_departures.rs:
