/root/repo/target/debug/deps/serde-08a785e808416018.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-08a785e808416018.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
