/root/repo/target/debug/deps/sqlb-2de70d25d3905d13.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb-2de70d25d3905d13.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
