/root/repo/target/debug/deps/satisfaction-a1be92ab3aa50edc.d: crates/bench/benches/satisfaction.rs

/root/repo/target/debug/deps/libsatisfaction-a1be92ab3aa50edc.rmeta: crates/bench/benches/satisfaction.rs

crates/bench/benches/satisfaction.rs:
