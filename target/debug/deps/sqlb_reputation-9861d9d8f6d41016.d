/root/repo/target/debug/deps/sqlb_reputation-9861d9d8f6d41016.d: crates/reputation/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_reputation-9861d9d8f6d41016.rmeta: crates/reputation/src/lib.rs Cargo.toml

crates/reputation/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
