/root/repo/target/debug/deps/crossbeam-ad5a690b3de061b5.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-ad5a690b3de061b5.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
