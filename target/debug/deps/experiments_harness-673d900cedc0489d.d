/root/repo/target/debug/deps/experiments_harness-673d900cedc0489d.d: tests/experiments_harness.rs

/root/repo/target/debug/deps/libexperiments_harness-673d900cedc0489d.rmeta: tests/experiments_harness.rs

tests/experiments_harness.rs:
