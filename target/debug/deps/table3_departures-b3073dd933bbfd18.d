/root/repo/target/debug/deps/table3_departures-b3073dd933bbfd18.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/debug/deps/libtable3_departures-b3073dd933bbfd18.rmeta: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
