/root/repo/target/debug/deps/allocation_properties-44d96da28188139f.d: tests/allocation_properties.rs Cargo.toml

/root/repo/target/debug/deps/liballocation_properties-44d96da28188139f.rmeta: tests/allocation_properties.rs Cargo.toml

tests/allocation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
