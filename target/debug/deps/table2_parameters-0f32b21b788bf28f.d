/root/repo/target/debug/deps/table2_parameters-0f32b21b788bf28f.d: crates/bench/src/bin/table2_parameters.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_parameters-0f32b21b788bf28f.rmeta: crates/bench/src/bin/table2_parameters.rs Cargo.toml

crates/bench/src/bin/table2_parameters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
