/root/repo/target/debug/deps/serde-f13d54528fb1b7ed.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f13d54528fb1b7ed.so: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
