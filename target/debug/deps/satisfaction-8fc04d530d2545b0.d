/root/repo/target/debug/deps/satisfaction-8fc04d530d2545b0.d: crates/bench/benches/satisfaction.rs Cargo.toml

/root/repo/target/debug/deps/libsatisfaction-8fc04d530d2545b0.rmeta: crates/bench/benches/satisfaction.rs Cargo.toml

crates/bench/benches/satisfaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
