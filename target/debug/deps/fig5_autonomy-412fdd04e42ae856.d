/root/repo/target/debug/deps/fig5_autonomy-412fdd04e42ae856.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/debug/deps/fig5_autonomy-412fdd04e42ae856: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
