/root/repo/target/debug/deps/sqlb_metrics-b461f4c4830d7095.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-b461f4c4830d7095.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
