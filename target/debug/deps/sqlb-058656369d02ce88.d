/root/repo/target/debug/deps/sqlb-058656369d02ce88.d: src/lib.rs

/root/repo/target/debug/deps/libsqlb-058656369d02ce88.rlib: src/lib.rs

/root/repo/target/debug/deps/libsqlb-058656369d02ce88.rmeta: src/lib.rs

src/lib.rs:
