/root/repo/target/debug/deps/criterion-608fcd033f463b63.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-608fcd033f463b63.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
