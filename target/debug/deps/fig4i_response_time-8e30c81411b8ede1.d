/root/repo/target/debug/deps/fig4i_response_time-8e30c81411b8ede1.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/debug/deps/libfig4i_response_time-8e30c81411b8ede1.rmeta: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
