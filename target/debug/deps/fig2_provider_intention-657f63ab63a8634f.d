/root/repo/target/debug/deps/fig2_provider_intention-657f63ab63a8634f.d: crates/bench/src/bin/fig2_provider_intention.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_provider_intention-657f63ab63a8634f.rmeta: crates/bench/src/bin/fig2_provider_intention.rs Cargo.toml

crates/bench/src/bin/fig2_provider_intention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
