/root/repo/target/debug/deps/fig4_captive-f945afff6b2b39fb.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/debug/deps/libfig4_captive-f945afff6b2b39fb.rmeta: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
