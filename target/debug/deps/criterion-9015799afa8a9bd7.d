/root/repo/target/debug/deps/criterion-9015799afa8a9bd7.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-9015799afa8a9bd7.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
