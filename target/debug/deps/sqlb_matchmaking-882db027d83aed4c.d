/root/repo/target/debug/deps/sqlb_matchmaking-882db027d83aed4c.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-882db027d83aed4c.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
