/root/repo/target/debug/deps/sqlb_matchmaking-a3692084cca1988d.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-a3692084cca1988d.rlib: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-a3692084cca1988d.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
