/root/repo/target/debug/deps/mediation_integration-4294a8fd58def203.d: tests/mediation_integration.rs

/root/repo/target/debug/deps/libmediation_integration-4294a8fd58def203.rmeta: tests/mediation_integration.rs

tests/mediation_integration.rs:
