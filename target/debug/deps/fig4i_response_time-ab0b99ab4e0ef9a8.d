/root/repo/target/debug/deps/fig4i_response_time-ab0b99ab4e0ef9a8.d: crates/bench/src/bin/fig4i_response_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig4i_response_time-ab0b99ab4e0ef9a8.rmeta: crates/bench/src/bin/fig4i_response_time.rs Cargo.toml

crates/bench/src/bin/fig4i_response_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
