/root/repo/target/debug/deps/fig5_autonomy-25c2daa1b21dd8df.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/debug/deps/libfig5_autonomy-25c2daa1b21dd8df.rmeta: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
