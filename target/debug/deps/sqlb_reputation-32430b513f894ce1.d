/root/repo/target/debug/deps/sqlb_reputation-32430b513f894ce1.d: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-32430b513f894ce1.rlib: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-32430b513f894ce1.rmeta: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
