/root/repo/target/debug/deps/sqlb_satisfaction-7baa4f2d08d24501.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-7baa4f2d08d24501.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
