/root/repo/target/debug/deps/simulation-f5ddfbaef594e804.d: crates/bench/benches/simulation.rs

/root/repo/target/debug/deps/libsimulation-f5ddfbaef594e804.rmeta: crates/bench/benches/simulation.rs

crates/bench/benches/simulation.rs:
