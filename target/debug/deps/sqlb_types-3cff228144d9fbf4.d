/root/repo/target/debug/deps/sqlb_types-3cff228144d9fbf4.d: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs

/root/repo/target/debug/deps/libsqlb_types-3cff228144d9fbf4.rmeta: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs

crates/types/src/lib.rs:
crates/types/src/capacity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/query.rs:
crates/types/src/table.rs:
crates/types/src/time.rs:
crates/types/src/values.rs:
