/root/repo/target/debug/deps/crossbeam-8ed2ed015638f043.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-8ed2ed015638f043: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
