/root/repo/target/debug/deps/criterion-98cb9d16fcc08636.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-98cb9d16fcc08636.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
