/root/repo/target/debug/deps/crossbeam-d47527da9aaa35d0.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-d47527da9aaa35d0.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
