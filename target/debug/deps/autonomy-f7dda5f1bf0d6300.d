/root/repo/target/debug/deps/autonomy-f7dda5f1bf0d6300.d: tests/autonomy.rs

/root/repo/target/debug/deps/autonomy-f7dda5f1bf0d6300: tests/autonomy.rs

tests/autonomy.rs:
