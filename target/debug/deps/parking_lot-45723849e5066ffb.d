/root/repo/target/debug/deps/parking_lot-45723849e5066ffb.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-45723849e5066ffb.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
