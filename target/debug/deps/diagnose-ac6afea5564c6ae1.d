/root/repo/target/debug/deps/diagnose-ac6afea5564c6ae1.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/debug/deps/diagnose-ac6afea5564c6ae1: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
