/root/repo/target/debug/deps/criterion-f1bc9c727276c94f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1bc9c727276c94f.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1bc9c727276c94f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
