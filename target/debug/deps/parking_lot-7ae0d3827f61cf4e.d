/root/repo/target/debug/deps/parking_lot-7ae0d3827f61cf4e.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7ae0d3827f61cf4e.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7ae0d3827f61cf4e.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
