/root/repo/target/debug/deps/sqlb_mediation-fea56181acad2d24.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-fea56181acad2d24.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
