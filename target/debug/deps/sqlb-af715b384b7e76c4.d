/root/repo/target/debug/deps/sqlb-af715b384b7e76c4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb-af715b384b7e76c4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
