/root/repo/target/debug/deps/fig3_omega-e2b9fb390690d05e.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/debug/deps/fig3_omega-e2b9fb390690d05e: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
