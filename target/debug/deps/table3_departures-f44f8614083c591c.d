/root/repo/target/debug/deps/table3_departures-f44f8614083c591c.d: crates/bench/src/bin/table3_departures.rs

/root/repo/target/debug/deps/table3_departures-f44f8614083c591c: crates/bench/src/bin/table3_departures.rs

crates/bench/src/bin/table3_departures.rs:
