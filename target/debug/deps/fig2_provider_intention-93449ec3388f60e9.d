/root/repo/target/debug/deps/fig2_provider_intention-93449ec3388f60e9.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/debug/deps/fig2_provider_intention-93449ec3388f60e9: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
