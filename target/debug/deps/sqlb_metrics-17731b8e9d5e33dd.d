/root/repo/target/debug/deps/sqlb_metrics-17731b8e9d5e33dd.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_metrics-17731b8e9d5e33dd.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
