/root/repo/target/debug/deps/simulation-922b787e8069abdc.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-922b787e8069abdc.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
