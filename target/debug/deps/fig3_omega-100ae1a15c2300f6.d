/root/repo/target/debug/deps/fig3_omega-100ae1a15c2300f6.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/debug/deps/libfig3_omega-100ae1a15c2300f6.rmeta: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
