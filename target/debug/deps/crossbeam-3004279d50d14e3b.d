/root/repo/target/debug/deps/crossbeam-3004279d50d14e3b.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-3004279d50d14e3b.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
