/root/repo/target/debug/deps/proptest-5f242fc7c5dc30c8.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-5f242fc7c5dc30c8.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
