/root/repo/target/debug/deps/sqlb_metrics-2b8320f649a90606.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-2b8320f649a90606.rlib: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-2b8320f649a90606.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
