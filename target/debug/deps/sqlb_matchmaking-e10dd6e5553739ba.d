/root/repo/target/debug/deps/sqlb_matchmaking-e10dd6e5553739ba.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_matchmaking-e10dd6e5553739ba.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs Cargo.toml

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
