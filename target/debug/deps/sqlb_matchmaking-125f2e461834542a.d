/root/repo/target/debug/deps/sqlb_matchmaking-125f2e461834542a.d: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

/root/repo/target/debug/deps/libsqlb_matchmaking-125f2e461834542a.rmeta: crates/matchmaking/src/lib.rs crates/matchmaking/src/registry.rs

crates/matchmaking/src/lib.rs:
crates/matchmaking/src/registry.rs:
