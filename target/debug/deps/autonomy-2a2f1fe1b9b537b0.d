/root/repo/target/debug/deps/autonomy-2a2f1fe1b9b537b0.d: tests/autonomy.rs

/root/repo/target/debug/deps/libautonomy-2a2f1fe1b9b537b0.rmeta: tests/autonomy.rs

tests/autonomy.rs:
