/root/repo/target/debug/deps/sqlb_satisfaction-9a71bb443d7cba6e.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-9a71bb443d7cba6e.rlib: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-9a71bb443d7cba6e.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
