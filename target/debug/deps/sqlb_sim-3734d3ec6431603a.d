/root/repo/target/debug/deps/sqlb_sim-3734d3ec6431603a.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/debug/deps/sqlb_sim-3734d3ec6431603a: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
