/root/repo/target/debug/deps/serde-40f5f9b2735e0dec.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-40f5f9b2735e0dec: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
