/root/repo/target/debug/deps/fig4i_response_time-3fb33f12c1184565.d: crates/bench/src/bin/fig4i_response_time.rs

/root/repo/target/debug/deps/fig4i_response_time-3fb33f12c1184565: crates/bench/src/bin/fig4i_response_time.rs

crates/bench/src/bin/fig4i_response_time.rs:
