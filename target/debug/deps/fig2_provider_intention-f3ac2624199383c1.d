/root/repo/target/debug/deps/fig2_provider_intention-f3ac2624199383c1.d: crates/bench/src/bin/fig2_provider_intention.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_provider_intention-f3ac2624199383c1.rmeta: crates/bench/src/bin/fig2_provider_intention.rs Cargo.toml

crates/bench/src/bin/fig2_provider_intention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
