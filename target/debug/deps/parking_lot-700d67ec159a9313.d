/root/repo/target/debug/deps/parking_lot-700d67ec159a9313.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-700d67ec159a9313.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
