/root/repo/target/debug/deps/sqlb_sim-1d5b6ebbbd631f32.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/debug/deps/libsqlb_sim-1d5b6ebbbd631f32.rlib: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/debug/deps/libsqlb_sim-1d5b6ebbbd631f32.rmeta: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
