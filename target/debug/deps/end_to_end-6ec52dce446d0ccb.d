/root/repo/target/debug/deps/end_to_end-6ec52dce446d0ccb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-6ec52dce446d0ccb.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
