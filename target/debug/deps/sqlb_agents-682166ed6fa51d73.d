/root/repo/target/debug/deps/sqlb_agents-682166ed6fa51d73.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/libsqlb_agents-682166ed6fa51d73.rmeta: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
