/root/repo/target/debug/deps/allocation_properties-4718ab671d9150c4.d: tests/allocation_properties.rs

/root/repo/target/debug/deps/allocation_properties-4718ab671d9150c4: tests/allocation_properties.rs

tests/allocation_properties.rs:
