/root/repo/target/debug/deps/sqlb_baselines-7a08bb8c1c22d0e9.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/sqlb_baselines-7a08bb8c1c22d0e9: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
