/root/repo/target/debug/deps/sqlb_bench-4ff8701138c53639.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-4ff8701138c53639.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-4ff8701138c53639.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
