/root/repo/target/debug/deps/end_to_end-8d50e515071213cc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8d50e515071213cc: tests/end_to_end.rs

tests/end_to_end.rs:
