/root/repo/target/debug/deps/fig4_captive-c3b66ce92fba8004.d: crates/bench/src/bin/fig4_captive.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_captive-c3b66ce92fba8004.rmeta: crates/bench/src/bin/fig4_captive.rs Cargo.toml

crates/bench/src/bin/fig4_captive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
