/root/repo/target/debug/deps/table2_parameters-5ab8fbd305730672.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/libtable2_parameters-5ab8fbd305730672.rmeta: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
