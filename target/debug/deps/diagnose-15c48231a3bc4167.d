/root/repo/target/debug/deps/diagnose-15c48231a3bc4167.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/debug/deps/libdiagnose-15c48231a3bc4167.rmeta: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
