/root/repo/target/debug/deps/parking_lot-6a77df1f1b328c7a.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-6a77df1f1b328c7a: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
