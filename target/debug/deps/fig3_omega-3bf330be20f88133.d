/root/repo/target/debug/deps/fig3_omega-3bf330be20f88133.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/debug/deps/fig3_omega-3bf330be20f88133: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
