/root/repo/target/debug/deps/rand-669f9789ed1af031.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/rand-669f9789ed1af031: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
