/root/repo/target/debug/deps/sqlb_baselines-5c1adb6c4d552eee.d: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-5c1adb6c4d552eee.rlib: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

/root/repo/target/debug/deps/libsqlb_baselines-5c1adb6c4d552eee.rmeta: crates/baselines/src/lib.rs crates/baselines/src/capacity.rs crates/baselines/src/mariposa.rs crates/baselines/src/random.rs crates/baselines/src/roundrobin.rs

crates/baselines/src/lib.rs:
crates/baselines/src/capacity.rs:
crates/baselines/src/mariposa.rs:
crates/baselines/src/random.rs:
crates/baselines/src/roundrobin.rs:
