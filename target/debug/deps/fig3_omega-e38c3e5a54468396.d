/root/repo/target/debug/deps/fig3_omega-e38c3e5a54468396.d: crates/bench/src/bin/fig3_omega.rs

/root/repo/target/debug/deps/libfig3_omega-e38c3e5a54468396.rmeta: crates/bench/src/bin/fig3_omega.rs

crates/bench/src/bin/fig3_omega.rs:
