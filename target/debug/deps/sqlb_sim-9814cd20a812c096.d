/root/repo/target/debug/deps/sqlb_sim-9814cd20a812c096.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_sim-9814cd20a812c096.rmeta: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs Cargo.toml

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
