/root/repo/target/debug/deps/rand-1827882ca7fa0bea.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-1827882ca7fa0bea.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-1827882ca7fa0bea.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
