/root/repo/target/debug/deps/sqlb_metrics-8382fc31b354b317.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-8382fc31b354b317.rlib: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libsqlb_metrics-8382fc31b354b317.rmeta: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
