/root/repo/target/debug/deps/table3_departures-8bbfe3c60ec952b3.d: crates/bench/src/bin/table3_departures.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_departures-8bbfe3c60ec952b3.rmeta: crates/bench/src/bin/table3_departures.rs Cargo.toml

crates/bench/src/bin/table3_departures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
