/root/repo/target/debug/deps/parking_lot-b2df60297f2b6d26.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-b2df60297f2b6d26.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
