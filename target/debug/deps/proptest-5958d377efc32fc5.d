/root/repo/target/debug/deps/proptest-5958d377efc32fc5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-5958d377efc32fc5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
