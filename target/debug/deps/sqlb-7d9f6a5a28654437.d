/root/repo/target/debug/deps/sqlb-7d9f6a5a28654437.d: src/lib.rs

/root/repo/target/debug/deps/libsqlb-7d9f6a5a28654437.rmeta: src/lib.rs

src/lib.rs:
