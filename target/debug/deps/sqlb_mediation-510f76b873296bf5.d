/root/repo/target/debug/deps/sqlb_mediation-510f76b873296bf5.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_mediation-510f76b873296bf5.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs Cargo.toml

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
