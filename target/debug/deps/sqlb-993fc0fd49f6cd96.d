/root/repo/target/debug/deps/sqlb-993fc0fd49f6cd96.d: src/lib.rs

/root/repo/target/debug/deps/sqlb-993fc0fd49f6cd96: src/lib.rs

src/lib.rs:
