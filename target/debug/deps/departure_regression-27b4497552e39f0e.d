/root/repo/target/debug/deps/departure_regression-27b4497552e39f0e.d: tests/departure_regression.rs

/root/repo/target/debug/deps/libdeparture_regression-27b4497552e39f0e.rmeta: tests/departure_regression.rs

tests/departure_regression.rs:
