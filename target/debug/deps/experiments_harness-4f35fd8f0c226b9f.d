/root/repo/target/debug/deps/experiments_harness-4f35fd8f0c226b9f.d: tests/experiments_harness.rs

/root/repo/target/debug/deps/experiments_harness-4f35fd8f0c226b9f: tests/experiments_harness.rs

tests/experiments_harness.rs:
