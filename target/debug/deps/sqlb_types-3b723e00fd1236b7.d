/root/repo/target/debug/deps/sqlb_types-3b723e00fd1236b7.d: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_types-3b723e00fd1236b7.rmeta: crates/types/src/lib.rs crates/types/src/capacity.rs crates/types/src/error.rs crates/types/src/ids.rs crates/types/src/query.rs crates/types/src/table.rs crates/types/src/time.rs crates/types/src/values.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/capacity.rs:
crates/types/src/error.rs:
crates/types/src/ids.rs:
crates/types/src/query.rs:
crates/types/src/table.rs:
crates/types/src/time.rs:
crates/types/src/values.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
