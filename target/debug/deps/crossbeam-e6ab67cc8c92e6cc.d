/root/repo/target/debug/deps/crossbeam-e6ab67cc8c92e6cc.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e6ab67cc8c92e6cc.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e6ab67cc8c92e6cc.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
