/root/repo/target/debug/deps/sqlb_mediation-62e557573108ad99.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-62e557573108ad99.rlib: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-62e557573108ad99.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
