/root/repo/target/debug/deps/sqlb-6df28fe0384a2d99.d: src/lib.rs

/root/repo/target/debug/deps/libsqlb-6df28fe0384a2d99.rmeta: src/lib.rs

src/lib.rs:
