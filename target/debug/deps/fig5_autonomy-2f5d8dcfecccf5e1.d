/root/repo/target/debug/deps/fig5_autonomy-2f5d8dcfecccf5e1.d: crates/bench/src/bin/fig5_autonomy.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_autonomy-2f5d8dcfecccf5e1.rmeta: crates/bench/src/bin/fig5_autonomy.rs Cargo.toml

crates/bench/src/bin/fig5_autonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
