/root/repo/target/debug/deps/sqlb_bench-34642c7af23fe4fa.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsqlb_bench-34642c7af23fe4fa.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
