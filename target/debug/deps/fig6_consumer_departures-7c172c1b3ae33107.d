/root/repo/target/debug/deps/fig6_consumer_departures-7c172c1b3ae33107.d: crates/bench/src/bin/fig6_consumer_departures.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_consumer_departures-7c172c1b3ae33107.rmeta: crates/bench/src/bin/fig6_consumer_departures.rs Cargo.toml

crates/bench/src/bin/fig6_consumer_departures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
