/root/repo/target/debug/deps/criterion-5f5dcc3e9941424b.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5f5dcc3e9941424b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
