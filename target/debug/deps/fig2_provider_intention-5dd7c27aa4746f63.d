/root/repo/target/debug/deps/fig2_provider_intention-5dd7c27aa4746f63.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/debug/deps/libfig2_provider_intention-5dd7c27aa4746f63.rmeta: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
