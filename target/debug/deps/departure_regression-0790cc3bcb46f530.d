/root/repo/target/debug/deps/departure_regression-0790cc3bcb46f530.d: tests/departure_regression.rs Cargo.toml

/root/repo/target/debug/deps/libdeparture_regression-0790cc3bcb46f530.rmeta: tests/departure_regression.rs Cargo.toml

tests/departure_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
