/root/repo/target/debug/deps/sqlb_agents-43d0d1f78a56b82b.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/libsqlb_agents-43d0d1f78a56b82b.rlib: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/libsqlb_agents-43d0d1f78a56b82b.rmeta: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
