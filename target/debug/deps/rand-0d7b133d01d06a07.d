/root/repo/target/debug/deps/rand-0d7b133d01d06a07.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-0d7b133d01d06a07.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
