/root/repo/target/debug/deps/mediation_integration-a082be9f9285b800.d: tests/mediation_integration.rs

/root/repo/target/debug/deps/mediation_integration-a082be9f9285b800: tests/mediation_integration.rs

tests/mediation_integration.rs:
