/root/repo/target/debug/deps/sqlb_mediation-bcad41d3e400d64b.d: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

/root/repo/target/debug/deps/libsqlb_mediation-bcad41d3e400d64b.rmeta: crates/mediation/src/lib.rs crates/mediation/src/protocol.rs crates/mediation/src/runtime.rs

crates/mediation/src/lib.rs:
crates/mediation/src/protocol.rs:
crates/mediation/src/runtime.rs:
