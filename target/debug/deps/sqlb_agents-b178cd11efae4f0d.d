/root/repo/target/debug/deps/sqlb_agents-b178cd11efae4f0d.d: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/libsqlb_agents-b178cd11efae4f0d.rlib: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

/root/repo/target/debug/deps/libsqlb_agents-b178cd11efae4f0d.rmeta: crates/agents/src/lib.rs crates/agents/src/consumer.rs crates/agents/src/departure.rs crates/agents/src/population.rs crates/agents/src/provider.rs crates/agents/src/utilization.rs

crates/agents/src/lib.rs:
crates/agents/src/consumer.rs:
crates/agents/src/departure.rs:
crates/agents/src/population.rs:
crates/agents/src/provider.rs:
crates/agents/src/utilization.rs:
