/root/repo/target/debug/deps/sqlb-a2d8b1816c477632.d: src/lib.rs

/root/repo/target/debug/deps/libsqlb-a2d8b1816c477632.rlib: src/lib.rs

/root/repo/target/debug/deps/libsqlb-a2d8b1816c477632.rmeta: src/lib.rs

src/lib.rs:
