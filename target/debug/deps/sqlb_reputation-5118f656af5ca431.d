/root/repo/target/debug/deps/sqlb_reputation-5118f656af5ca431.d: crates/reputation/src/lib.rs

/root/repo/target/debug/deps/libsqlb_reputation-5118f656af5ca431.rmeta: crates/reputation/src/lib.rs

crates/reputation/src/lib.rs:
