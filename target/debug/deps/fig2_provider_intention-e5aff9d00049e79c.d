/root/repo/target/debug/deps/fig2_provider_intention-e5aff9d00049e79c.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/debug/deps/libfig2_provider_intention-e5aff9d00049e79c.rmeta: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
