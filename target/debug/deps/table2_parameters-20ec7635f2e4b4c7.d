/root/repo/target/debug/deps/table2_parameters-20ec7635f2e4b4c7.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/table2_parameters-20ec7635f2e4b4c7: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
