/root/repo/target/debug/deps/sqlb_sim-2e6d1ae0ba407885.d: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

/root/repo/target/debug/deps/libsqlb_sim-2e6d1ae0ba407885.rmeta: crates/simulator/src/lib.rs crates/simulator/src/config.rs crates/simulator/src/engine.rs crates/simulator/src/events.rs crates/simulator/src/experiments.rs crates/simulator/src/shard.rs crates/simulator/src/stats.rs crates/simulator/src/workload.rs

crates/simulator/src/lib.rs:
crates/simulator/src/config.rs:
crates/simulator/src/engine.rs:
crates/simulator/src/events.rs:
crates/simulator/src/experiments.rs:
crates/simulator/src/shard.rs:
crates/simulator/src/stats.rs:
crates/simulator/src/workload.rs:
