/root/repo/target/debug/deps/fig4_captive-0ded153db88fb055.d: crates/bench/src/bin/fig4_captive.rs

/root/repo/target/debug/deps/fig4_captive-0ded153db88fb055: crates/bench/src/bin/fig4_captive.rs

crates/bench/src/bin/fig4_captive.rs:
