/root/repo/target/debug/deps/allocation-3a57481b3ff28a45.d: crates/bench/benches/allocation.rs

/root/repo/target/debug/deps/liballocation-3a57481b3ff28a45.rmeta: crates/bench/benches/allocation.rs

crates/bench/benches/allocation.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
