/root/repo/target/debug/deps/sqlb_metrics-4716e1b066ebdf47.d: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/sqlb_metrics-4716e1b066ebdf47: crates/metrics/src/lib.rs crates/metrics/src/aggregate.rs crates/metrics/src/histogram.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/aggregate.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
