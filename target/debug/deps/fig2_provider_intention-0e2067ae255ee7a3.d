/root/repo/target/debug/deps/fig2_provider_intention-0e2067ae255ee7a3.d: crates/bench/src/bin/fig2_provider_intention.rs

/root/repo/target/debug/deps/fig2_provider_intention-0e2067ae255ee7a3: crates/bench/src/bin/fig2_provider_intention.rs

crates/bench/src/bin/fig2_provider_intention.rs:
