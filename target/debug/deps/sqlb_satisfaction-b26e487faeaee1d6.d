/root/repo/target/debug/deps/sqlb_satisfaction-b26e487faeaee1d6.d: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

/root/repo/target/debug/deps/libsqlb_satisfaction-b26e487faeaee1d6.rmeta: crates/satisfaction/src/lib.rs crates/satisfaction/src/consumer.rs crates/satisfaction/src/memory.rs crates/satisfaction/src/provider.rs

crates/satisfaction/src/lib.rs:
crates/satisfaction/src/consumer.rs:
crates/satisfaction/src/memory.rs:
crates/satisfaction/src/provider.rs:
