/root/repo/target/debug/deps/criterion-6c5548e91de05a86.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-6c5548e91de05a86: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
