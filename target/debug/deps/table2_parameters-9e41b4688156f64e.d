/root/repo/target/debug/deps/table2_parameters-9e41b4688156f64e.d: crates/bench/src/bin/table2_parameters.rs

/root/repo/target/debug/deps/table2_parameters-9e41b4688156f64e: crates/bench/src/bin/table2_parameters.rs

crates/bench/src/bin/table2_parameters.rs:
