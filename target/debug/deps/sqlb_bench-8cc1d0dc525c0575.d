/root/repo/target/debug/deps/sqlb_bench-8cc1d0dc525c0575.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsqlb_bench-8cc1d0dc525c0575.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
