/root/repo/target/debug/deps/diagnose-1ecf3f39fcf23138.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/debug/deps/libdiagnose-1ecf3f39fcf23138.rmeta: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
