/root/repo/target/debug/deps/fig5_autonomy-dd176fbf86eeee05.d: crates/bench/src/bin/fig5_autonomy.rs

/root/repo/target/debug/deps/fig5_autonomy-dd176fbf86eeee05: crates/bench/src/bin/fig5_autonomy.rs

crates/bench/src/bin/fig5_autonomy.rs:
