/root/repo/target/debug/librand.rlib: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand/src/rngs.rs /root/repo/vendor/rand/src/seq.rs
