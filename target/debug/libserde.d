/root/repo/target/debug/libserde.so: /root/repo/vendor/serde/src/lib.rs
