/root/repo/target/debug/examples/custom_allocation-1126e4652569a58d.d: examples/custom_allocation.rs

/root/repo/target/debug/examples/custom_allocation-1126e4652569a58d: examples/custom_allocation.rs

examples/custom_allocation.rs:
