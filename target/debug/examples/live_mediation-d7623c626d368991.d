/root/repo/target/debug/examples/live_mediation-d7623c626d368991.d: examples/live_mediation.rs Cargo.toml

/root/repo/target/debug/examples/liblive_mediation-d7623c626d368991.rmeta: examples/live_mediation.rs Cargo.toml

examples/live_mediation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
