/root/repo/target/debug/examples/custom_allocation-1ac00a4af1cc74f3.d: examples/custom_allocation.rs

/root/repo/target/debug/examples/libcustom_allocation-1ac00a4af1cc74f3.rmeta: examples/custom_allocation.rs

examples/custom_allocation.rs:
