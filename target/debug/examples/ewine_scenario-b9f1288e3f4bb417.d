/root/repo/target/debug/examples/ewine_scenario-b9f1288e3f4bb417.d: examples/ewine_scenario.rs Cargo.toml

/root/repo/target/debug/examples/libewine_scenario-b9f1288e3f4bb417.rmeta: examples/ewine_scenario.rs Cargo.toml

examples/ewine_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
