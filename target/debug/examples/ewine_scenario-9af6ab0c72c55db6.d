/root/repo/target/debug/examples/ewine_scenario-9af6ab0c72c55db6.d: examples/ewine_scenario.rs

/root/repo/target/debug/examples/ewine_scenario-9af6ab0c72c55db6: examples/ewine_scenario.rs

examples/ewine_scenario.rs:
