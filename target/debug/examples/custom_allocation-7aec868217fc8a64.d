/root/repo/target/debug/examples/custom_allocation-7aec868217fc8a64.d: examples/custom_allocation.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_allocation-7aec868217fc8a64.rmeta: examples/custom_allocation.rs Cargo.toml

examples/custom_allocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
