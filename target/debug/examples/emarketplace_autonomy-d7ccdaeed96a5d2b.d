/root/repo/target/debug/examples/emarketplace_autonomy-d7ccdaeed96a5d2b.d: examples/emarketplace_autonomy.rs Cargo.toml

/root/repo/target/debug/examples/libemarketplace_autonomy-d7ccdaeed96a5d2b.rmeta: examples/emarketplace_autonomy.rs Cargo.toml

examples/emarketplace_autonomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
