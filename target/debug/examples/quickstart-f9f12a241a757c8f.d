/root/repo/target/debug/examples/quickstart-f9f12a241a757c8f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f9f12a241a757c8f: examples/quickstart.rs

examples/quickstart.rs:
