/root/repo/target/debug/examples/ewine_scenario-6837c0a6f9941bba.d: examples/ewine_scenario.rs

/root/repo/target/debug/examples/libewine_scenario-6837c0a6f9941bba.rmeta: examples/ewine_scenario.rs

examples/ewine_scenario.rs:
