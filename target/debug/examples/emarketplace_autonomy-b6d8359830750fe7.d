/root/repo/target/debug/examples/emarketplace_autonomy-b6d8359830750fe7.d: examples/emarketplace_autonomy.rs

/root/repo/target/debug/examples/emarketplace_autonomy-b6d8359830750fe7: examples/emarketplace_autonomy.rs

examples/emarketplace_autonomy.rs:
