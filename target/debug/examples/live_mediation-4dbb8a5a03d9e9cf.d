/root/repo/target/debug/examples/live_mediation-4dbb8a5a03d9e9cf.d: examples/live_mediation.rs

/root/repo/target/debug/examples/live_mediation-4dbb8a5a03d9e9cf: examples/live_mediation.rs

examples/live_mediation.rs:
