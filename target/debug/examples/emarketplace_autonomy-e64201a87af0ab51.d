/root/repo/target/debug/examples/emarketplace_autonomy-e64201a87af0ab51.d: examples/emarketplace_autonomy.rs

/root/repo/target/debug/examples/libemarketplace_autonomy-e64201a87af0ab51.rmeta: examples/emarketplace_autonomy.rs

examples/emarketplace_autonomy.rs:
