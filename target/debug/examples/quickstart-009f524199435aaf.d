/root/repo/target/debug/examples/quickstart-009f524199435aaf.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-009f524199435aaf.rmeta: examples/quickstart.rs

examples/quickstart.rs:
