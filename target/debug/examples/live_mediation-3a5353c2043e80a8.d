/root/repo/target/debug/examples/live_mediation-3a5353c2043e80a8.d: examples/live_mediation.rs

/root/repo/target/debug/examples/liblive_mediation-3a5353c2043e80a8.rmeta: examples/live_mediation.rs

examples/live_mediation.rs:
