//! The byte-stream abstraction under the transport: TCP or Unix-domain.
//!
//! Everything above this module speaks frames over an ordered, reliable
//! byte stream; this module is the only place that knows whether the
//! stream is a TCP socket or a Unix-domain socket. Both are `std`
//! networking — the workspace builds offline, so no async runtime or
//! socket crate is involved.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

/// One connected byte stream, TCP or Unix-domain.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Stream> {
        let stream = TcpStream::connect(addr)?;
        // Wave frames are latency-sensitive and written in one buffered
        // burst; Nagle only adds delay.
        stream.set_nodelay(true)?;
        Ok(Stream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Stream> {
        Ok(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Sets (or clears) the read timeout.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sets (or clears) the write timeout. A peer that stops reading
    /// makes writes error out instead of blocking forever.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// The peer address, for diagnostics.
    pub fn peer_label(&self) -> String {
        match self {
            Stream::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp:?".into()),
            #[cfg(unix)]
            Stream::Unix(_) => "uds".into(),
        }
    }

    /// The local TCP address, when the stream is TCP.
    pub fn local_tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Stream::Tcp(s) => s.local_addr().ok(),
            #[cfg(unix)]
            Stream::Unix(_) => None,
        }
    }

    /// Shuts both directions down, unblocking any reader on the peer.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Whether an I/O error is a read-timeout (both kinds occur depending on
/// platform) rather than a real failure.
pub(crate) fn is_timeout(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
