//! The deterministic loopback harness: the engine's socket backend.
//!
//! The simulator's participants are the engine's own agents — mutable
//! state the engine must keep owning between waves. A persistent
//! [`crate::ParticipantHost`] cannot borrow them, so the loopback
//! harness serves each wave with *scoped* participant-side threads: the
//! engine hands [`SocketMediator::gather`] a set of per-endpoint
//! [`WaveJobs`] (closures borrowing its agents, exactly like the
//! reactor's wave jobs), and the harness
//!
//! 1. fans the wave out through a real [`WaveServer`] — the full frame
//!    encode → TCP loopback → reassemble → decode path;
//! 2. runs one scoped thread per loopback host connection that decodes
//!    the requests **from the wire** and answers them by running the
//!    jobs *on the decoded queries* — the reply values derive from the
//!    bytes that actually travelled, not from state smuggled around the
//!    socket;
//! 3. collects the replies with the server's usual
//!    timeout-to-indifference semantics.
//!
//! Determinism: frames carry `f64`s as raw bits, so the decoded query is
//! bit-identical to the encoded one; the jobs compute the same pure
//! functions as the inline/reactor backends on the same inputs; and
//! reply assembly is keyed by `(query, provider)`, so socket scheduling
//! (which host answers first) cannot reorder anything observable. With
//! all-immediate endpoint latencies a same-seed run therefore produces
//! the same allocation decisions as the in-process backends — pinned by
//! the engine's cross-backend digest tests.
//!
//! Connection lifecycle is tied to the participant lifecycle: endpoints
//! are registered at start-up (one `Hello` per loopback host),
//! deregistered on departure, and a host whose last endpoint departs has
//! its connection shut down and dropped.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::time::Duration;

use sqlb_core::allocation::CandidateInfo;
use sqlb_mediation::{
    encode_participant_reply, encode_participant_reply_into, FrameAssembler, MediatorMessage,
    ParticipantReply, ProviderAnswer,
};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

use crate::host::WaveRequestBuffer;
use crate::net::Stream;
use crate::server::{ServerConfig, SocketRoundStats, WaveServer};

/// A consumer's wave job: answers the consumer's decoded wave request
/// (the full queries and candidate sets that travelled over the wire)
/// with its Definition 7 intentions.
pub type ConsumerWaveJob<'a> = Box<
    dyn FnOnce(&[(Query, Vec<ProviderId>)]) -> Vec<(QueryId, Vec<(ProviderId, f64)>)> + Send + 'a,
>;

/// A provider's wave job: answers the provider's decoded wave request
/// with one [`ProviderAnswer`] per query.
pub type ProviderWaveJob<'a> = Box<dyn FnOnce(&[Query], bool) -> Vec<ProviderAnswer> + Send + 'a>;

/// The participant-side jobs of one loopback wave, keyed by endpoint.
/// Jobs may borrow the caller's agents; the wave is served by scoped
/// threads and consumed whole.
#[derive(Default)]
pub struct WaveJobs<'a> {
    consumers: Vec<(ConsumerId, ConsumerWaveJob<'a>)>,
    providers: Vec<(ProviderId, ProviderWaveJob<'a>)>,
}

impl<'a> WaveJobs<'a> {
    /// Creates an empty job set.
    pub fn new() -> Self {
        WaveJobs::default()
    }

    /// Adds a consumer's job.
    pub fn consumer(
        &mut self,
        id: ConsumerId,
        job: impl FnOnce(&[(Query, Vec<ProviderId>)]) -> Vec<(QueryId, Vec<(ProviderId, f64)>)>
            + Send
            + 'a,
    ) {
        self.consumers.push((id, Box::new(job)));
    }

    /// Adds a provider's job.
    pub fn provider(
        &mut self,
        id: ProviderId,
        job: impl FnOnce(&[Query], bool) -> Vec<ProviderAnswer> + Send + 'a,
    ) {
        self.providers.push((id, Box::new(job)));
    }

    /// Number of endpoint jobs in the wave.
    pub fn len(&self) -> usize {
        self.consumers.len() + self.providers.len()
    }

    /// Whether the wave carries no job at all.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty() && self.providers.is_empty()
    }
}

/// A transport fault injected on one loopback host for one wave
/// ([`SocketMediator::gather_with_faults`]). Scenario campaigns drive
/// these from the deterministic simulation clock, so the *decision* to
/// fault a wave is seeded; the fault itself is a genuine wire-level
/// misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFault {
    /// The host goes silent for the wave: it reads its requests off the
    /// wire (keeping the link's frame stream aligned for later waves)
    /// but never answers, so every reply expected from it degrades to
    /// indifference when the wave deadline passes.
    Stall,
    /// The host connection drops mid-wave: the host reads the wave's
    /// requests, then shuts the stream down without replying. The server
    /// sees the EOF, closes the slot, and every later wave skips the
    /// host's endpoints at fan-out (instant indifference, no deadline
    /// wait) until they re-register over a fresh connection.
    Drop,
}

/// The engine's socket mediation backend: a [`WaveServer`] on the
/// mediator side and `hosts` loopback participant-host connections,
/// each multiplexing the endpoints assigned to it.
pub struct SocketMediator {
    server: WaveServer,
    /// The wave server's TCP address, kept so churned-out endpoints can
    /// re-join over a fresh connection after their host link dropped.
    addr: std::net::SocketAddr,
    /// Client-side streams of the loopback hosts (`None` once closed).
    links: Vec<Option<Stream>>,
    /// Endpoints still registered per host, for connection lifecycle.
    endpoints_per_host: Vec<usize>,
    /// The server-side connection slot of each loopback host (bring-up
    /// makes `host_slot[h] == h`; a re-connect after a dropped link gets
    /// a fresh slot).
    host_slot: Vec<usize>,
    host_count: usize,
    /// Requests fanned out / answered / degraded to indifference across
    /// all waves so far (accumulated [`SocketRoundStats`]).
    delivered_total: u64,
    answered_total: u64,
    timed_out_total: u64,
}

impl SocketMediator {
    /// Brings the loopback topology up: binds a TCP wave server on
    /// `127.0.0.1`, connects `hosts` loopback host links, announces each
    /// host's endpoint partition (round-robin by raw id) and accepts
    /// them on the server side. Hosts are connected and accepted one at
    /// a time, so host `h` always owns server connection slot `h`.
    pub fn loopback(
        hosts: usize,
        config: ServerConfig,
        consumers: impl IntoIterator<Item = ConsumerId>,
        providers: impl IntoIterator<Item = ProviderId>,
    ) -> io::Result<Self> {
        let hosts = hosts.max(1);
        let mut server = WaveServer::new(config);
        let addr = server.listen_tcp("127.0.0.1:0")?;

        let mut host_consumers: Vec<Vec<ConsumerId>> = vec![Vec::new(); hosts];
        let mut host_providers: Vec<Vec<ProviderId>> = vec![Vec::new(); hosts];
        for c in consumers {
            host_consumers[Self::host_of(c.raw(), hosts)].push(c);
        }
        for p in providers {
            host_providers[Self::host_of(p.raw(), hosts)].push(p);
        }

        let mut links = Vec::with_capacity(hosts);
        let mut endpoints_per_host = Vec::with_capacity(hosts);
        let mut host_slot = Vec::with_capacity(hosts);
        for h in 0..hosts {
            let stream = Stream::connect_tcp(addr)?;
            // Loopback serving threads use blocking I/O; generous
            // timeouts turn a lost server into an error instead of a
            // hang.
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_write_timeout(Some(Duration::from_secs(30)))?;
            let hello = ParticipantReply::Hello {
                consumers: host_consumers[h].clone(),
                providers: host_providers[h].clone(),
            };
            let mut stream = stream;
            stream.write_all(&encode_participant_reply(&hello))?;
            stream.flush()?;
            // Accept before connecting the next host, pinning the
            // host → slot mapping re-registration relies on.
            host_slot.push(server.accept_host(Duration::from_secs(10))?);
            endpoints_per_host.push(host_consumers[h].len() + host_providers[h].len());
            links.push(Some(stream));
        }

        Ok(SocketMediator {
            server,
            addr,
            links,
            endpoints_per_host,
            host_slot,
            host_count: hosts,
            delivered_total: 0,
            answered_total: 0,
            timed_out_total: 0,
        })
    }

    /// The loopback host an endpoint id lives on.
    fn host_of(raw: u32, hosts: usize) -> usize {
        raw as usize % hosts
    }

    /// The mediator-side wave server (statistics, endpoint registry).
    pub fn server(&self) -> &WaveServer {
        &self.server
    }

    /// Attaches an observability handle to the mediator-side wave server
    /// (see [`WaveServer::set_obs`]). A disabled handle (the default)
    /// keeps every instrumentation site a no-op.
    pub fn set_obs(&mut self, obs: sqlb_obs::Obs) {
        self.server.set_obs(obs);
    }

    /// Statistics of the most recent wave.
    pub fn last_round(&self) -> SocketRoundStats {
        self.server.last_round()
    }

    /// Requests degraded to indifference (missed deadlines, dead
    /// connections) accumulated across all waves so far.
    pub fn timed_out_total(&self) -> u64 {
        self.timed_out_total
    }

    /// Requests fanned out across all waves so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Replies that arrived before their deadline across all waves so
    /// far.
    pub fn answered_total(&self) -> u64 {
        self.answered_total
    }

    /// Number of live loopback host connections.
    pub fn live_hosts(&self) -> usize {
        self.links.iter().filter(|l| l.is_some()).count()
    }

    /// Gathers the candidate information for a batch of queries through
    /// one socket wave: requests are framed and fanned out by the
    /// server, the scoped host threads decode them from the wire and
    /// answer with `jobs`, and missing answers degrade to indifference.
    /// Returns one candidate-info vector per input query, in input
    /// order.
    pub fn gather(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
        jobs: WaveJobs<'_>,
    ) -> Vec<Vec<CandidateInfo>> {
        self.gather_with_faults(requests, jobs, &[])
    }

    /// [`SocketMediator::gather`] with per-host transport faults injected
    /// for this wave. A [`HostFault::Stall`]ed host swallows its requests
    /// without answering (its jobs never run; its replies degrade to
    /// indifference at the deadline); a [`HostFault::Drop`]ped host reads
    /// the wave, shuts its connection down mid-wave and stays down until
    /// its endpoints re-register.
    pub fn gather_with_faults(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
        jobs: WaveJobs<'_>,
        faults: &[(usize, HostFault)],
    ) -> Vec<Vec<CandidateInfo>> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Partition the jobs by loopback host.
        let hosts = self.host_count;
        let mut consumer_jobs: Vec<BTreeMap<ConsumerId, ConsumerWaveJob<'_>>> =
            (0..hosts).map(|_| BTreeMap::new()).collect();
        let mut provider_jobs: Vec<BTreeMap<ProviderId, ProviderWaveJob<'_>>> =
            (0..hosts).map(|_| BTreeMap::new()).collect();
        for (id, job) in jobs.consumers {
            consumer_jobs[Self::host_of(id.raw(), hosts)].insert(id, job);
        }
        for (id, job) in jobs.providers {
            provider_jobs[Self::host_of(id.raw(), hosts)].insert(id, job);
        }

        let server = &mut self.server;
        let links = &mut self.links;
        let mut dropped = Vec::new();
        let replies = std::thread::scope(|scope| {
            for (host, ((link, cjobs), pjobs)) in links
                .iter_mut()
                .zip(consumer_jobs)
                .zip(provider_jobs)
                .enumerate()
            {
                if cjobs.is_empty() && pjobs.is_empty() {
                    continue;
                }
                let Some(stream) = link.as_mut() else {
                    continue;
                };
                match faults.iter().find(|(h, _)| *h == host).map(|&(_, f)| f) {
                    None => {
                        scope.spawn(move || serve_wave_jobs(stream, cjobs, pjobs));
                    }
                    Some(HostFault::Stall) => {
                        // The jobs are dropped, not run: the host reads
                        // its requests (keeping the pipe drained and the
                        // frame stream aligned for the next wave) and
                        // stays silent.
                        scope.spawn(move || swallow_wave(stream, false));
                    }
                    Some(HostFault::Drop) => {
                        scope.spawn(move || swallow_wave(stream, true));
                        dropped.push(host);
                    }
                }
            }
            server.run_wave(requests)
        });
        for host in dropped {
            // The serving thread already shut the stream down; forget the
            // link so later waves skip the host instead of writing into a
            // closed pipe.
            if let Some(stream) = self.links[host].take() {
                stream.shutdown();
            }
        }
        let round = self.server.last_round();
        self.delivered_total += round.delivered as u64;
        self.answered_total += round.answered as u64;
        self.timed_out_total += round.timed_out as u64;
        replies.into_candidate_infos(requests)
    }

    /// Removes a consumer endpoint (e.g. on departure); when its host's
    /// endpoint set empties, the host connection is shut down on both
    /// sides.
    pub fn deregister_consumer(&mut self, id: ConsumerId) {
        if self.server.deregister_consumer(id) {
            self.drop_link_of(id.raw());
        } else {
            self.shrink_host_of(id.raw());
        }
    }

    /// Removes a provider endpoint (see
    /// [`SocketMediator::deregister_consumer`]).
    pub fn deregister_provider(&mut self, id: ProviderId) {
        if self.server.deregister_provider(id) {
            self.drop_link_of(id.raw());
        } else {
            self.shrink_host_of(id.raw());
        }
    }

    /// Registers a consumer endpoint (a re-joining participant): onto
    /// its host's live connection when one exists, otherwise over a
    /// fresh connection to the server (the host's previous link dropped
    /// or was shut down when its last endpoint departed).
    pub fn register_consumer(&mut self, id: ConsumerId) -> io::Result<()> {
        let host = Self::host_of(id.raw(), self.host_count);
        if self.links[host].is_none() {
            return self.reconnect_host(host, vec![id], Vec::new());
        }
        if self.server.register_consumer_on(id, self.host_slot[host]) {
            self.endpoints_per_host[host] += 1;
        }
        Ok(())
    }

    /// Registers a provider endpoint (see
    /// [`SocketMediator::register_consumer`]).
    pub fn register_provider(&mut self, id: ProviderId) -> io::Result<()> {
        let host = Self::host_of(id.raw(), self.host_count);
        if self.links[host].is_none() {
            return self.reconnect_host(host, Vec::new(), vec![id]);
        }
        if self.server.register_provider_on(id, self.host_slot[host]) {
            self.endpoints_per_host[host] += 1;
        }
        Ok(())
    }

    /// Re-establishes a dropped host link with a fresh connection whose
    /// hello declares the given endpoints, and accepts it server-side
    /// (the host gets a new slot).
    fn reconnect_host(
        &mut self,
        host: usize,
        consumers: Vec<ConsumerId>,
        providers: Vec<ProviderId>,
    ) -> io::Result<()> {
        let endpoints = consumers.len() + providers.len();
        let stream = Stream::connect_tcp(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut stream = stream;
        stream.write_all(&encode_participant_reply(&ParticipantReply::Hello {
            consumers,
            providers,
        }))?;
        stream.flush()?;
        self.host_slot[host] = self.server.accept_host(Duration::from_secs(10))?;
        self.links[host] = Some(stream);
        self.endpoints_per_host[host] = endpoints;
        Ok(())
    }

    fn shrink_host_of(&mut self, raw: u32) {
        let host = Self::host_of(raw, self.host_count);
        self.endpoints_per_host[host] = self.endpoints_per_host[host].saturating_sub(1);
    }

    fn drop_link_of(&mut self, raw: u32) {
        let host = Self::host_of(raw, self.host_count);
        self.endpoints_per_host[host] = 0;
        if let Some(stream) = self.links[host].take() {
            stream.shutdown();
        }
    }

    /// Tears the topology down: server-side shutdown plus the loopback
    /// links.
    pub fn shutdown(&mut self) {
        self.server.shutdown();
        for link in self.links.iter_mut() {
            if let Some(stream) = link.take() {
                stream.shutdown();
            }
        }
    }
}

impl Drop for SocketMediator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SocketMediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketMediator")
            .field("hosts", &self.host_count)
            .field("live_hosts", &self.live_hosts())
            .field("server", &self.server)
            .finish()
    }
}

/// Serves one wave's requests on a loopback host link: reads frames off
/// the wire, reassembles and decodes them, buffers the decoded requests
/// in the same [`WaveRequestBuffer`] the persistent host runs, and —
/// when the wave-end marker arrives — answers each addressed endpoint
/// by running its job on the *decoded* request, writing all replies in
/// one burst.
fn serve_wave_jobs(
    stream: &mut Stream,
    mut consumer_jobs: BTreeMap<ConsumerId, ConsumerWaveJob<'_>>,
    mut provider_jobs: BTreeMap<ProviderId, ProviderWaveJob<'_>>,
) -> io::Result<()> {
    // Waves are strictly sequential on a link (the engine is a
    // synchronous event loop), so a fresh assembler per wave never loses
    // partial bytes.
    let mut assembler = FrameAssembler::new();
    let mut buffer = WaveRequestBuffer::new();
    let mut out = Vec::new();
    loop {
        while let Some(message) = assembler
            .next_mediator_message()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            match message {
                MediatorMessage::ConsumerWaveRequest {
                    wave,
                    consumer,
                    requests,
                } => buffer.push_consumer(wave, consumer, requests),
                MediatorMessage::ProviderWaveRequest {
                    wave,
                    provider,
                    queries,
                    request_bids,
                } => buffer.push_provider(wave, provider, queries, request_bids),
                MediatorMessage::WaveEnd { wave } => {
                    let taken = buffer.take_wave(wave);
                    for (consumer, requests) in taken.consumers {
                        let intentions = consumer_jobs
                            .remove(&consumer)
                            .map(|job| job(&requests))
                            .unwrap_or_default();
                        encode_participant_reply_into(
                            &ParticipantReply::ConsumerWaveReply {
                                wave,
                                consumer,
                                intentions,
                            },
                            &mut out,
                        );
                    }
                    for (provider, queries, request_bids) in taken.providers {
                        let answers = provider_jobs
                            .remove(&provider)
                            .map(|job| job(&queries, request_bids))
                            .unwrap_or_default();
                        encode_participant_reply_into(
                            &ParticipantReply::ProviderWaveReply {
                                wave,
                                provider,
                                utilization: answers.first().map_or(0.0, |a| a.utilization),
                                intentions: answers
                                    .into_iter()
                                    .map(|a| (a.query, a.intention, a.bid))
                                    .collect(),
                            },
                            &mut out,
                        );
                    }
                    stream.write_all(&out)?;
                    return stream.flush();
                }
                MediatorMessage::Shutdown => return Ok(()),
                _ => {}
            }
        }
        match assembler.fill_from(stream) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads one wave's frames off a host link and discards them without
/// answering — the participant side of an injected [`HostFault`]. The
/// requests must still be consumed: waves are strictly sequential per
/// link, so frames left in the socket buffer would be mistaken for the
/// *next* wave's requests by its serving thread, desynchronizing the
/// link one wave per fault forever. With `drop_connection` the host
/// additionally shuts the stream down after the wave-end marker (the
/// mid-wave connection drop); otherwise it returns silently and the
/// wave's replies degrade to indifference at the server's deadline.
fn swallow_wave(stream: &mut Stream, drop_connection: bool) -> io::Result<()> {
    let mut assembler = FrameAssembler::new();
    loop {
        while let Some(message) = assembler
            .next_mediator_message()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            match message {
                MediatorMessage::WaveEnd { .. } => {
                    if drop_connection {
                        stream.shutdown();
                    }
                    return Ok(());
                }
                MediatorMessage::Shutdown => return Ok(()),
                _ => {}
            }
        }
        match assembler.fill_from(stream) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
