//! Standalone participant host: multiplexes a range of demo endpoints
//! over one connection to a wave server and serves mediation waves
//! until the mediator shuts it down.
//!
//! ```text
//! participant_host (--tcp ADDR | --uds PATH)
//!                  [--consumers A..B] [--providers A..B] [--label NAME]
//! ```
//!
//! Endpoint ranges are half-open raw-id ranges (`0..8`). The endpoints
//! answer with the deterministic `sqlb_transport::demo` formulas, so the
//! server side can verify every reply it receives.

use std::process::ExitCode;

use sqlb_transport::demo::{DemoConsumer, DemoProvider};
use sqlb_transport::ParticipantHost;
use sqlb_types::{ConsumerId, ProviderId};

struct Args {
    tcp: Option<String>,
    uds: Option<String>,
    consumers: std::ops::Range<u32>,
    providers: std::ops::Range<u32>,
    label: String,
}

fn parse_range(value: &str) -> Option<std::ops::Range<u32>> {
    let (start, end) = value.split_once("..")?;
    Some(start.parse().ok()?..end.parse().ok()?)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        uds: None,
        consumers: 0..0,
        providers: 0..0,
        label: "host".to_string(),
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let mut value = |name: &str| raw.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--uds" => args.uds = Some(value("--uds")?),
            "--consumers" => {
                args.consumers = parse_range(&value("--consumers")?)
                    .ok_or("--consumers wants a range like 0..8")?
            }
            "--providers" => {
                args.providers = parse_range(&value("--providers")?)
                    .ok_or("--providers wants a range like 0..64")?
            }
            "--label" => args.label = value("--label")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.tcp.is_none() == args.uds.is_none() {
        return Err("exactly one of --tcp ADDR or --uds PATH is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("participant_host: {message}");
            return ExitCode::FAILURE;
        }
    };

    let connected = if let Some(addr) = &args.tcp {
        ParticipantHost::connect_tcp(addr.as_str())
    } else {
        #[cfg(unix)]
        {
            ParticipantHost::connect_uds(args.uds.as_deref().expect("checked by parse_args"))
        }
        #[cfg(not(unix))]
        {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix-domain sockets are unavailable on this platform",
            ))
        }
    };
    let mut host = match connected {
        Ok(host) => host,
        Err(e) => {
            eprintln!("participant_host[{}]: connect failed: {e}", args.label);
            return ExitCode::FAILURE;
        }
    };

    for c in args.consumers.clone() {
        host.add_consumer(ConsumerId::new(c), DemoConsumer(ConsumerId::new(c)));
    }
    for p in args.providers.clone() {
        host.add_provider(ProviderId::new(p), DemoProvider(ProviderId::new(p)));
    }
    if let Err(e) = host.announce() {
        eprintln!("participant_host[{}]: hello failed: {e}", args.label);
        return ExitCode::FAILURE;
    }

    match host.serve() {
        Ok(report) => {
            println!(
                "participant_host[{}]: served {} waves, {} replies, {} notices, clean={}",
                args.label,
                report.waves_served,
                report.replies_sent,
                report.notices_received,
                report.clean_shutdown,
            );
            if report.clean_shutdown {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("participant_host[{}]: serve failed: {e}", args.label);
            ExitCode::FAILURE
        }
    }
}
