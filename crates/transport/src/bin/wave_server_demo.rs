//! Self-contained loopback smoke test of the socket mediation path:
//! a wave server plus `participant_host` processes over 127.0.0.1 (and
//! a Unix-domain socket when requested), exercising hello → waves →
//! notices → shutdown → goodbye end to end and verifying every reply
//! value against the shared demo formulas.
//!
//! ```text
//! wave_server_demo [--hosts N] [--consumers N] [--providers N]
//!                  [--waves N] [--spawn] [--uds] [--pipeline] [--stats]
//! ```
//!
//! With `--spawn` the participant hosts run as separate OS processes
//! (the sibling `participant_host` binary); otherwise they run as
//! in-process threads on the library. `--uds` moves host 0 onto a
//! Unix-domain socket so both transports are exercised in one run.
//! `--pipeline` drives the waves overlapped (`begin_wave` /
//! `collect_wave`, two in flight) instead of strictly one at a time —
//! every reply value is still verified against its own wave's formulas,
//! so cross-wave bleed fails loudly. `--stats` enables the `sqlb-obs`
//! instrumentation and exercises the live introspection endpoint: a
//! dedicated stats client (no endpoints) sends a `StatsRequest` to the
//! serving wave server mid-run, and the answered snapshot must carry
//! non-zero wave counters; it is printed in both the Prometheus text
//! and the JSON rendering. Exits non-zero on any divergence — usable
//! directly as a CI gate.

use std::process::{Child, Command, ExitCode};
use std::time::Duration;

use sqlb_core::allocation::{Allocation, CandidateInfo};
use sqlb_obs::{Obs, ObsSnapshot};
use sqlb_transport::demo::{
    consumer_intention, host_range, provider_intention, provider_utilization, DemoConsumer,
    DemoProvider,
};
use sqlb_transport::{ParticipantHost, ServerConfig, WaveServer};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

struct Args {
    hosts: u32,
    consumers: u32,
    providers: u32,
    waves: u32,
    spawn: bool,
    uds: bool,
    pipeline: bool,
    stats: bool,
}

/// Waves kept in flight at once under `--pipeline`.
const PIPELINE_DEPTH: usize = 2;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        hosts: 2,
        consumers: 8,
        providers: 64,
        waves: 3,
        spawn: false,
        uds: false,
        pipeline: false,
        stats: false,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let mut number = |name: &str| -> Result<u32, String> {
            raw.next()
                .and_then(|v| v.parse().ok())
                .ok_or(format!("{name} needs a number"))
        };
        match flag.as_str() {
            "--hosts" => args.hosts = number("--hosts")?.max(1),
            "--consumers" => args.consumers = number("--consumers")?.max(1),
            "--providers" => args.providers = number("--providers")?.max(1),
            "--waves" => args.waves = number("--waves")?.max(1),
            "--spawn" => args.spawn = true,
            "--uds" => args.uds = true,
            "--pipeline" => args.pipeline = true,
            "--stats" => args.stats = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg!(not(unix)) && args.uds {
        return Err("--uds requires a unix platform".into());
    }
    Ok(args)
}

enum Host {
    Process(Child),
    Thread(std::thread::JoinHandle<std::io::Result<sqlb_transport::HostReport>>),
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wave_server_demo: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("wave_server_demo: ok");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("wave_server_demo: FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_secs(10),
        request_bids: false,
    });
    if args.stats {
        let obs = Obs::enabled();
        // A crash mid-demo leaves the flight recorder's trace on stderr.
        obs.install_panic_dump();
        server.set_obs(obs);
    }
    let addr = server
        .listen_tcp("127.0.0.1:0")
        .map_err(|e| format!("tcp bind: {e}"))?;
    let uds_path = std::env::temp_dir().join(format!("sqlb-wave-{}.sock", std::process::id()));
    if args.uds {
        #[cfg(unix)]
        server
            .listen_uds(&uds_path)
            .map_err(|e| format!("uds bind: {e}"))?;
    }

    // Launch the participant hosts: contiguous id ranges, host 0 over
    // the Unix-domain socket when requested, the rest over TCP.
    let mut hosts: Vec<Host> = Vec::new();
    for h in 0..args.hosts {
        let consumers = host_range(args.consumers, args.hosts, h);
        let providers = host_range(args.providers, args.hosts, h);
        let use_uds = args.uds && h == 0;
        if args.spawn {
            let sibling = std::env::current_exe()
                .ok()
                .and_then(|exe| exe.parent().map(|dir| dir.join("participant_host")))
                .ok_or("cannot locate the participant_host binary")?;
            let mut command = Command::new(sibling);
            if use_uds {
                command.arg("--uds").arg(&uds_path);
            } else {
                command.arg("--tcp").arg(addr.to_string());
            }
            command
                .arg("--consumers")
                .arg(format!("{}..{}", consumers.start, consumers.end))
                .arg("--providers")
                .arg(format!("{}..{}", providers.start, providers.end))
                .arg("--label")
                .arg(format!("h{h}"));
            hosts.push(Host::Process(
                command
                    .spawn()
                    .map_err(|e| format!("spawn host {h}: {e}"))?,
            ));
        } else {
            let uds_path = uds_path.clone();
            hosts.push(Host::Thread(std::thread::spawn(move || {
                let mut host = if use_uds {
                    #[cfg(unix)]
                    {
                        ParticipantHost::connect_uds(&uds_path)?
                    }
                    #[cfg(not(unix))]
                    {
                        unreachable!("--uds is rejected on non-unix platforms")
                    }
                } else {
                    ParticipantHost::connect_tcp(addr)?
                };
                for c in consumers {
                    host.add_consumer(ConsumerId::new(c), DemoConsumer(ConsumerId::new(c)));
                }
                for p in providers {
                    host.add_provider(ProviderId::new(p), DemoProvider(ProviderId::new(p)));
                }
                host.announce()?;
                host.serve()
            })));
        }
    }

    server
        .accept_hosts(args.hosts as usize, Duration::from_secs(20))
        .map_err(|e| format!("accept: {e}"))?;
    if server.provider_count() != args.providers as usize
        || server.consumer_count() != args.consumers as usize
    {
        return Err(format!(
            "hello registration mismatch: {} consumers / {} providers registered",
            server.consumer_count(),
            server.provider_count()
        ));
    }

    // Each wave: every provider is the candidate of exactly one query
    // (the last query takes the shorter tail when the provider count is
    // not a multiple of the candidate-set size), queries round-robin
    // over the consumers — the batch that touches the whole endpoint
    // population once, so every single reply value gets verified.
    let candidates_per_query = 16u32.min(args.providers);
    let batches: Vec<Vec<(Query, Vec<ProviderId>)>> = (0..args.waves)
        .map(|wave| {
            (0..args.providers.div_ceil(candidates_per_query))
                .map(|i| {
                    let consumer = ConsumerId::new(i % args.consumers);
                    let query = Query::single(
                        QueryId::new(wave * 1_000_000 + i),
                        consumer,
                        QueryClass::Light,
                        SimTime::from_secs(wave as f64),
                    );
                    let first = i * candidates_per_query;
                    let last = (first + candidates_per_query).min(args.providers);
                    let candidates = (first..last).map(ProviderId::new).collect();
                    (query, candidates)
                })
                .collect()
        })
        .collect();

    // Verify every reply of a completed wave against the shared demo
    // formulas, then exercise the notification path for its first query.
    // The expected values depend on the wave's own query set, so a reply
    // credited to the wrong wave under `--pipeline` is caught here.
    let finish_wave = |server: &mut WaveServer,
                       wave: usize,
                       infos: &[Vec<CandidateInfo>]|
     -> Result<(), String> {
        let batch = &batches[wave];
        let round = server.last_round();
        if round.timed_out != 0 {
            return Err(format!(
                "wave {wave}: {} of {} requests timed out",
                round.timed_out, round.delivered
            ));
        }
        for ((query, candidates), query_infos) in batch.iter().zip(infos) {
            for (&p, info) in candidates.iter().zip(query_infos) {
                let expected_pi = provider_intention(p);
                let expected_ci = consumer_intention(query.consumer, p);
                let expected_ut = provider_utilization(p);
                if info.provider_intention != expected_pi
                    || info.consumer_intention != expected_ci
                    || info.utilization != expected_ut
                {
                    return Err(format!(
                        "wave {wave}: {} answered ({}, {}, {}), expected ({expected_pi}, {expected_ci}, {expected_ut})",
                        p, info.provider_intention, info.consumer_intention, info.utilization
                    ));
                }
            }
        }
        if let Some((query, candidates)) = batch.first() {
            let allocation = Allocation {
                query: query.id,
                selected: vec![candidates[0]],
                ranking: Vec::new(),
            };
            server.notify(query, candidates, &allocation);
        }
        println!(
            "wave_server_demo: wave {wave} ok — {} endpoint requests in {:.3} ms over {} connections{}",
            round.delivered,
            round.elapsed.as_secs_f64() * 1e3,
            server.connection_count(),
            if args.pipeline { " (pipelined)" } else { "" },
        );
        Ok(())
    };

    if args.pipeline {
        // Overlapped drive: keep up to PIPELINE_DEPTH waves in flight;
        // collect oldest-first so wave w's replies land in wave w's
        // ledger while wave w+1 is already on the wire.
        let mut collected = 0usize;
        for batch in &batches {
            while server.waves_in_flight() >= PIPELINE_DEPTH {
                let replies = server
                    .collect_wave()
                    .ok_or("collect_wave returned nothing with waves in flight")?;
                let infos = replies.into_candidate_infos(&batches[collected]);
                finish_wave(&mut server, collected, &infos)?;
                collected += 1;
            }
            server.begin_wave(batch);
        }
        while let Some(replies) = server.collect_wave() {
            let infos = replies.into_candidate_infos(&batches[collected]);
            finish_wave(&mut server, collected, &infos)?;
            collected += 1;
        }
        if collected != batches.len() {
            return Err(format!(
                "pipelined run collected {collected} of {} waves",
                batches.len()
            ));
        }
        if args.stats {
            exchange_stats(&mut server, addr)?;
        }
    } else {
        for (wave, batch) in batches.iter().enumerate() {
            let infos = server.gather(batch);
            finish_wave(&mut server, wave, &infos)?;
            // Mid-run, between waves: the server keeps serving after
            // answering the introspection request.
            if args.stats && wave == 0 {
                exchange_stats(&mut server, addr)?;
            }
        }
    }

    if args.stats {
        let final_waves = server
            .stats_snapshot()
            .counters
            .iter()
            .find(|(name, _)| name == "waves_begun")
            .map_or(0, |&(_, value)| value);
        if final_waves != args.waves as u64 {
            return Err(format!(
                "final snapshot reports {final_waves} waves begun, expected {}",
                args.waves
            ));
        }
    }

    server.shutdown();
    for (h, host) in hosts.into_iter().enumerate() {
        match host {
            Host::Process(mut child) => {
                let status = child
                    .wait()
                    .map_err(|e| format!("waiting for host {h}: {e}"))?;
                if !status.success() {
                    return Err(format!("host process {h} exited with {status}"));
                }
            }
            Host::Thread(handle) => {
                let report = handle
                    .join()
                    .map_err(|_| format!("host thread {h} panicked"))?
                    .map_err(|e| format!("host thread {h}: {e}"))?;
                if !report.clean_shutdown || report.waves_served != args.waves as u64 {
                    return Err(format!(
                        "host thread {h} report {report:?} is not a clean {}-wave run",
                        args.waves
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Exercises the live introspection endpoint against the serving
/// `server`: a dedicated stats client (announcing no endpoints)
/// connects, sends a stats request and blocks on the reply while this
/// thread accepts the connection and pumps
/// [`WaveServer::service_stats`]. The answered snapshot must carry
/// non-zero wave counters for the run so far; it is printed in both the
/// Prometheus text and the JSON rendering.
fn exchange_stats(server: &mut WaveServer, addr: std::net::SocketAddr) -> Result<(), String> {
    let client = std::thread::spawn(move || -> std::io::Result<ObsSnapshot> {
        let mut client = ParticipantHost::connect_tcp(addr)?;
        client.announce()?;
        client.request_stats()
    });
    server
        .accept_host(Duration::from_secs(10))
        .map_err(|e| format!("accepting the stats client: {e}"))?;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while !client.is_finished() {
        if std::time::Instant::now() > deadline {
            return Err("the stats reply was not served within 20 s".into());
        }
        server.service_stats(Duration::from_millis(20));
    }
    let snapshot = client
        .join()
        .map_err(|_| "stats client panicked".to_string())?
        .map_err(|e| format!("stats request: {e}"))?;
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, value)| value)
    };
    let waves = counter("waves_begun");
    let credited = counter("replies_credited");
    if waves == 0 || credited == 0 {
        return Err(format!(
            "stats snapshot reports {waves} waves / {credited} credited replies — expected non-zero"
        ));
    }
    println!(
        "wave_server_demo: live stats snapshot — {waves} waves begun, {credited} replies credited"
    );
    println!("--- prometheus ---\n{}", snapshot.to_prometheus_text());
    println!("--- json ---\n{}", snapshot.to_json());
    Ok(())
}
