//! # sqlb-transport
//!
//! Socket-backed mediation: the transport that makes the
//! tens-of-thousands-of-endpoints story literal.
//!
//! `sqlb-mediation` defines the wave protocol and its length-prefixed
//! binary framing; until this crate, nothing spoke that framing over a
//! real socket — the reactor's scale story was in-process only. This
//! crate runs Algorithm 1's mediator ⇄ participant intention exchange
//! (fork / waituntil / timeout, PAPER.md §5) across process boundaries:
//!
//! * [`WaveServer`] — the mediator side: accepts TCP and Unix-domain
//!   host connections, fans each mediation wave out as framed requests,
//!   collects framed replies until the wave deadline, and degrades
//!   everything still missing to indifference (never blocking the
//!   wave), with stale-wave replies discarded by wave-id correlation;
//! * [`ParticipantHost`] — the client library (and the
//!   `participant_host` binary built on it): multiplexes many consumer
//!   and provider endpoints over **one** connection per host — the
//!   socket count scales with hosts, not endpoints, which is what makes
//!   a 10 000-endpoint wave round practical over a handful of sockets;
//! * [`SocketMediator`] — the deterministic loopback harness the
//!   simulator engine drives as `MediationMode::Socket`: per-wave scoped
//!   host threads answer decoded-from-the-wire requests with jobs that
//!   borrow the engine's own agents, so same-seed runs produce the same
//!   allocation decisions as the in-process backends.
//!
//! Everything is `std` networking — the workspace builds fully offline.
//!
//! ## A minimal networked wave
//!
//! ```
//! use sqlb_mediation::{ConsumerEndpoint, ProviderEndpoint};
//! use sqlb_transport::{ParticipantHost, ServerConfig, WaveServer};
//! use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};
//! use std::time::Duration;
//!
//! struct Eager(f64);
//! impl ConsumerEndpoint for Eager {
//!     fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
//!         candidates.iter().map(|&p| (p, self.0)).collect()
//!     }
//! }
//! impl ProviderEndpoint for Eager {
//!     fn intention(&mut self, _q: &Query) -> f64 {
//!         self.0
//!     }
//! }
//!
//! let mut server = WaveServer::new(ServerConfig {
//!     timeout: Duration::from_secs(5),
//!     request_bids: false,
//! });
//! let addr = server.listen_tcp("127.0.0.1:0").unwrap();
//!
//! // One host, two endpoints, one socket.
//! let handle = std::thread::spawn(move || {
//!     let mut host = ParticipantHost::connect_tcp(addr).unwrap();
//!     host.add_consumer(ConsumerId::new(0), Eager(0.5));
//!     host.add_provider(ProviderId::new(0), Eager(0.8));
//!     host.announce().unwrap();
//!     host.serve().unwrap()
//! });
//!
//! server.accept_hosts(1, Duration::from_secs(5)).unwrap();
//! let query = Query::single(QueryId::new(1), ConsumerId::new(0), QueryClass::Light, SimTime::ZERO);
//! let infos = server.gather(&[(query, vec![ProviderId::new(0)])]);
//! assert_eq!(infos[0][0].provider_intention, 0.8);
//! assert_eq!(infos[0][0].consumer_intention, 0.5);
//!
//! server.shutdown();
//! let report = handle.join().unwrap();
//! assert_eq!(report.waves_served, 1);
//! assert!(report.clean_shutdown);
//! ```

#![deny(missing_docs)]

pub mod demo;
pub mod host;
pub mod ledger;
pub mod loopback;
pub mod net;
pub mod server;

pub use host::{HostReport, ParticipantHost, TakenWave, WaveRequestBuffer};
pub use ledger::{route_reply_frame, Applied, WaveLedger};
pub use loopback::{ConsumerWaveJob, HostFault, ProviderWaveJob, SocketMediator, WaveJobs};
pub use net::Stream;
pub use server::{ServerConfig, SocketRoundStats, WaveServer};
