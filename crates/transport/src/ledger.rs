//! The wave-collection ledger: the mediator-side protocol state machine,
//! factored out of [`crate::WaveServer`] so the model checker
//! (`sqlb-check`) and the real server run **one** implementation.
//!
//! [`WaveServer::begin_wave`](crate::WaveServer::begin_wave) plans a
//! wave's fan-out with [`WaveLedger::plan`] (which endpoints are asked,
//! over which connection, with what framed bytes) and credits replies
//! with [`route_reply_frame`]; everything that is pure protocol state —
//! per-wave reply ledgers, per-connection pending counts, stale-reply
//! and duplicate-reply rejection, cross-wave correlation — lives here,
//! behind a seam that takes no sockets and no wall clock. The server
//! wraps a ledger in real I/O and `Instant` deadlines; the checker wraps
//! the same ledger in a virtual clock and enumerated message schedules.
//!
//! Two accounting rules are deliberate hardening (both found by running
//! `sqlb-check` against the pre-seam implementation, which indexed
//! per-connection state by the *arrival* connection):
//!
//! * a reply is credited to the connection slot its request was
//!   **charged** to at plan time, never to the slot it arrived on — so a
//!   host that answers for an endpoint it does not own (buggy or
//!   byzantine), or a host that reconnected under a new slot, can no
//!   longer corrupt another connection's pending count or index past
//!   the end of an older wave's per-slot vector;
//! * a reply arriving on a different slot than its request was charged
//!   to is fully parsed (frame validation is unconditional) and then
//!   rejected as [`Applied::Foreign`] — the request was sent over one
//!   connection and its answer must come back on that connection.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use sqlb_mediation::reactor::{ConsumerBatchAnswer, ProviderBatchAnswer};
use sqlb_mediation::{
    decode_participant_reply, encode_mediator_message_into, FrameError, FrameReader,
    MediatorMessage, ProviderAnswer, WaveReplies,
};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

/// Test-only fault injection: when set, [`route_reply_frame`] *adds* to
/// the charged slot's pending count instead of subtracting — the
/// sign-flipped ledger credit the model checker must be able to catch
/// (proof that the harness can actually fail). Off by default; never set
/// outside tests.
static MISCOUNT_INJECTED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the sign-flipped ledger credit. Test-only: the
/// flag exists so `sqlb-check` can prove it detects a miscounting
/// ledger; production code never calls this.
#[doc(hidden)]
pub fn inject_miscount_for_tests(on: bool) {
    MISCOUNT_INJECTED.store(on, Ordering::Relaxed);
}

/// Whether the test-only miscount injection is currently on.
#[doc(hidden)]
pub fn miscount_injected() -> bool {
    MISCOUNT_INJECTED.load(Ordering::Relaxed)
}

/// One wave in flight: its reply ledgers and per-connection accounting,
/// keyed by wave id so overlapped waves can never cross-correlate. A
/// reply frame is routed to the ledger whose id it carries — a straggler
/// of an already-collected wave matches no ledger and is discarded,
/// exactly the stale-reply rule of the sequential server.
#[derive(Debug, Clone)]
pub struct WaveLedger {
    wave: u64,
    /// Endpoint requests written out.
    delivered: usize,
    /// Unanswered requests per connection slot *of plan time* (a slot
    /// accepted after this wave was planned has no entry — see
    /// [`WaveLedger::pending_on`]).
    pending_per_slot: Vec<usize>,
    consumer_slot: BTreeMap<ConsumerId, usize>,
    provider_slot: BTreeMap<ProviderId, usize>,
    /// The connection slot each consumer request was charged to; credits
    /// decrement exactly this slot.
    consumer_charged: Vec<usize>,
    provider_charged: Vec<usize>,
    consumer_replies: Vec<(ConsumerId, Option<ConsumerBatchAnswer>)>,
    provider_replies: Vec<(ProviderId, Option<ProviderBatchAnswer>)>,
}

impl WaveLedger {
    /// Plans one wave's fan-out: groups `requests` into one wave request
    /// per distinct participant, frames them into `outbox[slot]` for each
    /// participant's home connection (bracketed per involved slot with
    /// the [`MediatorMessage::WaveEnd`] marker), and returns the ledger
    /// that will account for the replies. Requests to endpoints with no
    /// live home connection are skipped — their answers degrade to
    /// indifference, the same contract the in-process backends apply to
    /// unregistered endpoints.
    ///
    /// `outbox` is resized to `slots` and cleared, so callers can reuse
    /// one scratch vector across waves; `live(slot)` reports whether a
    /// connection slot can still be written to.
    #[allow(clippy::too_many_arguments)]
    pub fn plan(
        wave: u64,
        requests: &[(Query, Vec<ProviderId>)],
        consumer_home: &BTreeMap<ConsumerId, usize>,
        provider_home: &BTreeMap<ProviderId, usize>,
        slots: usize,
        live: impl Fn(usize) -> bool,
        request_bids: bool,
        outbox: &mut Vec<Vec<u8>>,
    ) -> WaveLedger {
        // One request per distinct participant (BTreeMaps keep the
        // fan-out order deterministic).
        let mut by_consumer: BTreeMap<ConsumerId, Vec<(Query, Vec<ProviderId>)>> = BTreeMap::new();
        let mut by_provider: BTreeMap<ProviderId, Vec<Query>> = BTreeMap::new();
        for (query, candidates) in requests {
            by_consumer
                .entry(query.consumer)
                .or_default()
                .push((query.clone(), candidates.clone()));
            for provider in candidates {
                by_provider
                    .entry(*provider)
                    .or_default()
                    .push(query.clone());
            }
        }

        outbox.resize_with(slots, Vec::new);
        for bytes in outbox.iter_mut() {
            bytes.clear();
        }
        let mut ledger = WaveLedger {
            wave,
            delivered: 0,
            pending_per_slot: vec![0; slots],
            consumer_slot: BTreeMap::new(),
            provider_slot: BTreeMap::new(),
            consumer_charged: Vec::new(),
            provider_charged: Vec::new(),
            consumer_replies: Vec::new(),
            provider_replies: Vec::new(),
        };
        for (consumer, consumer_requests) in by_consumer {
            let Some(&home) = consumer_home.get(&consumer) else {
                continue;
            };
            if home >= slots || !live(home) {
                continue;
            }
            encode_mediator_message_into(
                &MediatorMessage::ConsumerWaveRequest {
                    wave,
                    consumer,
                    requests: consumer_requests,
                },
                &mut outbox[home],
            );
            ledger.pending_per_slot[home] += 1;
            ledger
                .consumer_slot
                .insert(consumer, ledger.consumer_replies.len());
            ledger.consumer_charged.push(home);
            ledger.consumer_replies.push((consumer, None));
        }
        for (provider, queries) in by_provider {
            let Some(&home) = provider_home.get(&provider) else {
                continue;
            };
            if home >= slots || !live(home) {
                continue;
            }
            encode_mediator_message_into(
                &MediatorMessage::ProviderWaveRequest {
                    wave,
                    provider,
                    queries,
                    request_bids,
                },
                &mut outbox[home],
            );
            ledger.pending_per_slot[home] += 1;
            ledger
                .provider_slot
                .insert(provider, ledger.provider_replies.len());
            ledger.provider_charged.push(home);
            ledger.provider_replies.push((provider, None));
        }
        ledger.delivered = ledger.pending_per_slot.iter().sum();

        // Bracket each involved connection's burst with the wave-end
        // marker (hosts buffer until they see it, then answer).
        for (slot, bytes) in outbox.iter_mut().enumerate().take(slots) {
            if ledger.pending_per_slot[slot] > 0 {
                encode_mediator_message_into(&MediatorMessage::WaveEnd { wave }, bytes);
            }
        }
        ledger
    }

    /// The wave this ledger accounts for.
    pub fn wave(&self) -> u64 {
        self.wave
    }

    /// Endpoint requests written out for this wave.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Unanswered requests charged to connection `slot`. Slots accepted
    /// after this wave was planned have no pending requests by
    /// definition, so any out-of-range slot reads as `0` — the collection
    /// loop can safely iterate the server's *current* connection set.
    pub fn pending_on(&self, slot: usize) -> usize {
        self.pending_per_slot.get(slot).copied().unwrap_or(0)
    }

    /// Unanswered requests across all slots.
    pub fn pending_total(&self) -> usize {
        self.pending_per_slot.iter().sum()
    }

    /// Whether every request of the wave has been answered.
    pub fn is_complete(&self) -> bool {
        self.pending_total() == 0
    }

    /// Replies actually stored in the ledger — the count the wave's
    /// statistics report as answered. Always equals
    /// `delivered() - pending_total()` (the checker asserts exactly this
    /// on every explored trace; the test-only miscount injection breaks
    /// it on the first credit).
    pub fn stored_replies(&self) -> usize {
        self.consumer_replies
            .iter()
            .filter(|(_, reply)| reply.is_some())
            .count()
            + self
                .provider_replies
                .iter()
                .filter(|(_, reply)| reply.is_some())
                .count()
    }

    /// Consumes the ledger into the wave's replies; missing answers stay
    /// `None` and degrade to indifference in
    /// [`WaveReplies::into_candidate_infos`].
    pub fn into_replies(self) -> WaveReplies {
        WaveReplies {
            consumers: self.consumer_replies,
            providers: self.provider_replies,
        }
    }

    /// Applies one credit to `charged`'s pending count. The test-only
    /// miscount injection flips the sign of this bookkeeping — the
    /// deliberate bug `sqlb-check` must catch.
    fn credit(&mut self, charged: usize) {
        let pending = &mut self.pending_per_slot[charged];
        if miscount_injected() {
            *pending = pending.saturating_add(1);
        } else {
            *pending = pending.saturating_sub(1);
        }
    }
}

/// What a popped reply meant to the in-flight waves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A fresh answer of an in-flight wave: one fewer pending request on
    /// its ledger.
    Counted,
    /// The host announced it is leaving.
    Goodbye,
    /// A stale-wave straggler, a duplicate of an already-filled slot, or
    /// a legacy single-query reply: discarded.
    Ignored,
    /// A reply that arrived on a different connection than its request
    /// was charged to — a host answering for an endpoint it does not own,
    /// or a reconnected host answering a request sent to its previous
    /// connection. Parsed, then rejected: crediting it would corrupt the
    /// per-connection accounting.
    Foreign,
}

/// Routes one reply frame read from connection `slot` to the in-flight
/// wave it answers, decoding scalars in place from the borrowed frame
/// bytes — the steady-state receive path allocates only the reply
/// vectors that are actually kept. A reply whose wave id matches no
/// in-flight ledger — a straggler of a wave already collected — is still
/// fully parsed (frame validation is unconditional) and then discarded,
/// exactly the sequential server's stale-reply rule; a duplicate of an
/// already-filled slot likewise validates and drops, and a reply
/// arriving on the wrong connection validates and rejects as
/// [`Applied::Foreign`].
///
/// `waves` is every in-flight ledger, oldest first — the server passes
/// its pending queue, the model checker its virtual one; both share this
/// exact routing and accounting.
pub fn route_reply_frame<'w>(
    frame: &[u8],
    waves: impl IntoIterator<Item = &'w mut WaveLedger>,
    slot: usize,
) -> Result<Applied, FrameError> {
    let mut waves = waves.into_iter();
    let mut r = FrameReader::open(frame)?;
    match r.u8()? {
        // ConsumerWaveReply
        3 => {
            let wave = r.u64()?;
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let target = waves.find(|w| w.wave == wave).and_then(|w| {
                let &i = w.consumer_slot.get(&consumer)?;
                w.consumer_replies[i].1.is_none().then_some((w, i))
            });
            match target {
                Some((w, i)) if w.consumer_charged[i] == slot => {
                    let mut intentions: ConsumerBatchAnswer = Vec::with_capacity(n);
                    for _ in 0..n {
                        let query = QueryId::new(r.u32()?);
                        let m = r.count()?;
                        let mut per_provider = Vec::with_capacity(m);
                        for _ in 0..m {
                            per_provider.push((ProviderId::new(r.u32()?), r.f64()?));
                        }
                        intentions.push((query, per_provider));
                    }
                    r.close()?;
                    w.consumer_replies[i].1 = Some(intentions);
                    w.credit(slot);
                    Ok(Applied::Counted)
                }
                target => {
                    let foreign = target.is_some();
                    for _ in 0..n {
                        r.u32()?;
                        let m = r.count()?;
                        for _ in 0..m {
                            r.u32()?;
                            r.f64()?;
                        }
                    }
                    r.close()?;
                    Ok(if foreign {
                        Applied::Foreign
                    } else {
                        Applied::Ignored
                    })
                }
            }
        }
        // ProviderWaveReply
        4 => {
            let wave = r.u64()?;
            let provider = ProviderId::new(r.u32()?);
            let utilization = r.f64()?;
            let n = r.count()?;
            let target = waves.find(|w| w.wave == wave).and_then(|w| {
                let &i = w.provider_slot.get(&provider)?;
                w.provider_replies[i].1.is_none().then_some((w, i))
            });
            match target {
                Some((w, i)) if w.provider_charged[i] == slot => {
                    let mut answers: ProviderBatchAnswer = Vec::with_capacity(n);
                    for _ in 0..n {
                        answers.push(ProviderAnswer {
                            query: QueryId::new(r.u32()?),
                            intention: r.f64()?,
                            utilization,
                            bid: r.bid()?,
                        });
                    }
                    r.close()?;
                    w.provider_replies[i].1 = Some(answers);
                    w.credit(slot);
                    Ok(Applied::Counted)
                }
                target => {
                    let foreign = target.is_some();
                    for _ in 0..n {
                        r.u32()?;
                        r.f64()?;
                        r.bid()?;
                    }
                    r.close()?;
                    Ok(if foreign {
                        Applied::Foreign
                    } else {
                        Applied::Ignored
                    })
                }
            }
        }
        // Goodbye
        6 => {
            r.close()?;
            Ok(Applied::Goodbye)
        }
        // Legacy single-query replies and hellos: validate the frame via
        // the owned decoder, then drop the value.
        _ => {
            decode_participant_reply(frame)?;
            Ok(Applied::Ignored)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_mediation::{encode_participant_reply, ParticipantReply};
    use sqlb_types::{QueryClass, SimTime};

    fn query(id: u32, consumer: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(consumer),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    fn homes() -> (BTreeMap<ConsumerId, usize>, BTreeMap<ProviderId, usize>) {
        let consumer_home = BTreeMap::from([(ConsumerId::new(0), 0)]);
        let provider_home = BTreeMap::from([(ProviderId::new(1), 0), (ProviderId::new(2), 1)]);
        (consumer_home, provider_home)
    }

    fn plan_one(outbox: &mut Vec<Vec<u8>>) -> WaveLedger {
        let (consumer_home, provider_home) = homes();
        WaveLedger::plan(
            7,
            &[(query(1, 0), vec![ProviderId::new(1), ProviderId::new(2)])],
            &consumer_home,
            &provider_home,
            2,
            |_| true,
            false,
            outbox,
        )
    }

    fn provider_reply(wave: u64, provider: u32, query: u32) -> Vec<u8> {
        encode_participant_reply(&ParticipantReply::ProviderWaveReply {
            wave,
            provider: ProviderId::new(provider),
            utilization: 0.5,
            intentions: vec![(QueryId::new(query), 0.25, None)],
        })
    }

    #[test]
    fn plan_charges_each_request_to_its_home_slot() {
        let mut outbox = Vec::new();
        let ledger = plan_one(&mut outbox);
        assert_eq!(ledger.delivered(), 3);
        assert_eq!(ledger.pending_on(0), 2); // consumer 0 + provider 1
        assert_eq!(ledger.pending_on(1), 1); // provider 2
        assert_eq!(ledger.pending_on(9), 0, "out-of-range slots read as 0");
        assert!(!outbox[0].is_empty() && !outbox[1].is_empty());
    }

    #[test]
    fn replies_credit_the_charged_slot() {
        let mut outbox = Vec::new();
        let mut ledger = plan_one(&mut outbox);
        let frame = provider_reply(7, 2, 1);
        let applied = route_reply_frame(&frame, [&mut ledger], 1).unwrap();
        assert_eq!(applied, Applied::Counted);
        assert_eq!(ledger.pending_on(1), 0);
        assert_eq!(ledger.stored_replies(), 1);
        assert_eq!(ledger.delivered() - ledger.pending_total(), 1);
    }

    #[test]
    fn foreign_slot_replies_are_rejected_not_credited() {
        // Provider 2 lives on slot 1; its reply arriving on slot 0 (a
        // buggy host answering for an endpoint it does not own) must be
        // rejected without touching either slot's accounting.
        let mut outbox = Vec::new();
        let mut ledger = plan_one(&mut outbox);
        let frame = provider_reply(7, 2, 1);
        let applied = route_reply_frame(&frame, [&mut ledger], 0).unwrap();
        assert_eq!(applied, Applied::Foreign);
        assert_eq!(ledger.pending_on(0), 2);
        assert_eq!(ledger.pending_on(1), 1);
        assert_eq!(ledger.stored_replies(), 0);
    }

    #[test]
    fn replies_from_slots_beyond_the_plan_never_index_out_of_bounds() {
        // A host accepted *after* this wave was planned (e.g. a crashed
        // host reconnecting under a fresh slot) delivers a reply for a
        // request charged to its old slot. Before the charged-slot fix
        // this indexed `pending_per_slot[arrival]` out of bounds.
        let mut outbox = Vec::new();
        let mut ledger = plan_one(&mut outbox);
        let frame = provider_reply(7, 2, 1);
        let applied = route_reply_frame(&frame, [&mut ledger], 5).unwrap();
        assert_eq!(applied, Applied::Foreign);
        assert_eq!(ledger.pending_total(), 3);
    }

    #[test]
    fn duplicate_replies_validate_and_drop() {
        let mut outbox = Vec::new();
        let mut ledger = plan_one(&mut outbox);
        let frame = provider_reply(7, 2, 1);
        assert_eq!(
            route_reply_frame(&frame, [&mut ledger], 1).unwrap(),
            Applied::Counted
        );
        assert_eq!(
            route_reply_frame(&frame, [&mut ledger], 1).unwrap(),
            Applied::Ignored
        );
        assert_eq!(ledger.stored_replies(), 1);
        assert_eq!(ledger.pending_on(1), 0);
    }

    #[test]
    fn stale_wave_replies_match_no_ledger() {
        let mut outbox = Vec::new();
        let mut ledger = plan_one(&mut outbox);
        let stale = provider_reply(6, 2, 1);
        assert_eq!(
            route_reply_frame(&stale, [&mut ledger], 1).unwrap(),
            Applied::Ignored
        );
        assert_eq!(ledger.pending_total(), 3);
    }
}
