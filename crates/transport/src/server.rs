//! The mediator-side wave server.
//!
//! [`WaveServer`] is the socket realization of Algorithm 1's fork /
//! waituntil / timeout loop: it accepts participant-host connections over
//! TCP and Unix-domain sockets, fans each mediation wave out as framed
//! [`MediatorMessage`]s to the hosts that own the addressed endpoints,
//! and collects the framed replies until every request is answered or
//! the wave deadline passes — at which point everything still missing
//! degrades to indifference, exactly like the in-process backends
//! (the assembly goes through the same
//! [`WaveReplies::into_candidate_infos`] helper, so the timeout
//! semantics live in one place).
//!
//! One connection carries *many* endpoints: a host opens with
//! [`ParticipantReply::Hello`] declaring the consumers and providers it
//! serves, and the server routes each endpoint's requests over that
//! host's connection. That is what makes tens of thousands of endpoints
//! practical — the socket count scales with hosts, not participants.
//!
//! Replies are correlated by wave id; a reply for an older wave (a
//! straggler that missed its deadline) is recognized as stale and
//! discarded, never mixed into the current wave.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::net::UnixListener;
#[cfg(unix)]
use std::path::PathBuf;

use sqlb_core::allocation::{Allocation, CandidateInfo};
use sqlb_mediation::{
    encode_mediator_message, encode_mediator_message_into, FrameAssembler, MediatorMessage,
    ParticipantReply, WaveReplies,
};
use sqlb_obs::{Counter, EventKind, Gauge, Histogram, Obs, ObsSnapshot};
use sqlb_types::{ConsumerId, ProviderId, Query};

use crate::ledger::{route_reply_frame, Applied, WaveLedger};
use crate::net::{is_timeout, Stream};

/// Wire tag of [`ParticipantReply::StatsRequest`] (tag byte at offset 4
/// of a frame, after the length prefix) — peeked on the receive path so
/// an introspection request can be intercepted before ledger routing.
const STATS_REQUEST_TAG: u8 = 7;

/// Pre-resolved observability instruments of a [`WaveServer`]. All
/// handles are no-ops until [`WaveServer::set_obs`] installs an enabled
/// [`Obs`], so the receive/send hot paths pay one predictable branch per
/// update when observability is off.
#[derive(Debug, Default)]
struct ServerMetrics {
    /// Waves begun (`begin_wave` calls).
    waves_begun: Counter,
    /// Endpoint requests written out across all waves.
    requests_delivered: Counter,
    /// Replies credited to an in-flight ledger.
    replies_credited: Counter,
    /// Stale, duplicate or foreign replies parsed and discarded.
    replies_discarded: Counter,
    /// Requests that degraded to indifference at a wave deadline.
    replies_timed_out: Counter,
    /// Frames reassembled from host connections.
    frames_reassembled: Counter,
    /// Bytes read from host connections.
    bytes_in: Counter,
    /// Bytes written to host connections.
    bytes_out: Counter,
    /// Waves currently in flight (pipeline depth).
    pipeline_depth: Gauge,
    /// Live host connections.
    connections: Gauge,
    /// Per-wave gather latency (begin to collect), seconds.
    wave_gather_seconds: Histogram,
}

impl ServerMetrics {
    /// Resolves every instrument from `obs` (no-ops when disabled).
    fn resolve(obs: &Obs) -> Self {
        ServerMetrics {
            waves_begun: obs.counter("waves_begun"),
            requests_delivered: obs.counter("requests_delivered"),
            replies_credited: obs.counter("replies_credited"),
            replies_discarded: obs.counter("replies_discarded"),
            replies_timed_out: obs.counter("replies_timed_out"),
            frames_reassembled: obs.counter("frames_reassembled"),
            bytes_in: obs.counter("bytes_in"),
            bytes_out: obs.counter("bytes_out"),
            pipeline_depth: obs.gauge("pipeline_depth"),
            connections: obs.gauge("connections"),
            wave_gather_seconds: obs.histogram("wave_gather_seconds"),
        }
    }
}

/// The observability context threaded through the server's receive
/// paths: instruments, the event recorder with its clock base, and the
/// queue of connection slots whose stats requests await an answer.
struct ObsCtx<'a> {
    m: &'a ServerMetrics,
    obs: &'a Obs,
    /// The server's birth instant; events are stamped with seconds
    /// since it (the transport has no virtual clock).
    t0: Instant,
    /// Slots that sent a [`ParticipantReply::StatsRequest`] and have
    /// not been answered yet.
    stats_requests: &'a mut Vec<usize>,
}

impl ObsCtx<'_> {
    /// Seconds since server start, the transport's event clock.
    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Accounts one reassembled frame; returns `true` when the frame
    /// was a stats request (intercepted, not for the ledger).
    fn on_frame(&mut self, frame: &[u8], slot: usize) -> bool {
        self.m.frames_reassembled.inc();
        if frame.len() > 4 && frame[4] == STATS_REQUEST_TAG {
            self.stats_requests.push(slot);
            return true;
        }
        false
    }

    /// Accounts one routed reply frame.
    fn on_applied(&mut self, frame: &[u8], applied: Applied) {
        if !self.obs.is_enabled() {
            return;
        }
        // Wave replies carry their wave id right after the tag byte;
        // peek it for the event stream (0 for non-wave frames).
        let wave = if frame.len() >= 13 && (frame[4] == 3 || frame[4] == 4) {
            u64::from_le_bytes(frame[5..13].try_into().expect("8 bytes"))
        } else {
            0
        };
        match applied {
            Applied::Counted => {
                self.m.replies_credited.inc();
                self.obs
                    .record(self.now(), EventKind::ReplyCredited { wave });
            }
            Applied::Ignored | Applied::Foreign => {
                self.m.replies_discarded.inc();
                self.obs
                    .record(self.now(), EventKind::StaleDiscard { wave });
            }
            Applied::Goodbye => {}
        }
    }
}

/// Wave-server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long a wave waits for replies before everything still missing
    /// degrades to indifference (Algorithm 1, line 5).
    pub timeout: Duration,
    /// Whether provider wave requests also ask for bids (economic
    /// methods).
    pub request_bids: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            timeout: Duration::from_millis(200),
            request_bids: false,
        }
    }
}

/// What happened during one socket wave.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SocketRoundStats {
    /// Identifier of the wave (1-based, monotonically increasing).
    pub wave: u64,
    /// Endpoint requests written to host connections.
    pub delivered: usize,
    /// Replies that arrived before the deadline.
    pub answered: usize,
    /// Requests still outstanding when the deadline passed; their values
    /// were read as indifference.
    pub timed_out: usize,
    /// Wall-clock time the wave took (write-out to last reply or
    /// deadline).
    pub elapsed: Duration,
}

/// One connected participant host.
struct HostConnection {
    stream: Stream,
    assembler: FrameAssembler,
    consumers: Vec<ConsumerId>,
    providers: Vec<ProviderId>,
}

/// One wave in flight: the shared protocol ledger
/// ([`WaveLedger`], also driven by `sqlb-check`'s model checker) plus
/// the real-time deadline bookkeeping only the live server needs.
struct PendingWave {
    /// When the wave's requests were written; the collection deadline is
    /// `started + timeout`, per wave, so overlapping does not stretch
    /// any wave's deadline.
    started: Instant,
    /// Reply ledger and per-connection accounting, keyed by wave id so
    /// overlapped waves can never cross-correlate.
    ledger: WaveLedger,
}

/// The mediator-side socket server: accepts host connections and drives
/// mediation waves over them.
pub struct WaveServer {
    config: ServerConfig,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    #[cfg(unix)]
    uds_path: Option<PathBuf>,
    /// Slots are stable across closures (`None` = closed) so endpoint
    /// home indices never dangle.
    connections: Vec<Option<HostConnection>>,
    consumer_home: BTreeMap<ConsumerId, usize>,
    provider_home: BTreeMap<ProviderId, usize>,
    next_wave: u64,
    waves: u64,
    last_round: SocketRoundStats,
    /// Waves begun but not yet collected, oldest first (see
    /// [`WaveServer::begin_wave`]).
    in_flight: VecDeque<PendingWave>,
    /// Per-connection encode scratch, reused across waves so the send
    /// path of a steady-state wave allocates nothing.
    outbox: Vec<Vec<u8>>,
    /// Observability sink (disabled by default — every instrument below
    /// is then a no-op handle).
    obs: Obs,
    /// Pre-resolved instruments (see [`ServerMetrics`]).
    metrics: ServerMetrics,
    /// Event-clock base: flight-recorder events are stamped with
    /// seconds since this instant.
    started_at: Instant,
    /// Connection slots with an unanswered
    /// [`ParticipantReply::StatsRequest`]; answered by
    /// [`WaveServer::flush_stats_replies`] at the end of every
    /// begin/collect/service call that drains frames.
    stats_requests: Vec<usize>,
}

impl WaveServer {
    /// Creates a server with no listener yet; call
    /// [`WaveServer::listen_tcp`] and/or [`WaveServer::listen_uds`].
    pub fn new(config: ServerConfig) -> Self {
        WaveServer {
            config,
            tcp: None,
            #[cfg(unix)]
            uds: None,
            #[cfg(unix)]
            uds_path: None,
            connections: Vec::new(),
            consumer_home: BTreeMap::new(),
            provider_home: BTreeMap::new(),
            next_wave: 1,
            waves: 0,
            last_round: SocketRoundStats::default(),
            in_flight: VecDeque::new(),
            outbox: Vec::new(),
            obs: Obs::disabled(),
            metrics: ServerMetrics::default(),
            started_at: Instant::now(),
            stats_requests: Vec::new(),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Installs an observability sink and resolves the server's
    /// instruments against it. With the default [`Obs::disabled`] every
    /// instrument stays a no-op handle and the wire behaviour is
    /// bit-identical — only [`MediatorMessage::StatsReply`] answers are
    /// then empty snapshots.
    pub fn set_obs(&mut self, obs: Obs) {
        self.metrics = ServerMetrics::resolve(&obs);
        self.obs = obs;
    }

    /// The server's observability sink (disabled unless
    /// [`WaveServer::set_obs`] installed an enabled one).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A point-in-time snapshot of the server's instruments — the same
    /// view a [`ParticipantReply::StatsRequest`] is answered with.
    pub fn stats_snapshot(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Starts listening on a TCP address (use port 0 for an ephemeral
    /// port) and returns the bound address.
    pub fn listen_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        // Accepts are polled (see accept_host), never allowed to block
        // the mediator indefinitely.
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.tcp = Some(listener);
        Ok(bound)
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Starts listening on a Unix-domain socket path. An existing socket
    /// file at the path is removed first (a stale file from a previous
    /// run would otherwise block the bind).
    #[cfg(unix)]
    pub fn listen_uds(&mut self, path: impl Into<PathBuf>) -> io::Result<()> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        self.uds = Some(listener);
        self.uds_path = Some(path);
        Ok(())
    }

    /// The Unix-domain socket path, when listening on one.
    #[cfg(unix)]
    pub fn uds_path(&self) -> Option<&std::path::Path> {
        self.uds_path.as_deref()
    }

    /// Accepts one host connection (from either listener) and reads its
    /// [`ParticipantReply::Hello`], registering the declared endpoints.
    /// Returns the connection's slot index. Fails with
    /// [`io::ErrorKind::TimedOut`] when no host shows up in time.
    pub fn accept_host(&mut self, timeout: Duration) -> io::Result<usize> {
        let deadline = Instant::now() + timeout;
        let stream = loop {
            if let Some(listener) = &self.tcp {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true)?;
                        stream.set_nonblocking(false)?;
                        break Stream::Tcp(stream);
                    }
                    Err(e) if is_timeout(&e) => {}
                    Err(e) => return Err(e),
                }
            }
            #[cfg(unix)]
            if let Some(listener) = &self.uds {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        break Stream::Unix(stream);
                    }
                    Err(e) if is_timeout(&e) => {}
                    Err(e) => return Err(e),
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no participant host connected before the deadline",
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        // Writes to this host must make progress or fail — a connected
        // host that stops reading would otherwise block the mediator's
        // wave fan-out forever, and the wave deadline only bounds reads.
        stream.set_write_timeout(Some(self.config.timeout.max(Duration::from_millis(100))))?;

        // The hello must arrive promptly; a connection that never
        // identifies itself cannot be routed to.
        let mut connection = HostConnection {
            stream,
            assembler: FrameAssembler::new(),
            consumers: Vec::new(),
            providers: Vec::new(),
        };
        let hello = loop {
            if let Some(reply) = connection
                .assembler
                .next_participant_reply()
                .map_err(frame_error)?
            {
                break reply;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "host connected but sent no hello before the deadline",
                ));
            }
            connection.stream.set_read_timeout(Some(remaining))?;
            match connection.assembler.fill_from(&mut connection.stream) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "host closed the connection before its hello",
                    ))
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let ParticipantReply::Hello {
            consumers,
            providers,
        } = hello
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "host's first frame was not a hello",
            ));
        };

        let slot = self.connections.len();
        for &c in &consumers {
            self.consumer_home.insert(c, slot);
        }
        for &p in &providers {
            self.provider_home.insert(p, slot);
        }
        connection.consumers = consumers;
        connection.providers = providers;
        self.connections.push(Some(connection));
        self.metrics.connections.set(self.connection_count() as i64);
        Ok(slot)
    }

    /// Accepts `hosts` connections (see [`WaveServer::accept_host`]);
    /// `timeout` bounds the whole accept phase.
    pub fn accept_hosts(&mut self, hosts: usize, timeout: Duration) -> io::Result<Vec<usize>> {
        let deadline = Instant::now() + timeout;
        let mut slots = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let remaining = deadline.saturating_duration_since(Instant::now());
            slots.push(self.accept_host(remaining)?);
        }
        Ok(slots)
    }

    /// Number of live host connections.
    pub fn connection_count(&self) -> usize {
        self.connections.iter().filter(|c| c.is_some()).count()
    }

    /// Number of registered consumer endpoints.
    pub fn consumer_count(&self) -> usize {
        self.consumer_home.len()
    }

    /// Number of registered provider endpoints.
    pub fn provider_count(&self) -> usize {
        self.provider_home.len()
    }

    /// Waves the server has run.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Statistics of the most recent wave.
    pub fn last_round(&self) -> SocketRoundStats {
        self.last_round
    }

    /// Runs one mediation wave over the connected hosts: one batched
    /// request per distinct participant of the batch, multiplexed over
    /// the owning host connections, answered until the configured
    /// deadline. Returns the raw replies; missing answers (unregistered
    /// endpoints, dead connections, replies past the deadline) are `None`
    /// and degrade to indifference in
    /// [`WaveReplies::into_candidate_infos`].
    ///
    /// Equivalent to [`WaveServer::begin_wave`] immediately followed by
    /// [`WaveServer::collect_wave`] — one wave in flight, the sequential
    /// Algorithm 1 loop.
    pub fn run_wave(&mut self, requests: &[(Query, Vec<ProviderId>)]) -> WaveReplies {
        self.begin_wave(requests);
        self.collect_wave()
            .expect("the wave begun on the previous line is in flight")
    }

    /// Number of waves begun but not yet collected.
    pub fn waves_in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Encodes and sends one wave's requests without waiting for any
    /// reply, registering a reply ledger keyed by the returned wave id —
    /// the pipelined fan-out half of [`WaveServer::run_wave`]: the caller
    /// may begin wave `t + 1` while wave `t`'s replies are still being
    /// computed, then drain results oldest-first with
    /// [`WaveServer::collect_wave`]. Replies arriving for *any* in-flight
    /// wave while another is being written or collected are credited to
    /// their own ledger (never mixed), and each wave's deadline runs from
    /// its own `begin_wave` call, so overlap changes throughput only —
    /// never the timeout-to-indifference or stale-reply semantics.
    pub fn begin_wave(&mut self, requests: &[(Query, Vec<ProviderId>)]) -> u64 {
        let wave = self.next_wave;
        self.next_wave += 1;
        self.waves += 1;

        // Plan the fan-out through the shared ledger seam: requests are
        // framed per connection into the reusable scratch buffers, each
        // involved connection's burst bracketed with the wave-end marker,
        // and the reply ledger records which slot every request was
        // charged to. Requests to endpoints with no live home connection
        // are skipped — their answers degrade to indifference, the same
        // contract the in-process backends apply to unregistered
        // endpoints.
        let connections = &self.connections;
        let ledger = WaveLedger::plan(
            wave,
            requests,
            &self.consumer_home,
            &self.provider_home,
            connections.len(),
            |slot| connections[slot].is_some(),
            self.config.request_bids,
            &mut self.outbox,
        );

        let delivered = ledger.delivered();
        self.in_flight.push_back(PendingWave {
            started: Instant::now(),
            ledger,
        });
        self.metrics.waves_begun.inc();
        self.metrics.requests_delivered.add(delivered as u64);
        self.metrics.pipeline_depth.set(self.in_flight.len() as i64);
        if self.obs.is_enabled() {
            self.obs.record(
                self.started_at.elapsed().as_secs_f64(),
                EventKind::WaveBegun {
                    wave,
                    delivered: delivered as u64,
                },
            );
        }

        // Write each connection's burst. With waves overlapped, the peer
        // may itself be blocked writing an earlier wave's replies while
        // its receive buffer is full of ours — so a stalled write drains
        // incoming replies (credited to their waves' ledgers) instead of
        // deadlocking on two full pipes.
        let WaveServer {
            config,
            connections,
            in_flight,
            outbox,
            obs,
            metrics,
            started_at,
            stats_requests,
            ..
        } = self;
        let mut ctx = ObsCtx {
            m: metrics,
            obs,
            t0: *started_at,
            stats_requests,
        };
        let write_deadline = Instant::now() + config.timeout.max(Duration::from_millis(100));
        for slot in 0..connections.len() {
            if outbox[slot].is_empty() {
                continue;
            }
            let mut written = 0;
            let mut dead = false;
            while written < outbox[slot].len() && !dead {
                let Some(connection) = connections[slot].as_mut() else {
                    break;
                };
                if connection
                    .stream
                    .set_write_timeout(Some(Duration::from_millis(20)))
                    .is_err()
                {
                    dead = true;
                    break;
                }
                match connection.stream.write(&outbox[slot][written..]) {
                    Ok(0) => dead = true,
                    Ok(n) => written += n,
                    Err(e) if is_timeout(&e) => {
                        // The peer may itself be stalled writing replies
                        // of an earlier wave into our full receive
                        // buffer; pull those replies out so both pipes
                        // keep moving, then retry — up to the same
                        // overall budget a non-pipelined write had.
                        if drain_slot(connection, in_flight, slot, &mut ctx).is_err()
                            || Instant::now() >= write_deadline
                        {
                            dead = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => dead = true,
                }
            }
            ctx.m.bytes_out.add(written as u64);
            if let Some(connection) = connections[slot].as_mut() {
                // Restore the long per-write budget used by notify /
                // shutdown writes.
                dead = dead
                    || connection
                        .stream
                        .set_write_timeout(Some(config.timeout.max(Duration::from_millis(100))))
                        .is_err()
                    || connection.stream.flush().is_err();
            }
            if dead {
                // A dead connection: its endpoints' replies stay missing
                // and degrade to indifference.
                if let Some(connection) = connections[slot].take() {
                    connection.stream.shutdown();
                }
            }
        }
        self.metrics.connections.set(self.connection_count() as i64);
        // Stats requests surfaced while draining stalled writes.
        self.flush_stats_replies();
        wave
    }

    /// Collects the **oldest** in-flight wave: reads replies until every
    /// request of that wave is answered or its deadline (begun at its
    /// `begin_wave`) passes, then returns its ledger. Replies for
    /// *newer* in-flight waves encountered along the way are credited to
    /// their own ledgers — by the time those waves are collected, part
    /// (or all) of their replies have usually already arrived. Returns
    /// `None` when no wave is in flight.
    pub fn collect_wave(&mut self) -> Option<WaveReplies> {
        let front = self.in_flight.front()?;
        let wave = front.ledger.wave();
        let started = front.started;
        let deadline = started + self.config.timeout;

        // Collect replies per connection until the wave's deadline. The
        // first pass works the connections in slot order, each allowed
        // to block until the deadline — so one stalled host can consume
        // the whole budget. A second, drain-only pass then harvests the
        // replies the *other* hosts delivered in time: those frames are
        // already sitting in this process's socket buffers and must not
        // be miscounted as timeouts just because an earlier slot was
        // slow.
        let WaveServer {
            connections,
            in_flight,
            obs,
            metrics,
            started_at,
            stats_requests,
            ..
        } = self;
        let mut ctx = ObsCtx {
            m: metrics,
            obs,
            t0: *started_at,
            stats_requests,
        };
        for drain_only in [false, true] {
            for (slot, connection_slot) in connections.iter_mut().enumerate() {
                let mut dead = false;
                loop {
                    if in_flight
                        .front()
                        .is_none_or(|front| front.ledger.pending_on(slot) == 0)
                    {
                        break;
                    }
                    let Some(connection) = connection_slot.as_mut() else {
                        break;
                    };
                    // Drain whatever is already assembled before reading.
                    match connection.assembler.next_frame() {
                        Err(_) => {
                            // Garbage on the stream: frame boundaries
                            // are lost, the connection is unusable.
                            dead = true;
                        }
                        Ok(Some(frame)) => {
                            if ctx.on_frame(frame, slot) {
                                // An introspection request, answered in
                                // flush_stats_replies — never routed to
                                // a ledger.
                                continue;
                            }
                            let ledgers = in_flight.iter_mut().map(|w| &mut w.ledger);
                            match route_reply_frame(frame, ledgers, slot) {
                                Err(_) => dead = true,
                                // The host is leaving mid-wave; whatever
                                // it has not answered degrades.
                                Ok(Applied::Goodbye) => dead = true,
                                Ok(applied) => ctx.on_applied(frame, applied),
                            }
                            if !dead {
                                continue;
                            }
                        }
                        Ok(None) => {
                            let remaining = deadline.saturating_duration_since(Instant::now());
                            let timeout = if drain_only {
                                // Harvest only what has (essentially)
                                // already arrived; don't wait for
                                // anything new.
                                Duration::from_millis(1)
                            } else if remaining.is_zero() {
                                break;
                            } else {
                                remaining
                            };
                            if connection.stream.set_read_timeout(Some(timeout)).is_err() {
                                dead = true;
                            } else {
                                match connection.assembler.fill_from(&mut connection.stream) {
                                    Ok(0) => dead = true,
                                    Ok(n) => ctx.m.bytes_in.add(n as u64),
                                    Err(e) if is_timeout(&e) => {
                                        if drain_only {
                                            break;
                                        }
                                    }
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                    Err(_) => dead = true,
                                }
                            }
                        }
                    }
                    if dead {
                        break;
                    }
                }
                if dead {
                    if let Some(connection) = connection_slot.take() {
                        connection.stream.shutdown();
                    }
                }
            }
        }

        let finished = self
            .in_flight
            .pop_front()
            .expect("the front wave existed at entry and nothing pops between");
        let delivered = finished.ledger.delivered();
        let answered = delivered - finished.ledger.pending_total();
        debug_assert_eq!(
            answered,
            finished.ledger.stored_replies(),
            "ledger accounting must agree with the stored replies"
        );
        self.last_round = SocketRoundStats {
            wave,
            delivered,
            answered,
            timed_out: delivered - answered,
            elapsed: started.elapsed(),
        };
        self.metrics
            .wave_gather_seconds
            .record(self.last_round.elapsed.as_secs_f64());
        self.metrics.pipeline_depth.set(self.in_flight.len() as i64);
        self.metrics.connections.set(self.connection_count() as i64);
        let timed_out = self.last_round.timed_out;
        if timed_out > 0 {
            self.metrics.replies_timed_out.add(timed_out as u64);
            if self.obs.is_enabled() {
                self.obs.record(
                    self.started_at.elapsed().as_secs_f64(),
                    EventKind::TimeoutIndifference {
                        wave,
                        count: timed_out as u64,
                    },
                );
            }
        }
        self.flush_stats_replies();
        Some(finished.ledger.into_replies())
    }

    /// Gathers the candidate information for a batch of queries in one
    /// socket wave — the transport counterpart of the reactor's
    /// `gather_batch`: one candidate-info vector per input query, in
    /// input order, indifference filled in for every missing answer.
    pub fn gather(&mut self, requests: &[(Query, Vec<ProviderId>)]) -> Vec<Vec<CandidateInfo>> {
        if requests.is_empty() {
            return Vec::new();
        }
        self.run_wave(requests).into_candidate_infos(requests)
    }

    /// Notifies every candidate of the mediation result and the consumer
    /// of its allocation (Algorithm 1, lines 9–10), as framed one-way
    /// messages over the owning connections.
    pub fn notify(&mut self, query: &Query, candidates: &[ProviderId], allocation: &Allocation) {
        self.outbox.resize_with(self.connections.len(), Vec::new);
        for bytes in &mut self.outbox {
            bytes.clear();
        }
        for &provider in candidates {
            if let Some(&home) = self.provider_home.get(&provider) {
                encode_mediator_message_into(
                    &MediatorMessage::AllocationNotice {
                        query: query.id,
                        provider,
                        selected: allocation.is_selected(provider),
                    },
                    &mut self.outbox[home],
                );
            }
        }
        if let Some(&home) = self.consumer_home.get(&query.consumer) {
            encode_mediator_message_into(
                &MediatorMessage::AllocationResult {
                    query: query.id,
                    consumer: query.consumer,
                    providers: allocation.selected.clone(),
                },
                &mut self.outbox[home],
            );
        }
        for slot in 0..self.connections.len() {
            if self.outbox[slot].is_empty() {
                continue;
            }
            if let Some(connection) = self.connections[slot].as_mut() {
                if connection.stream.write_all(&self.outbox[slot]).is_err() {
                    self.close_slot(slot);
                } else {
                    self.metrics.bytes_out.add(self.outbox[slot].len() as u64);
                }
            }
        }
    }

    /// Polls every live connection once for pending frames while no
    /// wave is being collected — the idle pump behind the live
    /// introspection endpoint. Wave replies found along the way are
    /// credited to their in-flight ledgers exactly as
    /// [`WaveServer::collect_wave`] would credit them; every
    /// [`ParticipantReply::StatsRequest`] is answered with a
    /// [`MediatorMessage::StatsReply`] snapshot. Each connection gets
    /// one bounded read (`timeout`), so a call costs at most
    /// `connections × timeout` wall clock. Returns the number of stats
    /// requests answered.
    ///
    /// Connections whose endpoints are all busy answering a wave simply
    /// have nothing buffered; a dedicated introspection client (a host
    /// that said hello with no endpoints) is serviced here without
    /// disturbing wave traffic.
    pub fn service_stats(&mut self, timeout: Duration) -> usize {
        let WaveServer {
            connections,
            in_flight,
            obs,
            metrics,
            started_at,
            stats_requests,
            ..
        } = self;
        let mut ctx = ObsCtx {
            m: metrics,
            obs,
            t0: *started_at,
            stats_requests,
        };
        for (slot, connection_slot) in connections.iter_mut().enumerate() {
            let Some(connection) = connection_slot.as_mut() else {
                continue;
            };
            if connection.stream.set_read_timeout(Some(timeout)).is_err() {
                if let Some(connection) = connection_slot.take() {
                    connection.stream.shutdown();
                }
                continue;
            }
            let mut dead = false;
            match connection.assembler.fill_from(&mut connection.stream) {
                Ok(0) => dead = true,
                Ok(n) => ctx.m.bytes_in.add(n as u64),
                Err(e) if is_timeout(&e) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => dead = true,
            }
            while !dead {
                match connection.assembler.next_frame() {
                    Err(_) => dead = true,
                    Ok(None) => break,
                    Ok(Some(frame)) => {
                        if ctx.on_frame(frame, slot) {
                            continue;
                        }
                        let ledgers = in_flight.iter_mut().map(|w| &mut w.ledger);
                        match route_reply_frame(frame, ledgers, slot) {
                            Err(_) => dead = true,
                            Ok(Applied::Goodbye) => dead = true,
                            Ok(applied) => ctx.on_applied(frame, applied),
                        }
                    }
                }
            }
            if dead {
                if let Some(connection) = connection_slot.take() {
                    connection.stream.shutdown();
                }
            }
        }
        self.metrics.connections.set(self.connection_count() as i64);
        self.flush_stats_replies()
    }

    /// Answers every queued [`ParticipantReply::StatsRequest`] with one
    /// shared snapshot and returns how many were answered. Write
    /// failures close the requesting slot.
    fn flush_stats_replies(&mut self) -> usize {
        if self.stats_requests.is_empty() {
            return 0;
        }
        let mut slots = std::mem::take(&mut self.stats_requests);
        slots.sort_unstable();
        slots.dedup();
        // One snapshot per flush: every request queued in the same
        // drain sees the same view.
        let frame = encode_mediator_message(&MediatorMessage::StatsReply {
            snapshot: self.obs.snapshot(),
        });
        let mut answered = 0;
        for slot in slots {
            let Some(connection) = self.connections[slot].as_mut() else {
                continue;
            };
            if connection.stream.write_all(&frame).is_ok() && connection.stream.flush().is_ok() {
                self.metrics.bytes_out.add(frame.len() as u64);
                answered += 1;
            } else {
                self.close_slot(slot);
            }
        }
        answered
    }

    /// Removes a consumer endpoint (e.g. on departure). When this leaves
    /// its host connection with no endpoints at all, the connection is
    /// shut down and dropped; returns `true` in that case.
    pub fn deregister_consumer(&mut self, id: ConsumerId) -> bool {
        let Some(slot) = self.consumer_home.remove(&id) else {
            return false;
        };
        if let Some(connection) = self.connections[slot].as_mut() {
            connection.consumers.retain(|&c| c != id);
            if connection.consumers.is_empty() && connection.providers.is_empty() {
                self.shutdown_slot(slot);
                return true;
            }
        }
        false
    }

    /// Removes a provider endpoint (see
    /// [`WaveServer::deregister_consumer`]).
    pub fn deregister_provider(&mut self, id: ProviderId) -> bool {
        let Some(slot) = self.provider_home.remove(&id) else {
            return false;
        };
        if let Some(connection) = self.connections[slot].as_mut() {
            connection.providers.retain(|&p| p != id);
            if connection.consumers.is_empty() && connection.providers.is_empty() {
                self.shutdown_slot(slot);
                return true;
            }
        }
        false
    }

    /// Registers a consumer endpoint on an already-connected host slot
    /// (a re-joining participant multiplexed onto a live connection, the
    /// inverse of [`WaveServer::deregister_consumer`]). Returns `false`
    /// when the slot is closed or the endpoint is already registered.
    pub fn register_consumer_on(&mut self, id: ConsumerId, slot: usize) -> bool {
        if self.consumer_home.contains_key(&id) {
            return false;
        }
        let Some(Some(connection)) = self.connections.get_mut(slot) else {
            return false;
        };
        connection.consumers.push(id);
        self.consumer_home.insert(id, slot);
        true
    }

    /// Registers a provider endpoint on an already-connected host slot
    /// (see [`WaveServer::register_consumer_on`]).
    pub fn register_provider_on(&mut self, id: ProviderId, slot: usize) -> bool {
        if self.provider_home.contains_key(&id) {
            return false;
        }
        let Some(Some(connection)) = self.connections.get_mut(slot) else {
            return false;
        };
        connection.providers.push(id);
        self.provider_home.insert(id, slot);
        true
    }

    /// Sends `Shutdown` to every live host and drops the connections.
    /// The Unix-domain socket file, if any, is removed.
    pub fn shutdown(&mut self) {
        for slot in 0..self.connections.len() {
            if self.connections[slot].is_some() {
                self.shutdown_slot(slot);
            }
        }
        #[cfg(unix)]
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Sends `Shutdown` on one connection and drops it.
    fn shutdown_slot(&mut self, slot: usize) {
        if let Some(connection) = self.connections[slot].as_mut() {
            let frame = encode_mediator_message(&MediatorMessage::Shutdown);
            let _ = connection.stream.write_all(&frame);
            let _ = connection.stream.flush();
        }
        self.close_slot(slot);
    }

    /// Drops a connection without ceremony (I/O already failed).
    fn close_slot(&mut self, slot: usize) {
        if let Some(connection) = self.connections[slot].take() {
            connection.stream.shutdown();
        }
        self.metrics.connections.set(self.connection_count() as i64);
    }
}

impl Drop for WaveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WaveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveServer")
            .field("connections", &self.connection_count())
            .field("consumers", &self.consumer_home.len())
            .field("providers", &self.provider_home.len())
            .field("waves", &self.waves)
            .finish()
    }
}

fn frame_error(error: sqlb_mediation::FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, error)
}

/// Drains replies already available on one connection while a wave
/// write is stalled: pops every assembled frame (crediting whichever
/// in-flight ledger each belongs to, via the shared
/// [`route_reply_frame`]) and performs one short read so the peer's
/// send buffer keeps moving. `Err` means the connection is no longer
/// usable.
fn drain_slot(
    connection: &mut HostConnection,
    waves: &mut VecDeque<PendingWave>,
    slot: usize,
    ctx: &mut ObsCtx<'_>,
) -> io::Result<()> {
    loop {
        match connection.assembler.next_frame() {
            Err(error) => return Err(frame_error(error)),
            Ok(None) => break,
            Ok(Some(frame)) => {
                if ctx.on_frame(frame, slot) {
                    // An introspection request; queued for
                    // flush_stats_replies, never routed to a ledger.
                    continue;
                }
                let ledgers = waves.iter_mut().map(|w| &mut w.ledger);
                match route_reply_frame(frame, ledgers, slot) {
                    Err(error) => return Err(frame_error(error)),
                    Ok(Applied::Goodbye) => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "host said goodbye mid-wave",
                        ))
                    }
                    Ok(applied) => ctx.on_applied(frame, applied),
                }
            }
        }
    }
    connection
        .stream
        .set_read_timeout(Some(Duration::from_millis(1)))?;
    match connection.assembler.fill_from(&mut connection.stream) {
        Ok(0) => Err(io::ErrorKind::UnexpectedEof.into()),
        Ok(n) => {
            ctx.m.bytes_in.add(n as u64);
            Ok(())
        }
        Err(e) if is_timeout(&e) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
        Err(e) => Err(e),
    }
}
