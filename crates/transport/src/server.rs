//! The mediator-side wave server.
//!
//! [`WaveServer`] is the socket realization of Algorithm 1's fork /
//! waituntil / timeout loop: it accepts participant-host connections over
//! TCP and Unix-domain sockets, fans each mediation wave out as framed
//! [`MediatorMessage`]s to the hosts that own the addressed endpoints,
//! and collects the framed replies until every request is answered or
//! the wave deadline passes — at which point everything still missing
//! degrades to indifference, exactly like the in-process backends
//! (the assembly goes through the same
//! [`WaveReplies::into_candidate_infos`] helper, so the timeout
//! semantics live in one place).
//!
//! One connection carries *many* endpoints: a host opens with
//! [`ParticipantReply::Hello`] declaring the consumers and providers it
//! serves, and the server routes each endpoint's requests over that
//! host's connection. That is what makes tens of thousands of endpoints
//! practical — the socket count scales with hosts, not participants.
//!
//! Replies are correlated by wave id; a reply for an older wave (a
//! straggler that missed its deadline) is recognized as stale and
//! discarded, never mixed into the current wave.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::unix::net::UnixListener;
#[cfg(unix)]
use std::path::PathBuf;

use sqlb_core::allocation::{Allocation, CandidateInfo};
use sqlb_mediation::reactor::{ConsumerBatchAnswer, ProviderBatchAnswer};
use sqlb_mediation::{
    encode_mediator_message, FrameAssembler, MediatorMessage, ParticipantReply, ProviderAnswer,
    WaveReplies,
};
use sqlb_types::{ConsumerId, ProviderId, Query};

use crate::net::{is_timeout, Stream};

/// Wave-server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// How long a wave waits for replies before everything still missing
    /// degrades to indifference (Algorithm 1, line 5).
    pub timeout: Duration,
    /// Whether provider wave requests also ask for bids (economic
    /// methods).
    pub request_bids: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            timeout: Duration::from_millis(200),
            request_bids: false,
        }
    }
}

/// What happened during one socket wave.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SocketRoundStats {
    /// Identifier of the wave (1-based, monotonically increasing).
    pub wave: u64,
    /// Endpoint requests written to host connections.
    pub delivered: usize,
    /// Replies that arrived before the deadline.
    pub answered: usize,
    /// Requests still outstanding when the deadline passed; their values
    /// were read as indifference.
    pub timed_out: usize,
    /// Wall-clock time the wave took (write-out to last reply or
    /// deadline).
    pub elapsed: Duration,
}

/// One connected participant host.
struct HostConnection {
    stream: Stream,
    assembler: FrameAssembler,
    consumers: Vec<ConsumerId>,
    providers: Vec<ProviderId>,
}

/// The mediator-side socket server: accepts host connections and drives
/// mediation waves over them.
pub struct WaveServer {
    config: ServerConfig,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    #[cfg(unix)]
    uds_path: Option<PathBuf>,
    /// Slots are stable across closures (`None` = closed) so endpoint
    /// home indices never dangle.
    connections: Vec<Option<HostConnection>>,
    consumer_home: BTreeMap<ConsumerId, usize>,
    provider_home: BTreeMap<ProviderId, usize>,
    next_wave: u64,
    waves: u64,
    last_round: SocketRoundStats,
}

impl WaveServer {
    /// Creates a server with no listener yet; call
    /// [`WaveServer::listen_tcp`] and/or [`WaveServer::listen_uds`].
    pub fn new(config: ServerConfig) -> Self {
        WaveServer {
            config,
            tcp: None,
            #[cfg(unix)]
            uds: None,
            #[cfg(unix)]
            uds_path: None,
            connections: Vec::new(),
            consumer_home: BTreeMap::new(),
            provider_home: BTreeMap::new(),
            next_wave: 1,
            waves: 0,
            last_round: SocketRoundStats::default(),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }

    /// Starts listening on a TCP address (use port 0 for an ephemeral
    /// port) and returns the bound address.
    pub fn listen_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        // Accepts are polled (see accept_host), never allowed to block
        // the mediator indefinitely.
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.tcp = Some(listener);
        Ok(bound)
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Starts listening on a Unix-domain socket path. An existing socket
    /// file at the path is removed first (a stale file from a previous
    /// run would otherwise block the bind).
    #[cfg(unix)]
    pub fn listen_uds(&mut self, path: impl Into<PathBuf>) -> io::Result<()> {
        let path = path.into();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        self.uds = Some(listener);
        self.uds_path = Some(path);
        Ok(())
    }

    /// The Unix-domain socket path, when listening on one.
    #[cfg(unix)]
    pub fn uds_path(&self) -> Option<&std::path::Path> {
        self.uds_path.as_deref()
    }

    /// Accepts one host connection (from either listener) and reads its
    /// [`ParticipantReply::Hello`], registering the declared endpoints.
    /// Returns the connection's slot index. Fails with
    /// [`io::ErrorKind::TimedOut`] when no host shows up in time.
    pub fn accept_host(&mut self, timeout: Duration) -> io::Result<usize> {
        let deadline = Instant::now() + timeout;
        let stream = loop {
            if let Some(listener) = &self.tcp {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true)?;
                        stream.set_nonblocking(false)?;
                        break Stream::Tcp(stream);
                    }
                    Err(e) if is_timeout(&e) => {}
                    Err(e) => return Err(e),
                }
            }
            #[cfg(unix)]
            if let Some(listener) = &self.uds {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        break Stream::Unix(stream);
                    }
                    Err(e) if is_timeout(&e) => {}
                    Err(e) => return Err(e),
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no participant host connected before the deadline",
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        // Writes to this host must make progress or fail — a connected
        // host that stops reading would otherwise block the mediator's
        // wave fan-out forever, and the wave deadline only bounds reads.
        stream.set_write_timeout(Some(self.config.timeout.max(Duration::from_millis(100))))?;

        // The hello must arrive promptly; a connection that never
        // identifies itself cannot be routed to.
        let mut connection = HostConnection {
            stream,
            assembler: FrameAssembler::new(),
            consumers: Vec::new(),
            providers: Vec::new(),
        };
        let hello = loop {
            if let Some(reply) = connection
                .assembler
                .next_participant_reply()
                .map_err(frame_error)?
            {
                break reply;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "host connected but sent no hello before the deadline",
                ));
            }
            connection.stream.set_read_timeout(Some(remaining))?;
            let mut chunk = [0u8; 4096];
            match connection.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "host closed the connection before its hello",
                    ))
                }
                Ok(n) => connection.assembler.extend(&chunk[..n]),
                Err(e) if is_timeout(&e) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let ParticipantReply::Hello {
            consumers,
            providers,
        } = hello
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "host's first frame was not a hello",
            ));
        };

        let slot = self.connections.len();
        for &c in &consumers {
            self.consumer_home.insert(c, slot);
        }
        for &p in &providers {
            self.provider_home.insert(p, slot);
        }
        connection.consumers = consumers;
        connection.providers = providers;
        self.connections.push(Some(connection));
        Ok(slot)
    }

    /// Accepts `hosts` connections (see [`WaveServer::accept_host`]);
    /// `timeout` bounds the whole accept phase.
    pub fn accept_hosts(&mut self, hosts: usize, timeout: Duration) -> io::Result<Vec<usize>> {
        let deadline = Instant::now() + timeout;
        let mut slots = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let remaining = deadline.saturating_duration_since(Instant::now());
            slots.push(self.accept_host(remaining)?);
        }
        Ok(slots)
    }

    /// Number of live host connections.
    pub fn connection_count(&self) -> usize {
        self.connections.iter().filter(|c| c.is_some()).count()
    }

    /// Number of registered consumer endpoints.
    pub fn consumer_count(&self) -> usize {
        self.consumer_home.len()
    }

    /// Number of registered provider endpoints.
    pub fn provider_count(&self) -> usize {
        self.provider_home.len()
    }

    /// Waves the server has run.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Statistics of the most recent wave.
    pub fn last_round(&self) -> SocketRoundStats {
        self.last_round
    }

    /// Runs one mediation wave over the connected hosts: one batched
    /// request per distinct participant of the batch, multiplexed over
    /// the owning host connections, answered until the configured
    /// deadline. Returns the raw replies; missing answers (unregistered
    /// endpoints, dead connections, replies past the deadline) are `None`
    /// and degrade to indifference in
    /// [`WaveReplies::into_candidate_infos`].
    pub fn run_wave(&mut self, requests: &[(Query, Vec<ProviderId>)]) -> WaveReplies {
        let wave = self.next_wave;
        self.next_wave += 1;
        self.waves += 1;
        let started = Instant::now();

        // One request per distinct participant (BTreeMaps keep the fan-out
        // order deterministic).
        let mut by_consumer: BTreeMap<ConsumerId, Vec<(Query, Vec<ProviderId>)>> = BTreeMap::new();
        let mut by_provider: BTreeMap<ProviderId, Vec<Query>> = BTreeMap::new();
        for (query, candidates) in requests {
            by_consumer
                .entry(query.consumer)
                .or_default()
                .push((query.clone(), candidates.clone()));
            for provider in candidates {
                by_provider
                    .entry(*provider)
                    .or_default()
                    .push(query.clone());
            }
        }

        // Frame the wave per connection. Requests to endpoints with no
        // live home connection are skipped — their answers degrade to
        // indifference, the same contract the in-process backends apply
        // to unregistered endpoints.
        let mut outbox: Vec<Vec<u8>> = vec![Vec::new(); self.connections.len()];
        let mut expected: Vec<usize> = vec![0; self.connections.len()];
        let mut consumer_replies: Vec<(ConsumerId, Option<ConsumerBatchAnswer>)> = Vec::new();
        let mut consumer_slot: BTreeMap<ConsumerId, usize> = BTreeMap::new();
        let mut provider_replies: Vec<(ProviderId, Option<ProviderBatchAnswer>)> = Vec::new();
        let mut provider_slot: BTreeMap<ProviderId, usize> = BTreeMap::new();
        for (consumer, consumer_requests) in by_consumer {
            let Some(&home) = self.consumer_home.get(&consumer) else {
                continue;
            };
            if self.connections[home].is_none() {
                continue;
            }
            outbox[home].extend(encode_mediator_message(
                &MediatorMessage::ConsumerWaveRequest {
                    wave,
                    consumer,
                    requests: consumer_requests,
                },
            ));
            expected[home] += 1;
            consumer_slot.insert(consumer, consumer_replies.len());
            consumer_replies.push((consumer, None));
        }
        for (provider, queries) in by_provider {
            let Some(&home) = self.provider_home.get(&provider) else {
                continue;
            };
            if self.connections[home].is_none() {
                continue;
            }
            outbox[home].extend(encode_mediator_message(
                &MediatorMessage::ProviderWaveRequest {
                    wave,
                    provider,
                    queries,
                    request_bids: self.config.request_bids,
                },
            ));
            expected[home] += 1;
            provider_slot.insert(provider, provider_replies.len());
            provider_replies.push((provider, None));
        }

        // Write each connection's requests in one burst, bracketed by the
        // wave-end marker (hosts buffer until they see it, then answer —
        // which is what keeps both directions draining).
        let delivered: usize = expected.iter().sum();
        for (slot, bytes) in outbox.iter_mut().enumerate() {
            if expected[slot] == 0 {
                continue;
            }
            bytes.extend(encode_mediator_message(&MediatorMessage::WaveEnd { wave }));
            let Some(connection) = self.connections[slot].as_mut() else {
                continue;
            };
            if connection.stream.write_all(bytes).is_err() || connection.stream.flush().is_err() {
                // A dead connection: its endpoints' replies stay missing
                // and degrade to indifference.
                self.close_slot(slot);
            }
        }

        // Collect replies per connection until the shared deadline. The
        // first pass works the connections in slot order, each allowed
        // to block until the deadline — so one stalled host can consume
        // the whole budget. A second, drain-only pass then harvests the
        // replies the *other* hosts delivered in time: those frames are
        // already sitting in this process's socket buffers and must not
        // be miscounted as timeouts just because an earlier slot was
        // slow.
        let deadline = started + self.config.timeout;
        let mut pending = expected.clone();
        let mut chunk = [0u8; 65536];
        for drain_only in [false, true] {
            // An index loop on purpose: the body needs `pending[slot]`
            // mutable while `self.connections[slot]` is re-borrowed per
            // iteration (close_slot takes `&mut self`).
            #[allow(clippy::needless_range_loop)]
            for slot in 0..self.connections.len() {
                if pending[slot] == 0 {
                    continue;
                }
                let mut dead = false;
                while pending[slot] > 0 && !dead {
                    let Some(connection) = self.connections[slot].as_mut() else {
                        break;
                    };
                    // Drain whatever is already assembled before reading.
                    match connection.assembler.next_participant_reply() {
                        Err(_) => {
                            // Garbage on the stream: frame boundaries
                            // are lost, the connection is unusable.
                            dead = true;
                            continue;
                        }
                        Ok(Some(reply)) => {
                            match apply_reply(
                                wave,
                                reply,
                                &consumer_slot,
                                &provider_slot,
                                &mut consumer_replies,
                                &mut provider_replies,
                            ) {
                                Applied::Counted => pending[slot] -= 1,
                                // The host is leaving mid-wave; whatever
                                // it has not answered degrades.
                                Applied::Goodbye => dead = true,
                                Applied::Ignored => {}
                            }
                            continue;
                        }
                        Ok(None) => {}
                    }
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    let timeout = if drain_only {
                        // Harvest only what has (essentially) already
                        // arrived; don't wait for anything new.
                        Duration::from_millis(1)
                    } else if remaining.is_zero() {
                        break;
                    } else {
                        remaining
                    };
                    if connection.stream.set_read_timeout(Some(timeout)).is_err() {
                        dead = true;
                        continue;
                    }
                    match connection.stream.read(&mut chunk) {
                        Ok(0) => dead = true,
                        Ok(n) => connection.assembler.extend(&chunk[..n]),
                        Err(e) if is_timeout(&e) => {
                            if drain_only {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => dead = true,
                    }
                }
                if dead {
                    self.close_slot(slot);
                }
            }
        }
        let answered = delivered - pending.iter().sum::<usize>();

        self.last_round = SocketRoundStats {
            wave,
            delivered,
            answered,
            timed_out: delivered - answered,
            elapsed: started.elapsed(),
        };
        WaveReplies {
            consumers: consumer_replies,
            providers: provider_replies,
        }
    }

    /// Gathers the candidate information for a batch of queries in one
    /// socket wave — the transport counterpart of the reactor's
    /// `gather_batch`: one candidate-info vector per input query, in
    /// input order, indifference filled in for every missing answer.
    pub fn gather(&mut self, requests: &[(Query, Vec<ProviderId>)]) -> Vec<Vec<CandidateInfo>> {
        if requests.is_empty() {
            return Vec::new();
        }
        self.run_wave(requests).into_candidate_infos(requests)
    }

    /// Notifies every candidate of the mediation result and the consumer
    /// of its allocation (Algorithm 1, lines 9–10), as framed one-way
    /// messages over the owning connections.
    pub fn notify(&mut self, query: &Query, candidates: &[ProviderId], allocation: &Allocation) {
        let mut outbox: Vec<Vec<u8>> = vec![Vec::new(); self.connections.len()];
        for &provider in candidates {
            if let Some(&home) = self.provider_home.get(&provider) {
                outbox[home].extend(encode_mediator_message(
                    &MediatorMessage::AllocationNotice {
                        query: query.id,
                        provider,
                        selected: allocation.is_selected(provider),
                    },
                ));
            }
        }
        if let Some(&home) = self.consumer_home.get(&query.consumer) {
            outbox[home].extend(encode_mediator_message(
                &MediatorMessage::AllocationResult {
                    query: query.id,
                    consumer: query.consumer,
                    providers: allocation.selected.clone(),
                },
            ));
        }
        for (slot, bytes) in outbox.iter().enumerate() {
            if bytes.is_empty() {
                continue;
            }
            if let Some(connection) = self.connections[slot].as_mut() {
                if connection.stream.write_all(bytes).is_err() {
                    self.close_slot(slot);
                }
            }
        }
    }

    /// Removes a consumer endpoint (e.g. on departure). When this leaves
    /// its host connection with no endpoints at all, the connection is
    /// shut down and dropped; returns `true` in that case.
    pub fn deregister_consumer(&mut self, id: ConsumerId) -> bool {
        let Some(slot) = self.consumer_home.remove(&id) else {
            return false;
        };
        if let Some(connection) = self.connections[slot].as_mut() {
            connection.consumers.retain(|&c| c != id);
            if connection.consumers.is_empty() && connection.providers.is_empty() {
                self.shutdown_slot(slot);
                return true;
            }
        }
        false
    }

    /// Removes a provider endpoint (see
    /// [`WaveServer::deregister_consumer`]).
    pub fn deregister_provider(&mut self, id: ProviderId) -> bool {
        let Some(slot) = self.provider_home.remove(&id) else {
            return false;
        };
        if let Some(connection) = self.connections[slot].as_mut() {
            connection.providers.retain(|&p| p != id);
            if connection.consumers.is_empty() && connection.providers.is_empty() {
                self.shutdown_slot(slot);
                return true;
            }
        }
        false
    }

    /// Sends `Shutdown` to every live host and drops the connections.
    /// The Unix-domain socket file, if any, is removed.
    pub fn shutdown(&mut self) {
        for slot in 0..self.connections.len() {
            if self.connections[slot].is_some() {
                self.shutdown_slot(slot);
            }
        }
        #[cfg(unix)]
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Sends `Shutdown` on one connection and drops it.
    fn shutdown_slot(&mut self, slot: usize) {
        if let Some(connection) = self.connections[slot].as_mut() {
            let frame = encode_mediator_message(&MediatorMessage::Shutdown);
            let _ = connection.stream.write_all(&frame);
            let _ = connection.stream.flush();
        }
        self.close_slot(slot);
    }

    /// Drops a connection without ceremony (I/O already failed).
    fn close_slot(&mut self, slot: usize) {
        if let Some(connection) = self.connections[slot].take() {
            connection.stream.shutdown();
        }
    }
}

impl Drop for WaveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WaveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveServer")
            .field("connections", &self.connection_count())
            .field("consumers", &self.consumer_home.len())
            .field("providers", &self.provider_home.len())
            .field("waves", &self.waves)
            .finish()
    }
}

fn frame_error(error: sqlb_mediation::FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, error)
}

/// What a popped reply meant to the wave being collected.
enum Applied {
    /// A fresh answer of this wave: one fewer pending request.
    Counted,
    /// The host announced it is leaving.
    Goodbye,
    /// A stale-wave straggler, a duplicate, or a legacy single-query
    /// reply: discarded.
    Ignored,
}

/// Applies one participant reply to the wave's reply slots (wave-id
/// correlated: anything not addressed to `wave` is ignored).
fn apply_reply(
    wave: u64,
    reply: ParticipantReply,
    consumer_slot: &BTreeMap<ConsumerId, usize>,
    provider_slot: &BTreeMap<ProviderId, usize>,
    consumer_replies: &mut [(ConsumerId, Option<ConsumerBatchAnswer>)],
    provider_replies: &mut [(ProviderId, Option<ProviderBatchAnswer>)],
) -> Applied {
    match reply {
        ParticipantReply::ConsumerWaveReply {
            wave: replied,
            consumer,
            intentions,
        } if replied == wave => {
            if let Some(&i) = consumer_slot.get(&consumer) {
                if consumer_replies[i].1.is_none() {
                    consumer_replies[i].1 = Some(intentions);
                    return Applied::Counted;
                }
            }
            Applied::Ignored
        }
        ParticipantReply::ProviderWaveReply {
            wave: replied,
            provider,
            utilization,
            intentions,
        } if replied == wave => {
            if let Some(&i) = provider_slot.get(&provider) {
                if provider_replies[i].1.is_none() {
                    provider_replies[i].1 = Some(
                        intentions
                            .into_iter()
                            .map(|(query, intention, bid)| ProviderAnswer {
                                query,
                                intention,
                                utilization,
                                bid,
                            })
                            .collect(),
                    );
                    return Applied::Counted;
                }
            }
            Applied::Ignored
        }
        ParticipantReply::Goodbye => Applied::Goodbye,
        _ => Applied::Ignored,
    }
}
