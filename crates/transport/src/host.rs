//! The participant-host client: many endpoints, one socket.
//!
//! [`ParticipantHost`] is the client-side library a deployment links
//! into each participant process. It multiplexes any number of consumer
//! and provider endpoints (the same [`ConsumerEndpoint`] /
//! [`ProviderEndpoint`] traits the in-process runtimes use) over a
//! single TCP or Unix-domain connection to a [`crate::WaveServer`]:
//! one socket per host, not per endpoint, which is what lets a handful
//! of connections carry tens of thousands of endpoints.
//!
//! The host announces its endpoints with a `Hello`, then serves waves:
//! it buffers each wave's requests until the `WaveEnd` marker, computes
//! every reply, and writes them in one burst. (Buffering until the
//! marker is also a flow-control contract: the host keeps reading while
//! the server keeps writing, so neither side can block the other into a
//! deadlock on full socket buffers.) Endpoint latency hooks are
//! honoured the way the threaded runtime models them: `After` sleeps
//! before the reply, `Never` sends none — the server reads the silence
//! as indifference when the wave deadline passes.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::ToSocketAddrs;

#[cfg(unix)]
use std::path::Path;

use sqlb_mediation::{
    encode_participant_reply, encode_participant_reply_into, FrameAssembler, Latency,
    MediatorMessage, ParticipantReply,
};
use sqlb_mediation::{ConsumerEndpoint, ProviderEndpoint};
use sqlb_obs::{Counter, Obs};
use sqlb_types::{ConsumerId, ProviderId, Query};

use crate::net::Stream;

/// Pre-resolved observability instruments of a [`ParticipantHost`] —
/// the live-readable mirror of [`HostReport`], plus byte accounting.
/// All no-ops until [`ParticipantHost::set_obs`] installs an enabled
/// [`Obs`].
#[derive(Debug, Default)]
struct HostMetrics {
    /// Waves answered (mirrors [`HostReport::waves_served`]).
    waves_served: Counter,
    /// Endpoint replies written (mirrors [`HostReport::replies_sent`]).
    replies_sent: Counter,
    /// Notices/results delivered (mirrors
    /// [`HostReport::notices_received`]).
    notices_received: Counter,
    /// Bytes read from the server connection.
    bytes_in: Counter,
    /// Bytes written to the server connection.
    bytes_out: Counter,
}

impl HostMetrics {
    /// Resolves every instrument from `obs` (no-ops when disabled).
    fn resolve(obs: &Obs) -> Self {
        HostMetrics {
            waves_served: obs.counter("host_waves_served"),
            replies_sent: obs.counter("host_replies_sent"),
            notices_received: obs.counter("host_notices_received"),
            bytes_in: obs.counter("host_bytes_in"),
            bytes_out: obs.counter("host_bytes_out"),
        }
    }
}

/// A buffered consumer wave request: `(wave, addressee, decoded
/// requests)`, held until the wave-end marker arrives.
type BufferedConsumerRequest = (u64, ConsumerId, Vec<(Query, Vec<ProviderId>)>);
/// A buffered provider wave request: `(wave, addressee, decoded
/// queries, request_bids)`.
type BufferedProviderRequest = (u64, ProviderId, Vec<Query>, bool);

/// Buffers decoded wave requests until their wave-end marker arrives.
///
/// Both the real [`ParticipantHost`] and the `sqlb-check` model host
/// run this exact structure, so the checker exercises the same
/// buffering discipline the deployment ships. The wave discipline
/// lives in [`WaveRequestBuffer::take_wave`]: requests of *older*
/// waves are dropped (stale leftovers of a wave the server already
/// timed out), while requests of *newer* waves stay buffered — under
/// depth-2 pipelining the server legitimately writes wave `t+1`
/// requests before the host has seen wave `t`'s end marker, and
/// dropping them would silently degrade the next wave to
/// indifference.
#[derive(Debug, Clone, Default)]
pub struct WaveRequestBuffer {
    consumers: Vec<BufferedConsumerRequest>,
    providers: Vec<BufferedProviderRequest>,
}

/// The requests of one wave, removed from a [`WaveRequestBuffer`] in
/// arrival order by [`WaveRequestBuffer::take_wave`].
#[derive(Debug, Clone, Default)]
pub struct TakenWave {
    /// Consumer requests of the taken wave: `(addressee, batch)`.
    #[allow(clippy::type_complexity)]
    pub consumers: Vec<(ConsumerId, Vec<(Query, Vec<ProviderId>)>)>,
    /// Provider requests of the taken wave: `(addressee, queries,
    /// request_bids)`.
    pub providers: Vec<(ProviderId, Vec<Query>, bool)>,
}

impl WaveRequestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers one decoded consumer wave request.
    pub fn push_consumer(
        &mut self,
        wave: u64,
        consumer: ConsumerId,
        requests: Vec<(Query, Vec<ProviderId>)>,
    ) {
        self.consumers.push((wave, consumer, requests));
    }

    /// Buffers one decoded provider wave request.
    pub fn push_provider(
        &mut self,
        wave: u64,
        provider: ProviderId,
        queries: Vec<Query>,
        request_bids: bool,
    ) {
        self.providers.push((wave, provider, queries, request_bids));
    }

    /// Number of buffered requests across all waves.
    pub fn len(&self) -> usize {
        self.consumers.len() + self.providers.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty() && self.providers.is_empty()
    }

    /// Removes and returns `wave`'s requests in arrival order. Older
    /// waves' leftovers are discarded; newer waves' requests (written
    /// early by a pipelining server) remain buffered for their own
    /// end marker.
    pub fn take_wave(&mut self, wave: u64) -> TakenWave {
        let mut taken = TakenWave::default();
        let mut kept = Vec::new();
        for (w, consumer, requests) in std::mem::take(&mut self.consumers) {
            match w.cmp(&wave) {
                std::cmp::Ordering::Equal => taken.consumers.push((consumer, requests)),
                std::cmp::Ordering::Greater => kept.push((w, consumer, requests)),
                std::cmp::Ordering::Less => {}
            }
        }
        self.consumers = kept;
        let mut kept = Vec::new();
        for (w, provider, queries, bids) in std::mem::take(&mut self.providers) {
            match w.cmp(&wave) {
                std::cmp::Ordering::Equal => taken.providers.push((provider, queries, bids)),
                std::cmp::Ordering::Greater => kept.push((w, provider, queries, bids)),
                std::cmp::Ordering::Less => {}
            }
        }
        self.providers = kept;
        taken
    }
}

/// Summary of one host's service, returned when the connection ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostReport {
    /// Waves this host answered.
    pub waves_served: u64,
    /// Individual endpoint replies written.
    pub replies_sent: u64,
    /// Allocation notices/results delivered to endpoints.
    pub notices_received: u64,
    /// Whether the connection ended with a mediator `Shutdown` (`true`)
    /// or an EOF (`false`).
    pub clean_shutdown: bool,
}

/// A participant host: endpoints multiplexed over one connection.
pub struct ParticipantHost {
    stream: Stream,
    assembler: FrameAssembler,
    consumers: BTreeMap<ConsumerId, Box<dyn ConsumerEndpoint>>,
    providers: BTreeMap<ProviderId, Box<dyn ProviderEndpoint>>,
    report: HostReport,
    /// Reply-encode scratch, reused across waves: a steady-state wave's
    /// reply burst is framed with no buffer allocation at all.
    scratch: Vec<u8>,
    /// Pre-resolved instruments (no-ops until
    /// [`ParticipantHost::set_obs`]).
    metrics: HostMetrics,
}

impl ParticipantHost {
    /// Connects to a wave server over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self::over(Stream::connect_tcp(addr)?))
    }

    /// Connects to a wave server over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::over(Stream::connect_uds(path)?))
    }

    /// Wraps an already-connected stream.
    pub fn over(stream: Stream) -> Self {
        ParticipantHost {
            stream,
            assembler: FrameAssembler::new(),
            consumers: BTreeMap::new(),
            providers: BTreeMap::new(),
            report: HostReport::default(),
            scratch: Vec::new(),
            metrics: HostMetrics::default(),
        }
    }

    /// Installs an observability sink: the host's service counters
    /// ([`HostReport`] mirrors, byte totals) become live-readable
    /// through the sink's registry. With the default disabled sink the
    /// host records nothing.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.metrics = HostMetrics::resolve(obs);
    }

    /// Registers a consumer endpoint on this host (before
    /// [`ParticipantHost::announce`]).
    pub fn add_consumer(&mut self, id: ConsumerId, endpoint: impl ConsumerEndpoint) {
        self.consumers.insert(id, Box::new(endpoint));
    }

    /// Registers a provider endpoint on this host.
    pub fn add_provider(&mut self, id: ProviderId, endpoint: impl ProviderEndpoint) {
        self.providers.insert(id, Box::new(endpoint));
    }

    /// Number of endpoints this host multiplexes.
    pub fn endpoint_count(&self) -> usize {
        self.consumers.len() + self.providers.len()
    }

    /// Sends the `Hello` declaring this host's endpoints; the server
    /// routes their wave requests over this connection from then on.
    pub fn announce(&mut self) -> io::Result<()> {
        let hello = ParticipantReply::Hello {
            consumers: self.consumers.keys().copied().collect(),
            providers: self.providers.keys().copied().collect(),
        };
        self.stream.write_all(&encode_participant_reply(&hello))?;
        self.stream.flush()
    }

    /// Serves waves until the mediator sends `Shutdown` (answered with a
    /// `Goodbye`) or the connection closes. Returns the service summary.
    pub fn serve(&mut self) -> io::Result<HostReport> {
        // Requests of the waves being assembled, in arrival order.
        let mut buffer = WaveRequestBuffer::new();
        loop {
            while let Some(message) = self
                .assembler
                .next_mediator_message()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                match message {
                    MediatorMessage::ConsumerWaveRequest {
                        wave,
                        consumer,
                        requests,
                    } => buffer.push_consumer(wave, consumer, requests),
                    MediatorMessage::ProviderWaveRequest {
                        wave,
                        provider,
                        queries,
                        request_bids,
                    } => buffer.push_provider(wave, provider, queries, request_bids),
                    MediatorMessage::WaveEnd { wave } => {
                        let taken = buffer.take_wave(wave);
                        self.answer_wave(wave, taken)?;
                    }
                    MediatorMessage::AllocationNotice {
                        query,
                        provider,
                        selected,
                    } => {
                        if let Some(endpoint) = self.providers.get_mut(&provider) {
                            endpoint.allocation_notice(query, selected);
                        }
                        self.report.notices_received += 1;
                        self.metrics.notices_received.inc();
                    }
                    MediatorMessage::AllocationResult {
                        query,
                        consumer,
                        providers,
                    } => {
                        if let Some(endpoint) = self.consumers.get_mut(&consumer) {
                            endpoint.allocation_result(query, &providers);
                        }
                        self.report.notices_received += 1;
                        self.metrics.notices_received.inc();
                    }
                    MediatorMessage::Shutdown => {
                        let goodbye = encode_participant_reply(&ParticipantReply::Goodbye);
                        let _ = self.stream.write_all(&goodbye);
                        let _ = self.stream.flush();
                        self.report.clean_shutdown = true;
                        return Ok(self.report);
                    }
                    // The legacy single-query request shapes carry no
                    // addressee and cannot be dispatched on a multiplexed
                    // connection; hosts ignore them. A stats reply only
                    // answers a request this host sent (see
                    // [`ParticipantHost::request_stats`]) — one arriving
                    // unsolicited mid-serve is dropped the same way.
                    MediatorMessage::ConsumerIntentionRequest { .. }
                    | MediatorMessage::ProviderIntentionRequest { .. }
                    | MediatorMessage::StatsReply { .. } => {}
                }
            }
            match self.assembler.fill_from(&mut self.stream) {
                Ok(0) => return Ok(self.report),
                Ok(n) => self.metrics.bytes_in.add(n as u64),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends a [`ParticipantReply::StatsRequest`] and blocks until the
    /// server's [`MediatorMessage::StatsReply`] arrives, returning the
    /// snapshot it carried.
    ///
    /// Intended for a *dedicated* introspection connection (a host with
    /// no endpoints, announced or not): any wave requests or notices
    /// that arrive while waiting are discarded, so calling this on a
    /// connection that also serves endpoints would lose traffic. The
    /// server answers stats requests whenever it reads the connection —
    /// during wave collection, between pipelined waves, or from an
    /// explicit [`crate::WaveServer::service_stats`] pump.
    pub fn request_stats(&mut self) -> io::Result<sqlb_obs::ObsSnapshot> {
        self.stream
            .write_all(&encode_participant_reply(&ParticipantReply::StatsRequest))?;
        self.stream.flush()?;
        loop {
            while let Some(message) = self
                .assembler
                .next_mediator_message()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                if let MediatorMessage::StatsReply { snapshot } = message {
                    return Ok(snapshot);
                }
            }
            match self.assembler.fill_from(&mut self.stream) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before the stats reply arrived",
                    ))
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Computes and writes every reply of `wave`, in request arrival
    /// order, honouring the endpoints' latency hooks.
    fn answer_wave(&mut self, wave: u64, taken: TakenWave) -> io::Result<()> {
        self.scratch.clear();
        for (consumer, requests) in taken.consumers {
            let Some(endpoint) = self.consumers.get_mut(&consumer) else {
                // Addressed to an endpoint this host no longer serves:
                // an explicit empty reply keeps the server from waiting
                // out the deadline for it.
                encode_participant_reply_into(
                    &ParticipantReply::ConsumerWaveReply {
                        wave,
                        consumer,
                        intentions: Vec::new(),
                    },
                    &mut self.scratch,
                );
                self.report.replies_sent += 1;
                self.metrics.replies_sent.inc();
                continue;
            };
            match endpoint.latency() {
                Latency::Never => continue,
                Latency::After(delay) => {
                    // Replies computed so far must not be held hostage by
                    // this endpoint's latency: flush, then sleep.
                    flush_pending(&mut self.stream, &mut self.scratch, &self.metrics.bytes_out)?;
                    std::thread::sleep(delay);
                }
                Latency::Immediate => {}
            }
            let intentions = endpoint.intentions_batch(&requests);
            encode_participant_reply_into(
                &ParticipantReply::ConsumerWaveReply {
                    wave,
                    consumer,
                    intentions,
                },
                &mut self.scratch,
            );
            self.report.replies_sent += 1;
            self.metrics.replies_sent.inc();
        }
        for (provider, queries, request_bids) in taken.providers {
            let Some(endpoint) = self.providers.get_mut(&provider) else {
                encode_participant_reply_into(
                    &ParticipantReply::ProviderWaveReply {
                        wave,
                        provider,
                        utilization: 0.0,
                        intentions: Vec::new(),
                    },
                    &mut self.scratch,
                );
                self.report.replies_sent += 1;
                self.metrics.replies_sent.inc();
                continue;
            };
            match endpoint.latency() {
                Latency::Never => continue,
                Latency::After(delay) => {
                    flush_pending(&mut self.stream, &mut self.scratch, &self.metrics.bytes_out)?;
                    std::thread::sleep(delay);
                }
                Latency::Immediate => {}
            }
            let utilization = endpoint.utilization();
            let intentions = endpoint.intention_batch(&queries, request_bids);
            encode_participant_reply_into(
                &ParticipantReply::ProviderWaveReply {
                    wave,
                    provider,
                    utilization,
                    intentions,
                },
                &mut self.scratch,
            );
            self.report.replies_sent += 1;
            self.metrics.replies_sent.inc();
        }
        self.report.waves_served += 1;
        self.metrics.waves_served.inc();
        flush_pending(&mut self.stream, &mut self.scratch, &self.metrics.bytes_out)
    }
}

/// Writes and clears the pending reply bytes, if any.
fn flush_pending(stream: &mut Stream, out: &mut Vec<u8>, bytes_out: &Counter) -> io::Result<()> {
    if out.is_empty() {
        return Ok(());
    }
    stream.write_all(out)?;
    stream.flush()?;
    bytes_out.add(out.len() as u64);
    out.clear();
    Ok(())
}

impl std::fmt::Debug for ParticipantHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParticipantHost")
            .field("peer", &self.stream.peer_label())
            .field("consumers", &self.consumers.len())
            .field("providers", &self.providers.len())
            .field("waves_served", &self.report.waves_served)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn query(id: u32, consumer: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(consumer),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    #[test]
    fn take_wave_keeps_newer_waves_buffered() {
        // Under depth-2 pipelining the server writes wave t+1 requests
        // before the host has answered wave t. Taking wave t must leave
        // wave t+1's requests buffered for their own end marker — an
        // earlier revision dropped them, silently degrading the next
        // wave to indifference.
        let mut buffer = WaveRequestBuffer::new();
        buffer.push_consumer(1, ConsumerId::new(0), vec![(query(10, 0), vec![])]);
        buffer.push_provider(2, ProviderId::new(1), vec![query(11, 0)], false);
        let taken = buffer.take_wave(1);
        assert_eq!(taken.consumers.len(), 1);
        assert!(taken.providers.is_empty());
        assert_eq!(buffer.len(), 1, "wave-2 request must stay buffered");
        let taken = buffer.take_wave(2);
        assert_eq!(taken.providers.len(), 1);
        assert!(buffer.is_empty());
    }

    #[test]
    fn take_wave_discards_stale_older_waves() {
        // Leftovers of a wave the server already timed out must not
        // leak into a later wave's answer burst.
        let mut buffer = WaveRequestBuffer::new();
        buffer.push_provider(1, ProviderId::new(1), vec![query(11, 0)], false);
        buffer.push_provider(3, ProviderId::new(1), vec![query(12, 0)], true);
        let taken = buffer.take_wave(3);
        assert_eq!(taken.providers.len(), 1);
        assert_eq!(taken.providers[0].1[0].id, QueryId::new(12));
        assert!(buffer.is_empty(), "stale wave-1 leftover must be gone");
    }

    #[test]
    fn take_wave_preserves_arrival_order_within_a_wave() {
        let mut buffer = WaveRequestBuffer::new();
        buffer.push_provider(1, ProviderId::new(2), vec![query(1, 0)], false);
        buffer.push_provider(1, ProviderId::new(1), vec![query(2, 0)], false);
        let taken = buffer.take_wave(1);
        assert_eq!(taken.providers[0].0, ProviderId::new(2));
        assert_eq!(taken.providers[1].0, ProviderId::new(1));
    }
}
