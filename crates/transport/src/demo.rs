//! Deterministic demo endpoints shared by the `participant_host` and
//! `wave_server_demo` binaries (and the loopback smoke test in CI).
//!
//! Both processes derive every intention from the endpoint ids alone,
//! so the server side can recompute what each reply *must* contain and
//! verify the full encode → socket → decode → compute → socket → decode
//! path end to end, without any side channel.

use sqlb_mediation::{ConsumerEndpoint, ProviderEndpoint};
use sqlb_types::{ConsumerId, ProviderId, Query};

/// The intention a demo provider reports for any query.
pub fn provider_intention(p: ProviderId) -> f64 {
    ((p.raw().wrapping_mul(37).wrapping_add(11)) % 101) as f64 / 101.0 * 1.6 - 0.6
}

/// The utilization a demo provider reports.
pub fn provider_utilization(p: ProviderId) -> f64 {
    ((p.raw().wrapping_mul(13)) % 17) as f64 / 17.0
}

/// The intention a demo consumer reports towards a provider.
pub fn consumer_intention(c: ConsumerId, p: ProviderId) -> f64 {
    let mixed = c
        .raw()
        .wrapping_mul(31)
        .wrapping_add(p.raw().wrapping_mul(7))
        % 89;
    mixed as f64 / 89.0 * 2.0 - 1.0
}

/// The contiguous id range host `h` of `hosts` serves out of `total`
/// endpoints (used by both binaries so they agree on the partition).
pub fn host_range(total: u32, hosts: u32, h: u32) -> std::ops::Range<u32> {
    let start = total * h / hosts;
    let end = total * (h + 1) / hosts;
    start..end
}

/// A demo consumer endpoint answering with [`consumer_intention`].
pub struct DemoConsumer(pub ConsumerId);

impl ConsumerEndpoint for DemoConsumer {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, consumer_intention(self.0, p)))
            .collect()
    }
}

/// A demo provider endpoint answering with [`provider_intention`] /
/// [`provider_utilization`].
pub struct DemoProvider(pub ProviderId);

impl ProviderEndpoint for DemoProvider {
    fn intention(&mut self, _q: &Query) -> f64 {
        provider_intention(self.0)
    }

    fn utilization(&mut self) -> f64 {
        provider_utilization(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_ranges_partition_exactly() {
        for (total, hosts) in [(64u32, 2u32), (10, 3), (7, 4), (1, 1)] {
            let mut covered = Vec::new();
            for h in 0..hosts {
                covered.extend(host_range(total, hosts, h));
            }
            assert_eq!(covered, (0..total).collect::<Vec<_>>());
        }
    }

    #[test]
    fn demo_intentions_are_bounded_and_deterministic() {
        for p in 0..256u32 {
            let v = provider_intention(ProviderId::new(p));
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, provider_intention(ProviderId::new(p)));
            let u = provider_utilization(ProviderId::new(p));
            assert!((0.0..=1.0).contains(&u));
        }
        for c in 0..16u32 {
            for p in 0..16u32 {
                let v = consumer_intention(ConsumerId::new(c), ProviderId::new(p));
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}
