//! Integration tests of the socket mediation path over real loopback
//! sockets: TCP and Unix-domain, multi-host multiplexing, timeout
//! degradation, stale-wave correlation, connection lifecycle, and the
//! scoped-job harness the simulator engine drives.

use std::time::Duration;

use sqlb_mediation::WaveReplies;
use sqlb_mediation::{ConsumerEndpoint, Latency, ProviderAnswer, ProviderEndpoint};
use sqlb_transport::{ParticipantHost, ServerConfig, SocketMediator, WaveJobs, WaveServer};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};

struct Canned {
    value: f64,
    latency: Latency,
    /// A latency applied to the *first* wave only (then back to the
    /// fixed `latency`), for straggler scenarios.
    slow_once: Option<Duration>,
    results: Vec<Vec<ProviderId>>,
    notices: Vec<(QueryId, bool)>,
}

impl Canned {
    fn new(value: f64) -> Self {
        Canned {
            value,
            latency: Latency::Immediate,
            slow_once: None,
            results: Vec::new(),
            notices: Vec::new(),
        }
    }

    fn effective_latency(&mut self) -> Latency {
        match self.slow_once.take() {
            Some(delay) => Latency::After(delay),
            None => self.latency,
        }
    }
}

impl ConsumerEndpoint for Canned {
    fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
        candidates
            .iter()
            .map(|&p| (p, self.value + p.raw() as f64 / 100.0))
            .collect()
    }
    fn allocation_result(&mut self, _query: QueryId, providers: &[ProviderId]) {
        self.results.push(providers.to_vec());
    }
    fn latency(&mut self) -> Latency {
        self.effective_latency()
    }
}

impl ProviderEndpoint for Canned {
    fn intention(&mut self, _q: &Query) -> f64 {
        self.value
    }
    fn utilization(&mut self) -> f64 {
        self.value.abs() / 2.0
    }
    fn allocation_notice(&mut self, query: QueryId, selected: bool) {
        self.notices.push((query, selected));
    }
    fn latency(&mut self) -> Latency {
        self.effective_latency()
    }
}

/// A provider whose intention encodes the query id (`base + id/10`), so
/// replies belonging to different waves are distinguishable on arrival —
/// the overlap tests rely on this to prove no cross-wave mixing.
struct PerQuery {
    base: f64,
    slow_once: Option<Duration>,
}

impl PerQuery {
    fn new(base: f64) -> Self {
        PerQuery {
            base,
            slow_once: None,
        }
    }
}

impl ProviderEndpoint for PerQuery {
    fn intention(&mut self, q: &Query) -> f64 {
        self.base + q.id.raw() as f64 / 10.0
    }
    fn utilization(&mut self) -> f64 {
        0.25
    }
    fn allocation_notice(&mut self, _query: QueryId, _selected: bool) {}
    fn latency(&mut self) -> Latency {
        match self.slow_once.take() {
            Some(delay) => Latency::After(delay),
            None => Latency::Immediate,
        }
    }
}

fn query(id: u32, consumer: u32) -> Query {
    Query::single(
        QueryId::new(id),
        ConsumerId::new(consumer),
        QueryClass::Light,
        SimTime::from_secs(id as f64),
    )
}

fn server(timeout_ms: u64) -> WaveServer {
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_millis(timeout_ms),
        request_bids: false,
    });
    server.listen_tcp("127.0.0.1:0").unwrap();
    server
}

#[test]
fn a_wave_crosses_tcp_and_returns_exact_intentions() {
    let mut server = server(5_000);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(0), Canned::new(0.8));
        host.add_provider(ProviderId::new(1), Canned::new(-0.25));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();
    assert_eq!(server.consumer_count(), 1);
    assert_eq!(server.provider_count(), 2);

    let requests = vec![(query(1, 0), vec![ProviderId::new(0), ProviderId::new(1)])];
    let infos = server.gather(&requests);
    assert_eq!(infos[0][0].provider_intention, 0.8);
    assert_eq!(infos[0][1].provider_intention, -0.25);
    assert_eq!(infos[0][0].consumer_intention, 0.5);
    assert_eq!(infos[0][1].consumer_intention, 0.51);
    assert_eq!(infos[0][0].utilization, 0.4);
    let round = server.last_round();
    assert_eq!(round.delivered, 3);
    assert_eq!(round.answered, 3);
    assert_eq!(round.timed_out, 0);

    server.shutdown();
    let report = handle.join().unwrap();
    assert!(report.clean_shutdown);
    assert_eq!(report.waves_served, 1);
    assert_eq!(report.replies_sent, 3);
}

#[cfg(unix)]
#[test]
fn a_wave_crosses_a_unix_domain_socket_too() {
    let path = std::env::temp_dir().join(format!("sqlb-test-{}.sock", std::process::id()));
    let mut server = WaveServer::new(ServerConfig {
        timeout: Duration::from_secs(5),
        request_bids: false,
    });
    server.listen_uds(&path).unwrap();
    let uds_path = path.clone();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_uds(&uds_path).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.25));
        host.add_provider(ProviderId::new(0), Canned::new(0.75));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();
    let infos = server.gather(&[(query(1, 0), vec![ProviderId::new(0)])]);
    assert_eq!(infos[0][0].provider_intention, 0.75);
    assert_eq!(infos[0][0].consumer_intention, 0.25);
    server.shutdown();
    assert!(handle.join().unwrap().clean_shutdown);
    assert!(!path.exists(), "shutdown removes the socket file");
}

#[test]
fn many_endpoints_multiplex_over_few_connections() {
    // 4 hosts × 256 providers each: 1024 endpoints, 4 sockets. Every
    // provider answers one query of the wave.
    const HOSTS: u32 = 4;
    const PER_HOST: u32 = 256;
    let mut server = server(10_000);
    let addr = server.tcp_addr().unwrap();
    let mut handles = Vec::new();
    for h in 0..HOSTS {
        handles.push(std::thread::spawn(move || {
            let mut host = ParticipantHost::connect_tcp(addr).unwrap();
            if h == 0 {
                host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
            }
            for i in 0..PER_HOST {
                let p = h * PER_HOST + i;
                host.add_provider(ProviderId::new(p), Canned::new(p as f64 / 2048.0));
            }
            host.announce().unwrap();
            host.serve().unwrap()
        }));
    }
    server
        .accept_hosts(HOSTS as usize, Duration::from_secs(10))
        .unwrap();
    assert_eq!(server.provider_count(), (HOSTS * PER_HOST) as usize);
    assert_eq!(server.connection_count(), HOSTS as usize);

    let requests: Vec<(Query, Vec<ProviderId>)> = (0..HOSTS * PER_HOST / 16)
        .map(|i| {
            let candidates = (i * 16..(i + 1) * 16).map(ProviderId::new).collect();
            (query(i, 0), candidates)
        })
        .collect();
    let infos = server.gather(&requests);
    let round = server.last_round();
    assert_eq!(round.delivered, 1 + (HOSTS * PER_HOST) as usize);
    assert_eq!(round.timed_out, 0);
    for (i, per_query) in infos.iter().enumerate() {
        for (j, info) in per_query.iter().enumerate() {
            let p = i * 16 + j;
            assert_eq!(info.provider_intention, p as f64 / 2048.0);
        }
    }
    server.shutdown();
    for handle in handles {
        assert!(handle.join().unwrap().clean_shutdown);
    }
}

#[test]
fn a_silent_endpoint_degrades_to_indifference_at_the_deadline() {
    // One provider never answers (Latency::Never): its reply must be
    // read as indifference when the wave deadline passes, while the
    // healthy endpoints' answers arrive untouched — the fork/waituntil/
    // timeout step of Algorithm 1, over a real socket.
    let mut server = server(300);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(0), Canned::new(0.9));
        let mut silent = Canned::new(1.0);
        silent.latency = Latency::Never;
        host.add_provider(ProviderId::new(1), silent);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();
    let infos = server.gather(&[(query(1, 0), vec![ProviderId::new(0), ProviderId::new(1)])]);
    assert_eq!(infos[0][0].provider_intention, 0.9);
    assert_eq!(
        infos[0][1].provider_intention, 0.0,
        "the silent endpoint is read as indifferent"
    );
    let round = server.last_round();
    assert_eq!(round.answered, 2);
    assert_eq!(round.timed_out, 1);
    server.shutdown();
    handle.join().unwrap();
}

#[test]
fn a_straggling_reply_is_stale_next_wave_not_mixed_in() {
    // Wave 1: a provider is slow (once) and misses the 500 ms deadline.
    // Its reply arrives during wave 2 tagged with wave id 1 — the
    // server must discard it by wave-id correlation, and the provider's
    // *fresh* wave-2 answer must be the one used.
    let mut server = server(500);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        let mut slow = Canned::new(0.7);
        slow.slow_once = Some(Duration::from_millis(900));
        host.add_provider(ProviderId::new(0), slow);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();

    let infos = server.gather(&[(query(1, 0), vec![ProviderId::new(0)])]);
    assert_eq!(
        infos[0][0].provider_intention, 0.0,
        "wave 1: the slow reply missed the deadline"
    );
    assert_eq!(server.last_round().timed_out, 1);

    // Wave 2 starts while wave 1's straggler is still in flight; the
    // straggler lands first — with the old wave id — and must be
    // skipped, then the fresh (now immediate) reply counted.
    let infos = server.gather(&[(query(2, 0), vec![ProviderId::new(0)])]);
    assert_eq!(
        infos[0][0].provider_intention, 0.7,
        "wave 2: the fresh reply, not the stale one"
    );
    assert_eq!(server.last_round().timed_out, 0);
    server.shutdown();
    handle.join().unwrap();
}

#[test]
fn unregistered_endpoints_default_to_indifference_without_waiting() {
    let mut server = server(5_000);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(0), Canned::new(0.8));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();
    // Candidate 9 has no home connection at all: no request is sent for
    // it and the wave completes immediately with indifference filled in.
    let started = std::time::Instant::now();
    let infos = server.gather(&[(query(1, 0), vec![ProviderId::new(0), ProviderId::new(9)])]);
    assert!(started.elapsed() < Duration::from_secs(2));
    assert_eq!(infos[0][0].provider_intention, 0.8);
    assert_eq!(infos[0][1].provider_intention, 0.0);
    assert_eq!(server.last_round().delivered, 2);
    server.shutdown();
    handle.join().unwrap();
}

#[test]
fn notices_reach_the_right_endpoints_across_hosts() {
    let mut server = server(5_000);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(0), Canned::new(0.9));
        host.add_provider(ProviderId::new(1), Canned::new(0.4));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();
    let q = query(7, 0);
    let candidates = vec![ProviderId::new(0), ProviderId::new(1)];
    let _ = server.gather(&[(q.clone(), candidates.clone())]);
    let allocation = sqlb_core::allocation::Allocation {
        query: q.id,
        selected: vec![ProviderId::new(0)],
        ranking: Vec::new(),
    };
    server.notify(&q, &candidates, &allocation);
    server.shutdown();
    let report = handle.join().unwrap();
    // 2 provider notices + 1 consumer result.
    assert_eq!(report.notices_received, 3);
}

// ---- the engine-facing loopback harness --------------------------------

fn loopback(hosts: usize, consumers: u32, providers: u32, timeout_ms: u64) -> SocketMediator {
    SocketMediator::loopback(
        hosts,
        ServerConfig {
            timeout: Duration::from_millis(timeout_ms),
            request_bids: false,
        },
        (0..consumers).map(ConsumerId::new),
        (0..providers).map(ProviderId::new),
    )
    .unwrap()
}

#[test]
fn loopback_jobs_answer_from_the_decoded_wire_queries() {
    let mut mediator = loopback(2, 1, 4, 5_000);
    let requests = vec![(
        query(3, 0),
        vec![ProviderId::new(0), ProviderId::new(1), ProviderId::new(3)],
    )];
    // The jobs derive their answers from the decoded request content, so
    // a wrong wire round-trip would surface as a wrong value here.
    let mut jobs = WaveJobs::new();
    jobs.consumer(ConsumerId::new(0), |reqs| {
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].0.id, QueryId::new(3));
        assert_eq!(reqs[0].0.issued_at.as_secs(), 3.0);
        vec![(
            reqs[0].0.id,
            reqs[0]
                .1
                .iter()
                .map(|&p| (p, 0.1 * p.raw() as f64))
                .collect(),
        )]
    });
    for p in [0u32, 1, 3] {
        jobs.provider(ProviderId::new(p), move |queries, request_bids| {
            assert!(!request_bids);
            queries
                .iter()
                .map(|q| ProviderAnswer {
                    query: q.id,
                    intention: 0.5 + p as f64,
                    utilization: q.cost().value() / 1000.0,
                    bid: None,
                })
                .collect()
        });
    }
    let infos = mediator.gather(&requests, jobs);
    assert_eq!(infos[0][0].provider_intention, 0.5);
    assert_eq!(infos[0][1].provider_intention, 1.5);
    assert_eq!(infos[0][2].provider_intention, 3.5);
    assert_eq!(infos[0][1].consumer_intention, 0.1);
    assert_eq!(infos[0][0].utilization, 0.13, "cost travelled bit-exact");
    assert_eq!(mediator.last_round().timed_out, 0);
    assert_eq!(mediator.live_hosts(), 2);
}

#[test]
fn loopback_waves_are_reproducible_run_to_run() {
    // The determinism pin at the transport level: two identical waves
    // (fresh mediators, same jobs) must produce identical candidate
    // infos, regardless of socket scheduling.
    let run = || {
        let mut mediator = loopback(3, 2, 8, 5_000);
        let requests: Vec<(Query, Vec<ProviderId>)> = (0..4)
            .map(|i| {
                (
                    query(i, i % 2),
                    (0..8).map(ProviderId::new).collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut jobs = WaveJobs::new();
        for c in 0..2u32 {
            jobs.consumer(ConsumerId::new(c), move |reqs| {
                reqs.iter()
                    .map(|(q, cands)| {
                        (
                            q.id,
                            cands
                                .iter()
                                .map(|&p| (p, (q.id.raw() + p.raw() + c) as f64 / 17.0))
                                .collect(),
                        )
                    })
                    .collect()
            });
        }
        for p in 0..8u32 {
            jobs.provider(ProviderId::new(p), move |queries, _| {
                queries
                    .iter()
                    .map(|q| ProviderAnswer {
                        query: q.id,
                        intention: ((p * 7 + q.id.raw()) % 13) as f64 / 13.0,
                        utilization: p as f64 / 8.0,
                        bid: None,
                    })
                    .collect()
            });
        }
        mediator.gather(&requests, jobs)
    };
    assert_eq!(run(), run());
}

#[test]
fn loopback_connection_lifecycle_follows_departures() {
    // 2 hosts over 1 consumer + 3 providers: host 0 serves c0 + p0/p2,
    // host 1 serves p1. Departing p1 empties host 1 → its connection is
    // closed on both sides; the survivors keep answering.
    let mut mediator = loopback(2, 1, 3, 5_000);
    assert_eq!(mediator.live_hosts(), 2);
    assert_eq!(mediator.server().connection_count(), 2);

    mediator.deregister_provider(ProviderId::new(1));
    assert_eq!(mediator.live_hosts(), 1, "host 1 emptied and closed");
    assert_eq!(mediator.server().connection_count(), 1);

    let requests = vec![(
        query(1, 0),
        vec![ProviderId::new(0), ProviderId::new(1), ProviderId::new(2)],
    )];
    let mut jobs = WaveJobs::new();
    jobs.consumer(ConsumerId::new(0), |reqs| {
        vec![(reqs[0].0.id, reqs[0].1.iter().map(|&p| (p, 0.2)).collect())]
    });
    for p in [0u32, 2] {
        jobs.provider(ProviderId::new(p), move |queries, _| {
            queries
                .iter()
                .map(|q| ProviderAnswer {
                    query: q.id,
                    intention: 0.5,
                    utilization: 0.0,
                    bid: None,
                })
                .collect()
        });
    }
    let infos = mediator.gather(&requests, jobs);
    assert_eq!(infos[0][0].provider_intention, 0.5);
    assert_eq!(
        infos[0][1].provider_intention, 0.0,
        "the departed provider is indifference"
    );
    assert_eq!(infos[0][2].provider_intention, 0.5);
    assert_eq!(mediator.last_round().timed_out, 0);
}

#[test]
fn a_stalled_early_connection_does_not_eat_later_hosts_replies() {
    // Regression: reply collection works the connections in slot order,
    // so a silent host in slot 0 can consume the entire wave deadline.
    // The timely replies of the host in slot 1 — already sitting in the
    // server's socket buffer — must still be harvested by the drain
    // pass, not miscounted as timeouts. Connect order is forced so the
    // silent host deterministically lands in slot 0.
    let mut server = server(400);
    let addr = server.tcp_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        let mut endpoint = Canned::new(1.0);
        endpoint.latency = Latency::Never;
        host.add_provider(ProviderId::new(0), endpoint);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap(); // slot 0
    let fast = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(1), Canned::new(0.9));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap(); // slot 1

    let infos = server.gather(&[(query(1, 0), vec![ProviderId::new(0), ProviderId::new(1)])]);
    assert_eq!(
        infos[0][0].provider_intention, 0.0,
        "the silent slot-0 provider degrades to indifference"
    );
    assert_eq!(
        infos[0][1].provider_intention, 0.9,
        "slot 1's timely reply must be counted despite slot 0 stalling"
    );
    assert_eq!(infos[0][1].consumer_intention, 0.51);
    let round = server.last_round();
    assert_eq!(round.delivered, 3);
    assert_eq!(round.answered, 2);
    assert_eq!(round.timed_out, 1);

    server.shutdown();
    assert!(silent.join().unwrap().clean_shutdown);
    assert!(fast.join().unwrap().clean_shutdown);
}

// ---- pipelined (overlapped) waves --------------------------------------

/// Every provider answer present in `replies` must be about a query of
/// `wave_queries` — the no-cross-correlation invariant of overlap.
fn assert_answers_only_mention(replies: &WaveReplies, wave_queries: &[u32]) {
    for (provider, reply) in &replies.providers {
        let Some(answers) = reply else { continue };
        for answer in answers {
            assert!(
                wave_queries.contains(&answer.query.raw()),
                "provider {provider:?} answered query {:?} which belongs to another wave",
                answer.query
            );
        }
    }
    for (consumer, reply) in &replies.consumers {
        let Some(intentions) = reply else { continue };
        for (query, _) in intentions {
            assert!(
                wave_queries.contains(&query.raw()),
                "consumer {consumer:?} answered query {query:?} of another wave"
            );
        }
    }
}

#[test]
fn overlapped_waves_collect_in_order_with_their_own_replies() {
    // Depth-2 pipelining over one host: wave 2 is encoded and sent while
    // wave 1's replies are still outstanding. Each collected wave must
    // contain exactly its own answers (the PerQuery endpoint makes them
    // distinguishable), in begin order.
    let mut server = server(5_000);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(0), PerQuery::new(0.0));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();

    let first = vec![(query(1, 0), vec![ProviderId::new(0)])];
    let second = vec![(query(2, 0), vec![ProviderId::new(0)])];
    let w1 = server.begin_wave(&first);
    let w2 = server.begin_wave(&second);
    assert_eq!(w2, w1 + 1);
    assert_eq!(server.waves_in_flight(), 2);

    let replies = server.collect_wave().unwrap();
    assert_eq!(server.waves_in_flight(), 1);
    assert_answers_only_mention(&replies, &[1]);
    let infos = replies.into_candidate_infos(&first);
    assert_eq!(infos[0][0].provider_intention, 0.1);
    assert_eq!(infos[0][0].consumer_intention, 0.5);
    assert_eq!(server.last_round().timed_out, 0);

    let replies = server.collect_wave().unwrap();
    assert_eq!(server.waves_in_flight(), 0);
    assert_answers_only_mention(&replies, &[2]);
    let infos = replies.into_candidate_infos(&second);
    assert_eq!(infos[0][0].provider_intention, 0.2);
    assert_eq!(server.last_round().timed_out, 0);

    assert!(
        server.collect_wave().is_none(),
        "nothing in flight: collect_wave reports it rather than blocking"
    );

    server.shutdown();
    let report = handle.join().unwrap();
    assert!(report.clean_shutdown);
    assert_eq!(report.waves_served, 2);
}

#[test]
fn early_next_wave_replies_park_in_their_own_ledger() {
    // Two hosts, depth-2 overlap. The slot-0 host delays its wave-1
    // reply, so while the server is still collecting wave 1 the slot-1
    // host's wave-2 replies are already on the wire. Those early frames
    // must be credited to wave 2's ledger — not counted into wave 1,
    // not lost — and wave 1's delayed reply must still land in wave 1.
    let mut server = server(5_000);
    let addr = server.tcp_addr().unwrap();
    let slow = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        let mut provider = PerQuery::new(0.0);
        provider.slow_once = Some(Duration::from_millis(300));
        host.add_provider(ProviderId::new(0), provider);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap(); // slot 0
    let fast = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        host.add_provider(ProviderId::new(1), PerQuery::new(3.0));
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap(); // slot 1

    let candidates = vec![ProviderId::new(0), ProviderId::new(1)];
    let first = vec![(query(1, 0), candidates.clone())];
    let second = vec![(query(2, 0), candidates)];
    server.begin_wave(&first);
    server.begin_wave(&second);

    let replies = server.collect_wave().unwrap();
    assert_answers_only_mention(&replies, &[1]);
    let infos = replies.into_candidate_infos(&first);
    assert_eq!(
        infos[0][0].provider_intention, 0.1,
        "the delayed reply still belongs to wave 1"
    );
    assert_eq!(infos[0][1].provider_intention, 3.1);
    let round = server.last_round();
    assert_eq!(round.answered, 3);
    assert_eq!(round.timed_out, 0);

    let replies = server.collect_wave().unwrap();
    assert_answers_only_mention(&replies, &[2]);
    let infos = replies.into_candidate_infos(&second);
    assert_eq!(infos[0][0].provider_intention, 0.2);
    assert_eq!(infos[0][1].provider_intention, 3.2);
    let round = server.last_round();
    assert_eq!(round.answered, 3);
    assert_eq!(round.timed_out, 0);

    server.shutdown();
    assert!(slow.join().unwrap().clean_shutdown);
    assert!(fast.join().unwrap().clean_shutdown);
}

#[test]
fn a_stale_reply_under_overlap_never_credits_a_later_wave() {
    // Wave 1's provider reply misses the (short) deadline while wave 2
    // is already in flight on the same connection. The stale frame —
    // carrying wave id 1 — arrives between the two collections and must
    // be parsed and discarded, not credited to wave 2; wave 2 then gets
    // the provider's fresh answer.
    let mut server = server(300);
    let addr = server.tcp_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut host = ParticipantHost::connect_tcp(addr).unwrap();
        host.add_consumer(ConsumerId::new(0), Canned::new(0.5));
        let mut provider = PerQuery::new(0.0);
        provider.slow_once = Some(Duration::from_millis(600));
        host.add_provider(ProviderId::new(0), provider);
        host.announce().unwrap();
        host.serve().unwrap()
    });
    server.accept_hosts(1, Duration::from_secs(5)).unwrap();

    // Wave 2 starts 350 ms into wave 1's flight: wave 1's 300 ms
    // deadline has lapsed (its provider reply lands at ~600 ms, stale),
    // while wave 2's own deadline (350 + 300 ms) still covers the
    // provider's fresh answer right behind the stale one.
    let first = vec![(query(1, 0), vec![ProviderId::new(0)])];
    let second = vec![(query(2, 0), vec![ProviderId::new(0)])];
    server.begin_wave(&first);
    std::thread::sleep(Duration::from_millis(350));
    server.begin_wave(&second);
    assert_eq!(server.waves_in_flight(), 2);

    let replies = server.collect_wave().unwrap();
    assert_answers_only_mention(&replies, &[1]);
    let infos = replies.into_candidate_infos(&first);
    assert_eq!(
        infos[0][0].provider_intention, 0.0,
        "wave 1's provider reply missed the deadline: indifference"
    );
    assert_eq!(
        infos[0][0].consumer_intention, 0.5,
        "the timely consumer reply of wave 1 was counted"
    );
    assert_eq!(server.last_round().timed_out, 1);

    let replies = server.collect_wave().unwrap();
    assert_answers_only_mention(&replies, &[2]);
    let infos = replies.into_candidate_infos(&second);
    assert_eq!(
        infos[0][0].provider_intention, 0.2,
        "wave 2 got the fresh answer, not the stale wave-1 one"
    );
    assert_eq!(server.last_round().timed_out, 0);

    server.shutdown();
    handle.join().unwrap();
}
