//! A simple fixed-range histogram used for response-time distributions.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed `[min, max)` range with equally sized buckets,
/// plus overflow/underflow counters. Also tracks exact count/sum/min/max so
/// means are not subject to bucketing error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    observed_min: f64,
    observed_max: f64,
}

impl Histogram {
    /// Creates a histogram over `[min, max)` with `buckets` equally sized
    /// buckets. Panics if `max <= min` or `buckets == 0`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(max > min, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            min,
            max,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            observed_min: f64::INFINITY,
            observed_max: f64::NEG_INFINITY,
        }
    }

    /// Records a value.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.observed_min = self.observed_min.min(value);
        self.observed_max = self.observed_max.max(value);
        if value < self.min {
            self.underflow += 1;
        } else if value >= self.max {
            self.overflow += 1;
        } else {
            let width = (self.max - self.min) / self.buckets.len() as f64;
            let idx = ((value - self.min) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values (exact, not bucketed). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.observed_min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.observed_max)
    }

    /// Approximate quantile (0 ≤ q ≤ 1) computed from bucket boundaries.
    /// Underflow values are attributed to the range minimum and overflow
    /// values to the range maximum. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = self.underflow;
        if cumulative >= target {
            return Some(self.min);
        }
        let width = (self.max - self.min) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(self.min + width * (i as f64 + 1.0));
            }
        }
        Some(self.max)
    }

    /// Per-bucket counts (excluding under/overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of values below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[5], 1);
        assert_eq!(h.bucket_counts()[9], 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn handles_under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(f64::NAN); // ignored
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [1.0, 2.0, 3.0, 94.0] {
            h.record(v);
        }
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(94.0));
    }

    #[test]
    fn empty_histogram_reports_defaults() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new(0.0, 10.0, 100);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 5.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn rejects_empty_range() {
        Histogram::new(1.0, 1.0, 4);
    }

    proptest! {
        #[test]
        fn prop_count_matches_records(values in proptest::collection::vec(-5.0f64..15.0, 0..200)) {
            let mut h = Histogram::new(0.0, 10.0, 20);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let bucketed: u64 = h.bucket_counts().iter().sum::<u64>() + h.underflow() + h.overflow();
            prop_assert_eq!(bucketed, values.len() as u64);
        }

        #[test]
        fn prop_quantile_within_observed_range(values in proptest::collection::vec(0.0f64..10.0, 1..200), q in 0.0f64..1.0) {
            let mut h = Histogram::new(0.0, 10.0, 50);
            for &v in &values {
                h.record(v);
            }
            let quant = h.quantile(q).unwrap();
            prop_assert!((0.0..=10.0).contains(&quant));
        }
    }
}
