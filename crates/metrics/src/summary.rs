//! Summary statistics over a set of per-participant values.

use serde::{Deserialize, Serialize};

use crate::aggregate::{fairness, mean, min_max_ratio_with, std_dev, DEFAULT_MIN_MAX_C0};

/// A summary of a set `S` of `g` values combining the paper's three metrics
/// (Section 4) with basic descriptive statistics. This is the unit of
/// measurement the experiment harness snapshots at every sampling instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values summarized.
    pub count: usize,
    /// Arithmetic mean `µ(g, S)` (Equation 3).
    pub mean: f64,
    /// Jain fairness index `f(g, S)` (Equation 4).
    pub fairness: f64,
    /// Min–max balance ratio `σ(g, S)` (Equation 5).
    pub balance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a set of values with the default `c0` constant.
    pub fn of(values: &[f64]) -> Self {
        Summary::with_c0(values, DEFAULT_MIN_MAX_C0)
    }

    /// Summarizes a set of values with an explicit min–max constant.
    pub fn with_c0(values: &[f64], c0: f64) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                fairness: 1.0,
                balance: 1.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
            };
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: values.len(),
            mean: mean(values),
            fairness: fairness(values),
            balance: min_max_ratio_with(values, c0),
            min,
            max,
            std_dev: std_dev(values),
        }
    }

    /// Summarizes the values produced by applying `g` to each member of
    /// `set`, mirroring the paper's `µ(g, S)` notation.
    pub fn of_with<T>(set: &[T], g: impl Fn(&T) -> f64) -> Self {
        let values: Vec<f64> = set.iter().map(g).collect();
        Summary::of(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.fairness, 1.0);
        assert_eq!(s.balance, 1.0);
    }

    #[test]
    fn summary_matches_component_metrics() {
        let values = [0.2, 1.0, 0.6];
        let s = Summary::of(&values);
        assert_eq!(s.count, 3);
        assert!((s.mean - 0.6).abs() < 1e-12);
        assert!((s.fairness - fairness(&values)).abs() < 1e-12);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 1.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn summary_of_with_projection() {
        struct P {
            u: f64,
        }
        let set = vec![P { u: 0.5 }, P { u: 1.5 }];
        let s = Summary::of_with(&set, |p| p.u);
        assert_eq!(s.count, 2);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_uses_custom_c0() {
        let values = [0.0, 1.0];
        let s = Summary::with_c0(&values, 1.0);
        assert!((s.balance - 0.5).abs() < 1e-12);
    }
}
