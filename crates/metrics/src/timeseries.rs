//! Time-series recording for the experiment harness.
//!
//! The paper's Figure 4 reports metrics sampled over 10 000 seconds of
//! simulated time. [`TimeSeries`] records `(time, value)` samples;
//! [`SeriesSet`] groups named series (one per method/metric combination) and
//! renders them in the column-per-series textual format used by the
//! figure-regeneration binaries.

use serde::{Deserialize, Serialize};
use sqlb_types::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A single sample of a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Virtual time of the sample, in seconds.
    pub time: f64,
    /// Sampled value.
    pub value: f64,
}

/// An append-only series of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Creates an empty series with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample. Samples are expected to arrive in non-decreasing
    /// time order (the simulator guarantees this); out-of-order samples are
    /// still stored and only affect interpolation accuracy.
    pub fn push(&mut self, time: SimTime, value: f64) {
        self.points.push(TimePoint {
            time: time.as_secs(),
            value,
        });
    }

    /// Appends a sample from raw seconds.
    pub fn push_raw(&mut self, time_secs: f64, value: f64) {
        self.points.push(TimePoint {
            time: time_secs,
            value,
        });
    }

    /// The recorded samples, in insertion order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Mean of all recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        crate::aggregate::mean(&self.values())
    }

    /// Mean of the values recorded at or after `from_secs`. Useful to
    /// summarize the steady-state portion of a run.
    pub fn mean_after(&self, from_secs: f64) -> f64 {
        let tail: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.time >= from_secs)
            .map(|p| p.value)
            .collect();
        crate::aggregate::mean(&tail)
    }

    /// All values, in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Value at time `t` obtained by holding the last sample recorded at or
    /// before `t` (step interpolation). Returns `None` before the first
    /// sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let mut last = None;
        for p in &self.points {
            if p.time <= t {
                last = Some(p.value);
            } else {
                break;
            }
        }
        last
    }

    /// Downsamples the series to at most `max_points` samples, keeping an
    /// evenly spaced subset (always including the final sample). Used to
    /// keep figure output readable.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = (self.points.len() as f64 / max_points as f64).ceil() as usize;
        let mut out = TimeSeries::with_capacity(max_points + 1);
        for (i, p) in self.points.iter().enumerate() {
            if i % stride == 0 {
                out.points.push(*p);
            }
        }
        if let (Some(last), Some(out_last)) = (self.points.last(), out.points.last()) {
            if out_last.time != last.time {
                out.points.push(*last);
            }
        }
        out
    }
}

/// A collection of named time series sharing a common x-axis, e.g. the three
/// methods of Figure 4(a).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SeriesSet {
            series: BTreeMap::new(),
        }
    }

    /// Returns a mutable handle to the series with the given name, creating
    /// it if needed.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Returns the series with the given name, if present.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all series, in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Number of series in the set.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the set contains no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the set as a whitespace-separated table: one row per distinct
    /// sample time (union of all series), one column per series, using step
    /// interpolation for series without a sample at that exact time. This is
    /// the format emitted by the figure-regeneration binaries.
    pub fn to_table(&self, x_label: &str) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>12}", x_label);
        for name in self.series.keys() {
            let _ = write!(out, " {:>18}", name);
        }
        out.push('\n');

        let mut times: Vec<f64> = self
            .series
            .values()
            .flat_map(|s| s.points().iter().map(|p| p.time))
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        for t in times {
            let _ = write!(out, "{:>12.2}", t);
            for s in self.series.values() {
                match s.value_at(t) {
                    Some(v) => {
                        let _ = write!(out, " {:>18.4}", v);
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(t(1.0), 0.5);
        s.push(t(2.0), 0.7);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_value(), Some(0.7));
        assert_eq!(s.values(), vec![0.5, 0.7]);
        assert!((s.mean() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn value_at_uses_step_interpolation() {
        let mut s = TimeSeries::new();
        s.push(t(10.0), 1.0);
        s.push(t(20.0), 2.0);
        assert_eq!(s.value_at(5.0), None);
        assert_eq!(s.value_at(10.0), Some(1.0));
        assert_eq!(s.value_at(15.0), Some(1.0));
        assert_eq!(s.value_at(20.0), Some(2.0));
        assert_eq!(s.value_at(100.0), Some(2.0));
    }

    #[test]
    fn mean_after_filters_prefix() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 0.0);
        s.push(t(50.0), 1.0);
        s.push(t(100.0), 1.0);
        assert!((s.mean_after(50.0) - 1.0).abs() < 1e-12);
        assert!((s.mean_after(200.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_keeps_endpoints_and_bound() {
        let mut s = TimeSeries::new();
        for i in 0..1000 {
            s.push_raw(i as f64, i as f64);
        }
        let d = s.downsample(50);
        assert!(d.len() <= 51);
        assert_eq!(d.points().first().unwrap().time, 0.0);
        assert_eq!(d.points().last().unwrap().time, 999.0);
        // Downsampling an already-small series is the identity.
        let small = s.downsample(5000);
        assert_eq!(small.len(), s.len());
    }

    #[test]
    fn series_set_table_rendering() {
        let mut set = SeriesSet::new();
        set.series_mut("SQLB").push(t(0.0), 0.5);
        set.series_mut("SQLB").push(t(10.0), 0.6);
        set.series_mut("Capacity").push(t(0.0), 0.4);
        let table = set.to_table("time");
        let mut lines = table.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("time"));
        assert!(header.contains("SQLB"));
        assert!(header.contains("Capacity"));
        // Two distinct times → two data rows.
        assert_eq!(lines.count(), 2);
        assert_eq!(set.names(), vec!["Capacity", "SQLB"]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
