//! The three system metrics of Section 4.
//!
//! All functions operate on slices of raw `f64` values, which is how the
//! simulator extracts "a set `S` of `g` values" from its participants. Empty
//! sets are handled explicitly: the mean of an empty set is `0`, its
//! fairness is `1` (a vacuously fair allocation) and its balance is `1`.

use serde::{Deserialize, Serialize};

/// The characteristic `g` being aggregated. Used by the experiment harness
/// to label measurement series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Adequation `δa` (Section 3.1.1 / 3.2.1).
    Adequation,
    /// Satisfaction `δs` (Section 3.1.2 / 3.2.2).
    Satisfaction,
    /// Allocation satisfaction `δas` (Section 3.1.3 / 3.2.3).
    AllocationSatisfaction,
    /// Utilization `Ut` (Section 2).
    Utilization,
}

impl MetricKind {
    /// Short label used in experiment output headers.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Adequation => "delta_a",
            MetricKind::Satisfaction => "delta_s",
            MetricKind::AllocationSatisfaction => "delta_as",
            MetricKind::Utilization => "Ut",
        }
    }
}

/// Default pre-fixed constant `c0` of the min–max ratio (Equation 5).
///
/// The paper only requires `c0 > 0`; a small constant keeps the metric
/// sensitive while avoiding division by zero when the maximum is zero.
pub const DEFAULT_MIN_MAX_C0: f64 = 0.1;

/// Arithmetic mean `µ(g, S)` (Equation 3). Returns `0` for an empty set.
///
/// "Because participants' characteristics are additive values and may take
/// zero values, we utilize the arithmetic mean to obtain this representative
/// number."
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Jain's fairness index `f(g, S)` (Equation 4). Returns `1` for an empty
/// set or when every value is zero.
///
/// The index lies in `[1/‖S‖, 1]` for non-negative inputs; the closer to 1,
/// the fairer the allocation of `g` values across `S`.
pub fn fairness(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        // All values are exactly zero: every participant is treated
        // identically, which we report as perfectly fair.
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Range `max(S) − min(S)` of a set of values. Returns `0` for an empty
/// set. Used by the shard router's rebalancing decision and the per-shard
/// imbalance series: the spread of per-shard utilizations is the quantity
/// cross-shard migration tries to shrink.
pub fn spread(values: &[f64]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        0.0
    } else {
        max - min
    }
}

/// Min–max balance ratio `σ(g, S)` (Equation 5) with the default constant
/// [`DEFAULT_MIN_MAX_C0`].
pub fn min_max_ratio(values: &[f64]) -> f64 {
    min_max_ratio_with(values, DEFAULT_MIN_MAX_C0)
}

/// Min–max balance ratio `σ(g, S)` with an explicit pre-fixed constant
/// `c0 > 0`:
///
/// ```text
/// σ(g, S) = (min g(s) + c0) / (max g(s) + c0)
/// ```
///
/// Returns `1` for an empty set. Panics if `c0` is not strictly positive,
/// mirroring the paper's requirement.
pub fn min_max_ratio_with(values: &[f64], c0: f64) -> f64 {
    assert!(
        c0 > 0.0,
        "the min-max constant c0 must be strictly positive"
    );
    if values.is_empty() {
        return 1.0;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min + c0) / (max + c0)
}

/// Computes Jain's fairness over the values produced by `g` applied to the
/// members of `set`, a convenience mirroring the paper's `f(g, S)` notation.
pub fn fairness_with<T>(set: &[T], g: impl Fn(&T) -> f64) -> f64 {
    let values: Vec<f64> = set.iter().map(g).collect();
    fairness(&values)
}

/// Population standard deviation of the values (zero for sets of size < 2).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        assert!((mean(&[0.2, 1.0, 0.6]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fairness_paper_example() {
        // Section 4 example: δs(p1)=0.2, δs(p2)=1, δs(p3)=0.6 → ≈0.77 and
        // δs(p'1)=1, δs(p'2)=0.7, δs(p'3)=0.9 → ≈0.97.
        let m = fairness(&[0.2, 1.0, 0.6]);
        let m_prime = fairness(&[1.0, 0.7, 0.9]);
        assert!((m - 0.7714).abs() < 1e-3, "got {m}");
        assert!((m_prime - 0.9797).abs() < 1e-3, "got {m_prime}");
        assert!(m_prime > m);
    }

    #[test]
    fn fairness_of_identical_values_is_one() {
        assert!((fairness(&[0.4, 0.4, 0.4, 0.4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_is_range_and_zero_when_degenerate() {
        assert_eq!(spread(&[]), 0.0);
        assert_eq!(spread(&[0.7]), 0.0);
        assert!((spread(&[0.2, 1.0, 0.6]) - 0.8).abs() < 1e-12);
        assert!((spread(&[-0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_edge_cases() {
        assert_eq!(fairness(&[]), 1.0);
        assert_eq!(fairness(&[0.0, 0.0]), 1.0);
        // Single non-zero value among n: fairness = 1/n.
        let f = fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_max_ratio_basics() {
        assert_eq!(min_max_ratio(&[]), 1.0);
        let r = min_max_ratio_with(&[0.5, 0.5], 0.1);
        assert!((r - 1.0).abs() < 1e-12);
        let r = min_max_ratio_with(&[0.0, 1.0], 1.0);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "c0 must be strictly positive")]
    fn min_max_ratio_rejects_zero_c0() {
        min_max_ratio_with(&[1.0], 0.0);
    }

    #[test]
    fn fairness_with_closure() {
        struct P {
            s: f64,
        }
        let set = vec![P { s: 0.2 }, P { s: 1.0 }, P { s: 0.6 }];
        let f = fairness_with(&set, |p| p.s);
        assert!((f - fairness(&[0.2, 1.0, 0.6])).abs() < 1e-12);
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 1.0, 1.0]) - 0.0).abs() < 1e-12);
        assert!((std_dev(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_kind_labels_are_distinct() {
        let labels = [
            MetricKind::Adequation.label(),
            MetricKind::Satisfaction.label(),
            MetricKind::AllocationSatisfaction.label(),
            MetricKind::Utilization.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    proptest! {
        #[test]
        fn prop_fairness_bounds(values in proptest::collection::vec(0.0f64..10.0, 1..50)) {
            let f = fairness(&values);
            let n = values.len() as f64;
            prop_assert!(f <= 1.0 + 1e-9, "fairness {f} exceeds 1");
            // The 1/n lower bound only holds when at least one value is
            // non-zero; the all-zero case is reported as 1.
            if values.iter().any(|v| *v > 0.0) {
                prop_assert!(f >= 1.0 / n - 1e-9, "fairness {f} below 1/n");
            }
        }

        #[test]
        fn prop_mean_between_min_and_max(values in proptest::collection::vec(-10.0f64..10.0, 1..50)) {
            let m = mean(&values);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
        }

        #[test]
        fn prop_min_max_ratio_in_unit_interval_for_non_negative(
            values in proptest::collection::vec(0.0f64..10.0, 1..50),
            c0 in 0.01f64..5.0,
        ) {
            let r = min_max_ratio_with(&values, c0);
            prop_assert!(r > 0.0 && r <= 1.0 + 1e-9);
        }

        #[test]
        fn prop_fairness_scale_invariant(
            values in proptest::collection::vec(0.01f64..10.0, 2..30),
            k in 0.1f64..10.0,
        ) {
            let scaled: Vec<f64> = values.iter().map(|v| v * k).collect();
            prop_assert!((fairness(&values) - fairness(&scaled)).abs() < 1e-9);
        }
    }
}
