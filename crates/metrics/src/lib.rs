//! # sqlb-metrics
//!
//! The system metrics of Section 4 of the SQLB paper, plus the measurement
//! infrastructure (time series, histograms, summaries) used by the
//! experiment harness.
//!
//! The paper evaluates the quality of a query allocation method over a set
//! `S` of per-participant values `g(s)` (where `g` is one of adequation
//! `δa`, satisfaction `δs`, allocation satisfaction `δas` or utilization
//! `Ut`) with three complementary metrics:
//!
//! * **efficiency** — the arithmetic mean `µ(g, S)` (Equation 3);
//! * **sensitivity / fairness** — Jain's fairness index `f(g, S)`
//!   (Equation 4, from Jain, Chiu & Hawe, DEC-TR-301);
//! * **balance** — the min–max ratio `σ(g, S)` (Equation 5).
//!
//! "These metrics are complementary to evaluate the global behavior of the
//! system, and the use of only one of them may cause the loss of some
//! important information."

#![warn(missing_docs)]

pub mod aggregate;
pub mod histogram;
pub mod summary;
pub mod timeseries;

pub use aggregate::{
    fairness, fairness_with, mean, min_max_ratio, min_max_ratio_with, spread, MetricKind,
};
pub use histogram::Histogram;
pub use summary::Summary;
pub use timeseries::{SeriesSet, TimePoint, TimeSeries};
