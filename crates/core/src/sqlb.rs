//! The SQLB allocation method (Section 5.3–5.4).

use serde::{Deserialize, Serialize};
use sqlb_types::Query;

use crate::allocation::{select_best, Allocation, AllocationMethod, CandidateInfo, MediatorView};
use crate::intention::IntentionParams;
use crate::scoring::{omega, provider_score, RankedProvider};

/// How the consumer/provider trade-off weight `ω` is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OmegaPolicy {
    /// Equation 6: `ω = ((δs(c) − δs(p)) + 1) / 2`, computed per candidate
    /// from the mediator's intention-based satisfaction view. This is the
    /// policy that "guarantees equity at all levels".
    #[default]
    SatisfactionBalanced,
    /// A fixed `ω` value. Section 5.3 notes that "one can also set ω's
    /// value according to the kind of application", e.g. `ω = 0` when
    /// providers are cooperative and result quality is all that matters.
    Fixed(f64),
}

/// Configuration of the SQLB allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SqlbConfig {
    /// The `ε` constant used by the scoring function (Definition 9).
    pub params: IntentionParams,
    /// How `ω` is obtained.
    pub omega_policy: OmegaPolicy,
}

/// The Satisfaction-based Query Load Balancing allocator.
///
/// For every candidate provider `p` of a query `q` issued by consumer `c`,
/// SQLB computes the score
///
/// ```text
/// scr_q(p) = balance_ω( PI_q[p], CI_q[p] )          (Definition 9)
/// ω        = ((δs(c) − δs(p)) + 1) / 2              (Equation 6)
/// ```
///
/// ranks the candidates by decreasing score and allocates the query to the
/// `min(q.n, N)` best-ranked providers (Algorithm 1, lines 6–10).
#[derive(Debug, Clone)]
pub struct SqlbAllocator {
    config: SqlbConfig,
    /// Whether allocations carry the full ranking `R_q` (diagnostic; the
    /// engine turns this off on its hot path).
    record_ranking: bool,
    /// Reusable scoring buffer: in steady state `allocate` performs no
    /// heap allocation beyond the returned selection vector.
    scratch: Vec<RankedProvider>,
}

impl Default for SqlbAllocator {
    fn default() -> Self {
        SqlbAllocator {
            config: SqlbConfig::default(),
            record_ranking: true,
            scratch: Vec::new(),
        }
    }
}

impl SqlbAllocator {
    /// Creates an allocator with the default configuration (Equation 6
    /// omega, `ε = 1`).
    pub fn new() -> Self {
        SqlbAllocator::default()
    }

    /// Creates an allocator with an explicit configuration.
    pub fn with_config(config: SqlbConfig) -> Self {
        SqlbAllocator {
            config,
            ..SqlbAllocator::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SqlbConfig {
        self.config
    }

    /// Scores a single candidate for a query issued by `query.consumer`.
    pub fn score_candidate(
        &self,
        query: &Query,
        candidate: &CandidateInfo,
        view: &dyn MediatorView,
    ) -> f64 {
        let w = match self.config.omega_policy {
            OmegaPolicy::SatisfactionBalanced => omega(
                view.consumer_satisfaction(query.consumer),
                view.provider_satisfaction(candidate.provider),
            ),
            OmegaPolicy::Fixed(w) => w.clamp(0.0, 1.0),
        };
        provider_score(
            candidate.provider_intention,
            candidate.consumer_intention,
            w,
            self.config.params,
        )
    }
}

impl AllocationMethod for SqlbAllocator {
    fn name(&self) -> &'static str {
        "SQLB"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        view: &dyn MediatorView,
    ) -> Allocation {
        // The consumer's satisfaction is per query, not per candidate —
        // hoist the (potentially blended, see MediatorState) lookup out of
        // the scoring loop.
        let consumer_satisfaction = match self.config.omega_policy {
            OmegaPolicy::SatisfactionBalanced => view.consumer_satisfaction(query.consumer),
            OmegaPolicy::Fixed(_) => 0.0,
        };
        let mut scored = std::mem::take(&mut self.scratch);
        scored.clear();
        scored.extend(candidates.iter().map(|c| {
            let w = match self.config.omega_policy {
                OmegaPolicy::SatisfactionBalanced => omega(
                    consumer_satisfaction,
                    view.provider_satisfaction(c.provider),
                ),
                OmegaPolicy::Fixed(w) => w.clamp(0.0, 1.0),
            };
            RankedProvider {
                provider: c.provider,
                score: provider_score(
                    c.provider_intention,
                    c.consumer_intention,
                    w,
                    self.config.params,
                ),
            }
        }));
        let allocation = select_best(query, &mut scored, self.record_ranking);
        self.scratch = scored;
        allocation
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::UniformView;
    use crate::MediatorState;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidate(id: u32, ci: f64, pi: f64) -> CandidateInfo {
        CandidateInfo::new(ProviderId::new(id))
            .with_consumer_intention(ci)
            .with_provider_intention(pi)
    }

    #[test]
    fn allocates_to_mutually_wanted_provider() {
        // The Table 1 scenario, with graded intentions: p5 is the only
        // provider both sides want (though overloaded, which Definition 8
        // would already have folded into its intention).
        let mut sqlb = SqlbAllocator::new();
        let q = query(1);
        let candidates = vec![
            candidate(1, -0.8, 0.9), // provider wants it, consumer does not
            candidate(2, 0.9, -0.6), // consumer wants it, provider does not
            candidate(3, -0.7, 0.3),
            candidate(4, 0.8, -0.2),
            candidate(5, 0.7, 0.6), // both want it
        ];
        let alloc = sqlb.allocate(&q, &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(5)]);
        assert_eq!(alloc.ranking.len(), 5);
    }

    #[test]
    fn respects_query_n_and_candidate_count() {
        let mut sqlb = SqlbAllocator::new();
        let candidates = vec![candidate(0, 0.5, 0.5), candidate(1, 0.6, 0.6)];
        let alloc = sqlb.allocate(&query(2), &candidates, &UniformView(0.5));
        assert_eq!(alloc.len(), 2);
        let alloc = sqlb.allocate(&query(5), &candidates, &UniformView(0.5));
        assert_eq!(alloc.len(), 2, "cannot select more providers than exist");
        let alloc = sqlb.allocate(&query(1), &[], &UniformView(0.5));
        assert!(alloc.is_empty());
    }

    #[test]
    fn fixed_omega_zero_only_considers_consumer() {
        // ω = 0: the score equals the consumer intention, so the provider
        // preferred by the consumer wins even if it does not want the
        // query.
        let mut sqlb = SqlbAllocator::with_config(SqlbConfig {
            params: IntentionParams::default(),
            omega_policy: OmegaPolicy::Fixed(0.0),
        });
        let candidates = vec![candidate(0, 0.9, 0.1), candidate(1, 0.3, 0.95)];
        let alloc = sqlb.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(0)]);
    }

    #[test]
    fn fixed_omega_one_only_considers_provider() {
        let mut sqlb = SqlbAllocator::with_config(SqlbConfig {
            params: IntentionParams::default(),
            omega_policy: OmegaPolicy::Fixed(1.0),
        });
        let candidates = vec![candidate(0, 0.9, 0.1), candidate(1, 0.3, 0.95)];
        let alloc = sqlb.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn satisfaction_balance_shifts_allocation_towards_dissatisfied_side() {
        // Two candidates with symmetric intentions; the mediator has
        // observed that provider 0 is much less satisfied than provider 1,
        // while the consumer is well satisfied. Equation 6 then weighs the
        // providers' intentions more, so the provider that wants the query
        // (p0) should win over the provider the consumer slightly prefers
        // (p1).
        let mut state = MediatorState::paper_default();
        // Seed provider satisfactions by recording proposals directly.
        // p0 repeatedly shows positive intentions but never gets queries;
        // p1 always gets what it asks for.
        for i in 0..50 {
            let q = Query::single(
                QueryId::new(100 + i),
                ConsumerId::new(0),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let cands = vec![candidate(0, 0.5, 0.8), candidate(1, 0.5, 0.8)];
            let alloc = Allocation {
                query: q.id,
                selected: vec![ProviderId::new(1)],
                ranking: vec![],
            };
            state.record_allocation(&q, &cands, &alloc);
        }
        assert!(
            state.provider_satisfaction(ProviderId::new(0))
                < state.provider_satisfaction(ProviderId::new(1))
        );

        let mut sqlb = SqlbAllocator::new();
        // The consumer marginally prefers p1, both providers equally want
        // the query.
        let candidates = vec![candidate(0, 0.55, 0.8), candidate(1, 0.6, 0.8)];
        let alloc = sqlb.allocate(&query(1), &candidates, &state);
        assert_eq!(
            alloc.selected,
            vec![ProviderId::new(0)],
            "the dissatisfied provider should be favoured"
        );
    }

    #[test]
    fn name_is_sqlb() {
        assert_eq!(SqlbAllocator::new().name(), "SQLB");
    }
}
