//! The SQLB allocation method (Section 5.3–5.4).

use serde::{Deserialize, Serialize};
use sqlb_types::Query;

use crate::allocation::{select_best, Allocation, AllocationMethod, CandidateInfo, MediatorView};
use crate::intention::IntentionParams;
use crate::scoring::{best_candidate_lazy, omega, provider_score, score_batch, RankedProvider};

/// How the consumer/provider trade-off weight `ω` is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OmegaPolicy {
    /// Equation 6: `ω = ((δs(c) − δs(p)) + 1) / 2`, computed per candidate
    /// from the mediator's intention-based satisfaction view. This is the
    /// policy that "guarantees equity at all levels".
    #[default]
    SatisfactionBalanced,
    /// A fixed `ω` value. Section 5.3 notes that "one can also set ω's
    /// value according to the kind of application", e.g. `ω = 0` when
    /// providers are cooperative and result quality is all that matters.
    Fixed(f64),
}

/// Configuration of the SQLB allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SqlbConfig {
    /// The `ε` constant used by the scoring function (Definition 9).
    pub params: IntentionParams,
    /// How `ω` is obtained.
    pub omega_policy: OmegaPolicy,
}

/// The Satisfaction-based Query Load Balancing allocator.
///
/// For every candidate provider `p` of a query `q` issued by consumer `c`,
/// SQLB computes the score
///
/// ```text
/// scr_q(p) = balance_ω( PI_q[p], CI_q[p] )          (Definition 9)
/// ω        = ((δs(c) − δs(p)) + 1) / 2              (Equation 6)
/// ```
///
/// ranks the candidates by decreasing score and allocates the query to the
/// `min(q.n, N)` best-ranked providers (Algorithm 1, lines 6–10).
#[derive(Debug, Clone)]
pub struct SqlbAllocator {
    config: SqlbConfig,
    /// Whether allocations carry the full ranking `R_q` (diagnostic; the
    /// engine turns this off on its hot path).
    record_ranking: bool,
    /// Worker threads the full-evaluation kernel may score one candidate
    /// set with (1 = sequential). Bit-identical at any count.
    scoring_threads: usize,
    /// Reusable scoring buffer: in steady state `allocate` performs no
    /// heap allocation beyond the returned selection vector.
    scratch: Vec<RankedProvider>,
    /// Reusable column of per-candidate provider satisfactions (the
    /// mediator view's dense column, gathered once per query).
    sat_scratch: Vec<f64>,
    /// Reusable column of per-candidate `ω` weights (Equation 6).
    omega_scratch: Vec<f64>,
    /// Reusable column of certified score upper bounds (lazy argmax).
    ub_scratch: Vec<f64>,
}

impl Default for SqlbAllocator {
    fn default() -> Self {
        SqlbAllocator {
            config: SqlbConfig::default(),
            record_ranking: true,
            scoring_threads: 1,
            scratch: Vec::new(),
            sat_scratch: Vec::new(),
            omega_scratch: Vec::new(),
            ub_scratch: Vec::new(),
        }
    }
}

impl SqlbAllocator {
    /// Creates an allocator with the default configuration (Equation 6
    /// omega, `ε = 1`).
    pub fn new() -> Self {
        SqlbAllocator::default()
    }

    /// Creates an allocator with an explicit configuration.
    pub fn with_config(config: SqlbConfig) -> Self {
        SqlbAllocator {
            config,
            ..SqlbAllocator::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SqlbConfig {
        self.config
    }

    /// Scores a single candidate for a query issued by `query.consumer`.
    pub fn score_candidate(
        &self,
        query: &Query,
        candidate: &CandidateInfo,
        view: &dyn MediatorView,
    ) -> f64 {
        let w = match self.config.omega_policy {
            OmegaPolicy::SatisfactionBalanced => omega(
                view.consumer_satisfaction(query.consumer),
                view.provider_satisfaction(candidate.provider),
            ),
            OmegaPolicy::Fixed(w) => w.clamp(0.0, 1.0),
        };
        provider_score(
            candidate.provider_intention,
            candidate.consumer_intention,
            w,
            self.config.params,
        )
    }
}

impl AllocationMethod for SqlbAllocator {
    fn name(&self) -> &'static str {
        "SQLB"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        view: &dyn MediatorView,
    ) -> Allocation {
        // Stage 1 — gather the `ω` column. The consumer's satisfaction is
        // per query, not per candidate, so it is hoisted; the provider
        // satisfactions are gathered in one batch call so views backed by
        // a dense column (MediatorState) stream it without a per-candidate
        // virtual dispatch.
        self.omega_scratch.clear();
        match self.config.omega_policy {
            OmegaPolicy::SatisfactionBalanced => {
                let consumer_satisfaction = view.consumer_satisfaction(query.consumer);
                self.sat_scratch.clear();
                view.provider_satisfactions_into(candidates, &mut self.sat_scratch);
                self.omega_scratch.extend(
                    self.sat_scratch
                        .iter()
                        .map(|&ps| omega(consumer_satisfaction, ps)),
                );
            }
            OmegaPolicy::Fixed(w) => {
                let w = w.clamp(0.0, 1.0);
                self.omega_scratch
                    .extend(std::iter::repeat_n(w, candidates.len()));
            }
        }

        // Stage 2 — the scoring kernel. The engine's hot path (`q.n = 1`,
        // ranking off) takes the certified-upper-bound lazy argmax, which
        // is bit-identical to full evaluation; everything else scores the
        // whole column (in parallel when configured — also bit-identical,
        // the kernel is pure per candidate and merged in index order).
        if !self.record_ranking && query.n == 1 && self.scoring_threads <= 1 {
            let selected = best_candidate_lazy(
                candidates,
                &self.omega_scratch,
                self.config.params,
                &mut self.ub_scratch,
            );
            return Allocation {
                query: query.id,
                selected: selected.into_iter().map(|r| r.provider).collect(),
                ranking: Vec::new(),
            };
        }
        let mut scored = std::mem::take(&mut self.scratch);
        scored.clear();
        if self.scoring_threads > 1 && candidates.len() >= PARALLEL_KERNEL_MIN_CANDIDATES {
            score_batch_parallel(
                candidates,
                &self.omega_scratch,
                self.config.params,
                self.scoring_threads,
                &mut scored,
            );
        } else {
            score_batch(
                candidates,
                &self.omega_scratch,
                self.config.params,
                &mut scored,
            );
        }
        let allocation = select_best(query, &mut scored, self.record_ranking);
        self.scratch = scored;
        allocation
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }

    fn set_scoring_threads(&mut self, threads: usize) {
        self.scoring_threads = threads.max(1);
    }
}

/// Below this candidate count a parallel kernel cannot pay for its thread
/// coordination; smaller sets always score sequentially (same bits either
/// way).
const PARALLEL_KERNEL_MIN_CANDIDATES: usize = 32;

/// Deterministic intra-shard parallel scoring: the candidate slice is cut
/// into `threads` fixed, contiguous chunks (a pure function of the slice
/// length and thread count), every chunk is scored independently into its
/// disjoint region of the output column, and the regions concatenate back
/// in index order. Each element's score is computed by the same pure
/// [`provider_score`] call sequential scoring would make, so the output
/// vector — and every selection derived from it, lowest-id tie-breaks
/// included — is bit-identical at any thread count.
fn score_batch_parallel(
    candidates: &[CandidateInfo],
    omegas: &[f64],
    params: IntentionParams,
    threads: usize,
    out: &mut Vec<RankedProvider>,
) {
    let n = candidates.len();
    debug_assert_eq!(n, omegas.len());
    out.resize(
        n,
        RankedProvider {
            provider: sqlb_types::ProviderId::new(0),
            score: 0.0,
        },
    );
    let chunk = n.div_ceil(threads.max(1)).max(1);
    std::thread::scope(|scope| {
        for ((cands, ws), outs) in candidates
            .chunks(chunk)
            .zip(omegas.chunks(chunk))
            .zip(out.chunks_mut(chunk))
        {
            scope.spawn(move || {
                for ((c, &w), slot) in cands.iter().zip(ws.iter()).zip(outs.iter_mut()) {
                    *slot = RankedProvider {
                        provider: c.provider,
                        score: provider_score(
                            c.provider_intention,
                            c.consumer_intention,
                            w,
                            params,
                        ),
                    };
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::UniformView;
    use crate::MediatorState;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidate(id: u32, ci: f64, pi: f64) -> CandidateInfo {
        CandidateInfo::new(ProviderId::new(id))
            .with_consumer_intention(ci)
            .with_provider_intention(pi)
    }

    #[test]
    fn allocates_to_mutually_wanted_provider() {
        // The Table 1 scenario, with graded intentions: p5 is the only
        // provider both sides want (though overloaded, which Definition 8
        // would already have folded into its intention).
        let mut sqlb = SqlbAllocator::new();
        let q = query(1);
        let candidates = vec![
            candidate(1, -0.8, 0.9), // provider wants it, consumer does not
            candidate(2, 0.9, -0.6), // consumer wants it, provider does not
            candidate(3, -0.7, 0.3),
            candidate(4, 0.8, -0.2),
            candidate(5, 0.7, 0.6), // both want it
        ];
        let alloc = sqlb.allocate(&q, &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(5)]);
        assert_eq!(alloc.ranking.len(), 5);
    }

    #[test]
    fn respects_query_n_and_candidate_count() {
        let mut sqlb = SqlbAllocator::new();
        let candidates = vec![candidate(0, 0.5, 0.5), candidate(1, 0.6, 0.6)];
        let alloc = sqlb.allocate(&query(2), &candidates, &UniformView(0.5));
        assert_eq!(alloc.len(), 2);
        let alloc = sqlb.allocate(&query(5), &candidates, &UniformView(0.5));
        assert_eq!(alloc.len(), 2, "cannot select more providers than exist");
        let alloc = sqlb.allocate(&query(1), &[], &UniformView(0.5));
        assert!(alloc.is_empty());
    }

    #[test]
    fn fixed_omega_zero_only_considers_consumer() {
        // ω = 0: the score equals the consumer intention, so the provider
        // preferred by the consumer wins even if it does not want the
        // query.
        let mut sqlb = SqlbAllocator::with_config(SqlbConfig {
            params: IntentionParams::default(),
            omega_policy: OmegaPolicy::Fixed(0.0),
        });
        let candidates = vec![candidate(0, 0.9, 0.1), candidate(1, 0.3, 0.95)];
        let alloc = sqlb.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(0)]);
    }

    #[test]
    fn fixed_omega_one_only_considers_provider() {
        let mut sqlb = SqlbAllocator::with_config(SqlbConfig {
            params: IntentionParams::default(),
            omega_policy: OmegaPolicy::Fixed(1.0),
        });
        let candidates = vec![candidate(0, 0.9, 0.1), candidate(1, 0.3, 0.95)];
        let alloc = sqlb.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn satisfaction_balance_shifts_allocation_towards_dissatisfied_side() {
        // Two candidates with symmetric intentions; the mediator has
        // observed that provider 0 is much less satisfied than provider 1,
        // while the consumer is well satisfied. Equation 6 then weighs the
        // providers' intentions more, so the provider that wants the query
        // (p0) should win over the provider the consumer slightly prefers
        // (p1).
        let mut state = MediatorState::paper_default();
        // Seed provider satisfactions by recording proposals directly.
        // p0 repeatedly shows positive intentions but never gets queries;
        // p1 always gets what it asks for.
        for i in 0..50 {
            let q = Query::single(
                QueryId::new(100 + i),
                ConsumerId::new(0),
                QueryClass::Light,
                SimTime::ZERO,
            );
            let cands = vec![candidate(0, 0.5, 0.8), candidate(1, 0.5, 0.8)];
            let alloc = Allocation {
                query: q.id,
                selected: vec![ProviderId::new(1)],
                ranking: vec![],
            };
            state.record_allocation(&q, &cands, &alloc);
        }
        assert!(
            state.provider_satisfaction(ProviderId::new(0))
                < state.provider_satisfaction(ProviderId::new(1))
        );

        let mut sqlb = SqlbAllocator::new();
        // The consumer marginally prefers p1, both providers equally want
        // the query.
        let candidates = vec![candidate(0, 0.55, 0.8), candidate(1, 0.6, 0.8)];
        let alloc = sqlb.allocate(&query(1), &candidates, &state);
        assert_eq!(
            alloc.selected,
            vec![ProviderId::new(0)],
            "the dissatisfied provider should be favoured"
        );
    }

    #[test]
    fn name_is_sqlb() {
        assert_eq!(SqlbAllocator::new().name(), "SQLB");
    }
}
