//! Mediator-side satisfaction bookkeeping.
//!
//! The query allocation module cannot see private preferences, so the
//! satisfaction values it uses in Equation 6 "have to be based on the
//! intentions" (Section 5.3). [`MediatorState`] maintains an
//! intention-based [`ConsumerTracker`] per consumer and an intention-based
//! [`ProviderTracker`] per provider, updated after every allocation.

use serde::{Deserialize, Serialize};
use sqlb_satisfaction::{ConsumerTracker, ProviderTracker};
use sqlb_types::{ConsumerId, Intention, ParticipantTable, ProviderId, Query};

use crate::allocation::{Allocation, CandidateInfo, MediatorView, SelectionSet};

/// Reusable buffers for [`MediatorState::record_allocation`], so recording
/// an allocation performs no heap allocation in steady state. Scratch
/// state is transient (rebuilt from scratch on every call), so it is
/// excluded from serialization and comparisons.
#[derive(Debug, Clone, Default)]
struct RecordScratch {
    intentions: Vec<Intention>,
    selected_indices: Vec<usize>,
    selection: SelectionSet,
}

/// Configuration of the mediator-side trackers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediatorStateConfig {
    /// Window size for consumer trackers (`conSatSize`, Table 2: 200).
    pub consumer_window: usize,
    /// Proposal-window size for provider trackers.
    pub provider_proposed_window: usize,
    /// Performed-window size for provider trackers (`proSatSize`,
    /// Table 2: 500).
    pub provider_performed_window: usize,
    /// Initial satisfaction reported before any observation
    /// (`iniSatisfaction`, Table 2: 0.5).
    pub initial_satisfaction: f64,
}

impl Default for MediatorStateConfig {
    fn default() -> Self {
        MediatorStateConfig {
            consumer_window: 200,
            provider_proposed_window: 500,
            provider_performed_window: 500,
            initial_satisfaction: 0.5,
        }
    }
}

/// A consumer's satisfaction as reported by *other* mediators, absorbed
/// during periodic view synchronization (see `crate::mediator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteConsumerView {
    /// Weighted sum of the remote satisfaction readings.
    weighted_satisfaction: f64,
    /// Total weight (number of remote observations backing the readings).
    weight: u64,
}

/// The mediator's view of every participant's intention-based
/// characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MediatorState {
    config: MediatorStateConfig,
    consumers: ParticipantTable<ConsumerId, ConsumerTracker>,
    providers: ParticipantTable<ProviderId, ProviderTracker>,
    /// Consumer satisfaction absorbed from peer mediators. Empty in a
    /// mono-mediator system, so the blended reading reduces to the local
    /// tracker exactly.
    remote_consumers: ParticipantTable<ConsumerId, RemoteConsumerView>,
    /// Consumers this mediator has removed (departed from the system).
    /// Peer digests may still carry readings for them — a digest exported
    /// just before the departure propagated — and absorbing such a reading
    /// would resurrect the consumer's view after every shard already
    /// forgot it. [`MediatorState::add_remote_consumer_view`] refuses
    /// tombstoned consumers; a consumer that genuinely re-registers
    /// locally clears its tombstone.
    departed_consumers: ParticipantTable<ConsumerId, ()>,
    allocations: u64,
    /// Transient buffers, rebuilt on every recorded allocation (not part
    /// of the mediator's logical state).
    scratch: RecordScratch,
}

impl MediatorState {
    /// Creates a state with the given tracker configuration.
    pub fn new(config: MediatorStateConfig) -> Self {
        MediatorState {
            config,
            consumers: ParticipantTable::new(),
            providers: ParticipantTable::new(),
            remote_consumers: ParticipantTable::new(),
            departed_consumers: ParticipantTable::new(),
            allocations: 0,
            scratch: RecordScratch::default(),
        }
    }

    /// Creates a state with the paper's Table 2 configuration.
    pub fn paper_default() -> Self {
        MediatorState::new(MediatorStateConfig::default())
    }

    /// Registers a consumer explicitly (consumers are otherwise registered
    /// lazily on their first allocation).
    pub fn register_consumer(&mut self, consumer: ConsumerId) {
        let config = self.config;
        self.departed_consumers.remove(consumer);
        self.consumers.or_insert_with(consumer, || {
            ConsumerTracker::new(config.consumer_window, config.initial_satisfaction)
        });
    }

    /// Registers a provider explicitly.
    pub fn register_provider(&mut self, provider: ProviderId) {
        register_provider_in(&mut self.providers, self.config, provider);
    }

    /// Forgets a consumer (e.g. after it departs from the system). The
    /// consumer is tombstoned: stale peer digests can no longer resurrect
    /// its view through [`MediatorState::add_remote_consumer_view`].
    pub fn remove_consumer(&mut self, consumer: ConsumerId) {
        self.consumers.remove(consumer);
        self.remote_consumers.remove(consumer);
        self.departed_consumers.insert(consumer, ());
    }

    /// Forgets a provider.
    pub fn remove_provider(&mut self, provider: ProviderId) {
        self.providers.remove(provider);
    }

    /// Extracts a provider's full satisfaction history so it can migrate
    /// to another mediator shard. Returns `None` when the provider was
    /// never observed here (the receiving shard then starts it fresh).
    ///
    /// Unlike [`MediatorState::remove_provider`], which is for departures,
    /// this is the donor half of cross-shard migration: pair it with
    /// [`MediatorState::absorb_provider`] on the receiving state and no
    /// observation is lost in transit.
    pub fn export_provider(&mut self, provider: ProviderId) -> Option<ProviderTracker> {
        self.providers.remove(provider)
    }

    /// Installs a provider's satisfaction history exported from another
    /// mediator shard (the receiving half of cross-shard migration). Any
    /// existing local tracker for the provider is replaced — the exported
    /// history is authoritative, because a provider is owned by exactly
    /// one shard at a time.
    pub fn absorb_provider(&mut self, provider: ProviderId, tracker: ProviderTracker) {
        self.providers.insert(provider, tracker);
    }

    /// Records the outcome of one query allocation: updates the issuing
    /// consumer's tracker with its shown intentions over `P_q` and the
    /// selected subset, and every candidate provider's tracker with its
    /// shown intention and whether it was selected.
    ///
    /// Raw intention values are clamped into `[-1, 1]` before entering the
    /// Section 3 model.
    pub fn record_allocation(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        allocation: &Allocation,
    ) {
        self.register_consumer(query.consumer);
        let scratch = &mut self.scratch;
        scratch.selection.rebuild(allocation);
        scratch.intentions.clear();
        scratch.intentions.extend(
            candidates
                .iter()
                .map(|c| Intention::new(c.consumer_intention)),
        );
        scratch.selected_indices.clear();
        scratch.selected_indices.extend(
            candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| scratch.selection.contains(c.provider))
                .map(|(i, _)| i),
        );
        if let Some(tracker) = self.consumers.get_mut(query.consumer) {
            tracker.record_allocation(&scratch.intentions, &scratch.selected_indices, query.n);
        }

        for candidate in candidates {
            // The free-function registration helper keeps the provider
            // table borrow disjoint from the scratch borrow.
            let tracker =
                register_provider_in(&mut self.providers, self.config, candidate.provider);
            tracker.record_proposal(
                Intention::new(candidate.provider_intention),
                scratch.selection.contains(candidate.provider),
            );
        }
        self.allocations += 1;
    }

    /// Intention-based adequation `δa(c)` of a consumer.
    pub fn consumer_adequation(&self, consumer: ConsumerId) -> f64 {
        self.consumers
            .get(consumer)
            .map(|t| t.adequation())
            .unwrap_or(self.config.initial_satisfaction)
    }

    /// Intention-based allocation satisfaction `δas(c)` of a consumer.
    pub fn consumer_allocation_satisfaction(&self, consumer: ConsumerId) -> f64 {
        self.consumers
            .get(consumer)
            .map(|t| t.allocation_satisfaction())
            .unwrap_or(1.0)
    }

    /// Intention-based adequation `δa(p)` of a provider.
    pub fn provider_adequation(&self, provider: ProviderId) -> f64 {
        self.providers
            .get(provider)
            .map(|t| t.adequation())
            .unwrap_or(self.config.initial_satisfaction)
    }

    /// Intention-based allocation satisfaction `δas(p)` of a provider.
    pub fn provider_allocation_satisfaction(&self, provider: ProviderId) -> f64 {
        self.providers
            .get(provider)
            .map(|t| t.allocation_satisfaction())
            .unwrap_or(1.0)
    }

    /// Direct access to a consumer's tracker, if registered.
    pub fn consumer_tracker(&self, consumer: ConsumerId) -> Option<&ConsumerTracker> {
        self.consumers.get(consumer)
    }

    /// Direct access to a provider's tracker, if registered.
    pub fn provider_tracker(&self, provider: ProviderId) -> Option<&ProviderTracker> {
        self.providers.get(provider)
    }

    /// Identifiers of all registered consumers.
    pub fn consumers(&self) -> impl Iterator<Item = ConsumerId> + '_ {
        self.consumers.keys()
    }

    /// Identifiers of all registered providers.
    pub fn providers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        self.providers.keys()
    }

    /// The number of locally observed allocations backing a consumer's
    /// satisfaction reading (the tracker's window fill). Used as the local
    /// weight when blending with remote views.
    pub fn consumer_observation_weight(&self, consumer: ConsumerId) -> u64 {
        self.consumers
            .get(consumer)
            .map(|t| t.window_len() as u64)
            .unwrap_or(0)
    }

    /// Drops every absorbed remote consumer view (called at the start of a
    /// synchronization round).
    pub fn clear_remote_consumer_views(&mut self) {
        self.remote_consumers.clear();
    }

    /// Accumulates a peer mediator's satisfaction reading for `consumer`,
    /// weighted by the number of observations backing it. Readings from
    /// several peers add up; [`MediatorView::consumer_satisfaction`] then
    /// blends the aggregate with the local tracker.
    pub fn add_remote_consumer_view(
        &mut self,
        consumer: ConsumerId,
        satisfaction: f64,
        weight: u64,
    ) {
        if weight == 0 || !satisfaction.is_finite() {
            return;
        }
        // A consumer removed here has departed the whole system (the
        // engine removes it from every shard in the same event); a peer
        // digest that still mentions it is stale and must not bring the
        // view back from the dead.
        if self.departed_consumers.contains(consumer) {
            return;
        }
        let view = self
            .remote_consumers
            .or_insert_with(consumer, || RemoteConsumerView {
                weighted_satisfaction: 0.0,
                weight: 0,
            });
        view.weighted_satisfaction += satisfaction * weight as f64;
        view.weight += weight;
    }

    /// The aggregated remote satisfaction view for a consumer, if any peer
    /// reported one: `(mean satisfaction, total weight)`.
    pub fn remote_consumer_view(&self, consumer: ConsumerId) -> Option<(f64, u64)> {
        self.remote_consumers
            .get(consumer)
            .filter(|v| v.weight > 0)
            .map(|v| (v.weighted_satisfaction / v.weight as f64, v.weight))
    }

    /// Total number of allocations recorded.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The tracker configuration in use.
    pub fn config(&self) -> MediatorStateConfig {
        self.config
    }
}

/// Ensures a provider tracker exists and returns it. A free function
/// (rather than a `&mut self` method) so callers holding disjoint borrows
/// of other `MediatorState` fields can register providers too; this is
/// the single home of the tracker construction.
fn register_provider_in(
    providers: &mut ParticipantTable<ProviderId, ProviderTracker>,
    config: MediatorStateConfig,
    provider: ProviderId,
) -> &mut ProviderTracker {
    providers.or_insert_with(provider, || {
        ProviderTracker::new(
            config.provider_proposed_window,
            config.provider_performed_window,
            config.initial_satisfaction,
        )
    })
}

impl Default for MediatorState {
    fn default() -> Self {
        MediatorState::paper_default()
    }
}

impl MediatorView for MediatorState {
    fn consumer_satisfaction(&self, consumer: ConsumerId) -> f64 {
        // Blend the local tracker with whatever peer mediators reported at
        // the last synchronization, weighting each side by its number of
        // observations. With no remote views (the mono-mediator case) this
        // is exactly the local reading.
        let local = self.consumers.get(consumer).map(|t| t.satisfaction());
        match (local, self.remote_consumer_view(consumer)) {
            (Some(local_sat), Some((remote_sat, remote_weight))) => {
                let local_weight = self.consumer_observation_weight(consumer);
                if local_weight == 0 {
                    remote_sat
                } else {
                    let (lw, rw) = (local_weight as f64, remote_weight as f64);
                    (local_sat * lw + remote_sat * rw) / (lw + rw)
                }
            }
            (Some(local_sat), None) => local_sat,
            (None, Some((remote_sat, _))) => remote_sat,
            (None, None) => self.config.initial_satisfaction,
        }
    }

    fn provider_satisfaction(&self, provider: ProviderId) -> f64 {
        // Equation 6 uses the smoothed (Table 2 / `proSatSize`) reading of
        // the provider's intention-based satisfaction: it reacts to a
        // provider being under-served over its recent history without
        // letting a single empty sampling window swing `ω` to an extreme
        // that would override the consumer's intentions entirely.
        // Providers are owned by exactly one mediator shard, so no remote
        // blending is needed on this side.
        self.providers
            .get(provider)
            .map(|t| t.satisfaction())
            .unwrap_or(self.config.initial_satisfaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::RankedProvider;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn query() -> Query {
        Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    fn candidates(values: &[(u32, f64, f64)]) -> Vec<CandidateInfo> {
        values
            .iter()
            .map(|&(id, ci, pi)| {
                CandidateInfo::new(ProviderId::new(id))
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi)
            })
            .collect()
    }

    fn allocation_to(query: QueryId, provider: u32) -> Allocation {
        Allocation {
            query,
            selected: vec![ProviderId::new(provider)],
            ranking: vec![RankedProvider {
                provider: ProviderId::new(provider),
                score: 1.0,
            }],
        }
    }

    #[test]
    fn unknown_participants_report_initial_values() {
        let state = MediatorState::paper_default();
        assert_eq!(state.consumer_satisfaction(ConsumerId::new(7)), 0.5);
        assert_eq!(state.provider_satisfaction(ProviderId::new(7)), 0.5);
        assert_eq!(state.consumer_adequation(ConsumerId::new(7)), 0.5);
        assert_eq!(state.provider_adequation(ProviderId::new(7)), 0.5);
        assert_eq!(
            state.consumer_allocation_satisfaction(ConsumerId::new(7)),
            1.0
        );
        assert_eq!(
            state.provider_allocation_satisfaction(ProviderId::new(7)),
            1.0
        );
        assert_eq!(state.allocations(), 0);
    }

    #[test]
    fn record_allocation_updates_both_sides() {
        let mut state = MediatorState::paper_default();
        let q = query();
        let cands = candidates(&[(0, 0.8, 0.9), (1, -0.5, 0.2)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);

        assert_eq!(state.allocations(), 1);
        // Consumer got its preferred provider: satisfaction above
        // adequation.
        assert!(state.consumer_satisfaction(q.consumer) > state.consumer_adequation(q.consumer));
        assert!(state.consumer_allocation_satisfaction(q.consumer) > 1.0);
        // Selected provider's satisfaction reflects its positive intention.
        assert!(state.provider_satisfaction(ProviderId::new(0)) > 0.9);
        // Non-selected provider performed nothing yet, so its smoothed
        // satisfaction stays at the initial value while its adequation
        // reflects the proposal; its strict Definition 5 reading is 0.
        assert_eq!(state.provider_satisfaction(ProviderId::new(1)), 0.5);
        assert_eq!(
            state
                .provider_tracker(ProviderId::new(1))
                .unwrap()
                .satisfaction_strict(),
            0.0
        );
        assert!(state.provider_adequation(ProviderId::new(1)) < 0.9);
        assert_eq!(state.providers().count(), 2);
        assert_eq!(state.consumers().count(), 1);
    }

    #[test]
    fn raw_intentions_are_clamped_before_recording() {
        let mut state = MediatorState::paper_default();
        let q = query();
        // A raw provider intention of -2.5 (possible under Definition 8
        // with ε = 1) must not push satisfaction below 0.
        let cands = candidates(&[(0, 1.0, -2.5)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);
        assert!(state.provider_satisfaction(ProviderId::new(0)) >= 0.0);
        assert_eq!(state.provider_satisfaction(ProviderId::new(0)), 0.0);
    }

    #[test]
    fn remove_participants_resets_their_view() {
        let mut state = MediatorState::paper_default();
        let q = query();
        let cands = candidates(&[(0, 0.8, 0.9)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);
        state.remove_provider(ProviderId::new(0));
        state.remove_consumer(q.consumer);
        assert_eq!(state.provider_satisfaction(ProviderId::new(0)), 0.5);
        assert_eq!(state.consumer_satisfaction(q.consumer), 0.5);
        assert!(state.provider_tracker(ProviderId::new(0)).is_none());
        assert!(state.consumer_tracker(q.consumer).is_none());
    }

    #[test]
    fn explicit_registration_is_idempotent() {
        let mut state = MediatorState::paper_default();
        state.register_provider(ProviderId::new(3));
        state.register_provider(ProviderId::new(3));
        state.register_consumer(ConsumerId::new(2));
        state.register_consumer(ConsumerId::new(2));
        assert_eq!(state.providers().count(), 1);
        assert_eq!(state.consumers().count(), 1);
        assert_eq!(state.config().consumer_window, 200);
    }
}
