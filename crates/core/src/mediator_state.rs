//! Mediator-side satisfaction bookkeeping.
//!
//! The query allocation module cannot see private preferences, so the
//! satisfaction values it uses in Equation 6 "have to be based on the
//! intentions" (Section 5.3). [`MediatorState`] maintains an
//! intention-based [`ConsumerTracker`] per consumer and an intention-based
//! [`ProviderTracker`] per provider, updated after every allocation.

use serde::{Deserialize, Serialize};
// Re-exported so layers that carry trackers across mediators (the shard
// router's migration and churn parking paths) can name the type without a
// direct dependency on the satisfaction crate.
pub use sqlb_satisfaction::{ConsumerTracker, ProviderTracker};
use sqlb_types::{ConsumerId, Intention, ProviderId, Query, StridedColumn, StridedTable};

use crate::allocation::{Allocation, CandidateInfo, MediatorView, SelectionSet};

/// Reusable buffers for [`MediatorState::record_allocation`], so recording
/// an allocation performs no heap allocation in steady state. Scratch
/// state is transient (rebuilt from scratch on every call), so it is
/// excluded from serialization and comparisons.
#[derive(Debug, Clone, Default)]
struct RecordScratch {
    intentions: Vec<Intention>,
    selected_indices: Vec<usize>,
    selection: SelectionSet,
}

/// Configuration of the mediator-side trackers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediatorStateConfig {
    /// Window size for consumer trackers (`conSatSize`, Table 2: 200).
    pub consumer_window: usize,
    /// Proposal-window size for provider trackers.
    pub provider_proposed_window: usize,
    /// Performed-window size for provider trackers (`proSatSize`,
    /// Table 2: 500).
    pub provider_performed_window: usize,
    /// Initial satisfaction reported before any observation
    /// (`iniSatisfaction`, Table 2: 0.5).
    pub initial_satisfaction: f64,
}

impl Default for MediatorStateConfig {
    fn default() -> Self {
        MediatorStateConfig {
            consumer_window: 200,
            provider_proposed_window: 500,
            provider_performed_window: 500,
            initial_satisfaction: 0.5,
        }
    }
}

/// A consumer's satisfaction as reported by *other* mediators, absorbed
/// during periodic view synchronization (see `crate::mediator`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemoteConsumerView {
    /// Weighted sum of the remote satisfaction readings.
    weighted_satisfaction: f64,
    /// Total weight (number of remote observations backing the readings).
    weight: u64,
}

/// The mediator's view of every participant's intention-based
/// characteristics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MediatorState {
    config: MediatorStateConfig,
    consumers: StridedTable<ConsumerId, ConsumerTracker>,
    providers: StridedTable<ProviderId, ProviderTracker>,
    /// Consumer satisfaction absorbed from peer mediators. Empty in a
    /// mono-mediator system, so the blended reading reduces to the local
    /// tracker exactly.
    remote_consumers: StridedTable<ConsumerId, RemoteConsumerView>,
    /// Consumers this mediator has removed (departed from the system).
    /// Peer digests may still carry readings for them — a digest exported
    /// just before the departure propagated — and absorbing such a reading
    /// would resurrect the consumer's view after every shard already
    /// forgot it. [`MediatorState::add_remote_consumer_view`] refuses
    /// tombstoned consumers; a consumer that genuinely re-registers
    /// locally clears its tombstone.
    departed_consumers: StridedTable<ConsumerId, ()>,
    allocations: u64,
    /// Dense satisfaction column (struct-of-arrays). Invariant:
    /// `provider_satisfactions[p]` holds the exact bits of
    /// `providers[p].satisfaction()` for every registered provider, and
    /// the initial satisfaction (the column's fill value) for every
    /// absent slot — so the Equation 6 hot path streams contiguous
    /// `f64`s instead of chasing tracker entries through the table.
    /// Refreshed at every point a tracker's performed window can change:
    /// proposal recording, registration, removal, and migration
    /// export/absorb.
    provider_satisfactions: StridedColumn<ProviderId, f64>,
    /// Transient buffers, rebuilt on every recorded allocation (not part
    /// of the mediator's logical state).
    scratch: RecordScratch,
}

impl MediatorState {
    /// Creates a state with the given tracker configuration.
    pub fn new(config: MediatorStateConfig) -> Self {
        MediatorState::with_slot_stride(config, 0, 1)
    }

    /// Creates a state whose participant tables are compacted for the
    /// residue class `raw id ≡ offset (mod stride)`.
    ///
    /// The shard router partitions providers *and* routes consumers
    /// round-robin by raw id, so shard `i` of `K` only ever registers
    /// participants with `id ≡ i (mod K)` through its own allocations.
    /// Passing `(i, K)` here keeps every per-shard table `O(P / K)`
    /// instead of `O(P)` — the difference between linear and quadratic
    /// total state as the shard count grows with the population.
    /// Participants outside the class (migrated-in providers, absorbed
    /// peer views) spill to a small sorted overflow, so behavior is
    /// identical at any stride; `(0, 1)` is the dense mono-mediator
    /// layout.
    pub fn with_slot_stride(config: MediatorStateConfig, offset: usize, stride: usize) -> Self {
        MediatorState {
            config,
            consumers: StridedTable::with_stride(offset, stride),
            providers: StridedTable::with_stride(offset, stride),
            remote_consumers: StridedTable::with_stride(offset, stride),
            departed_consumers: StridedTable::with_stride(offset, stride),
            allocations: 0,
            provider_satisfactions: StridedColumn::with_stride(
                config.initial_satisfaction,
                offset,
                stride,
            ),
            scratch: RecordScratch::default(),
        }
    }

    /// Creates a state with the paper's Table 2 configuration.
    pub fn paper_default() -> Self {
        MediatorState::new(MediatorStateConfig::default())
    }

    /// Registers a consumer explicitly (consumers are otherwise registered
    /// lazily on their first allocation).
    pub fn register_consumer(&mut self, consumer: ConsumerId) {
        let config = self.config;
        self.departed_consumers.remove(consumer);
        self.consumers.or_insert_with(consumer, || {
            ConsumerTracker::new(config.consumer_window, config.initial_satisfaction)
        });
    }

    /// Registers a provider explicitly.
    pub fn register_provider(&mut self, provider: ProviderId) {
        let tracker = register_provider_in(&mut self.providers, self.config, provider);
        let satisfaction = tracker.satisfaction();
        self.provider_satisfactions.set(provider, satisfaction);
    }

    /// Forgets a consumer (e.g. after it departs from the system). The
    /// consumer is tombstoned: stale peer digests can no longer resurrect
    /// its view through [`MediatorState::add_remote_consumer_view`].
    pub fn remove_consumer(&mut self, consumer: ConsumerId) {
        self.consumers.remove(consumer);
        self.remote_consumers.remove(consumer);
        self.departed_consumers.insert(consumer, ());
    }

    /// Forgets a provider.
    pub fn remove_provider(&mut self, provider: ProviderId) {
        self.providers.remove(provider);
        self.provider_satisfactions.reset(provider);
    }

    /// Extracts a provider's full satisfaction history so it can migrate
    /// to another mediator shard. Returns `None` when the provider was
    /// never observed here (the receiving shard then starts it fresh).
    ///
    /// Unlike [`MediatorState::remove_provider`], which is for departures,
    /// this is the donor half of cross-shard migration: pair it with
    /// [`MediatorState::absorb_provider`] on the receiving state and no
    /// observation is lost in transit.
    pub fn export_provider(&mut self, provider: ProviderId) -> Option<ProviderTracker> {
        self.provider_satisfactions.reset(provider);
        self.providers.remove(provider)
    }

    /// Installs a provider's satisfaction history exported from another
    /// mediator shard (the receiving half of cross-shard migration). Any
    /// existing local tracker for the provider is replaced — the exported
    /// history is authoritative, because a provider is owned by exactly
    /// one shard at a time.
    pub fn absorb_provider(&mut self, provider: ProviderId, tracker: ProviderTracker) {
        self.provider_satisfactions
            .set(provider, tracker.satisfaction());
        self.providers.insert(provider, tracker);
    }

    /// Records the outcome of one query allocation: updates the issuing
    /// consumer's tracker with its shown intentions over `P_q` and the
    /// selected subset, and every candidate provider's tracker with its
    /// shown intention and whether it was selected.
    ///
    /// Raw intention values are clamped into `[-1, 1]` before entering the
    /// Section 3 model.
    pub fn record_allocation(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        allocation: &Allocation,
    ) {
        self.register_consumer(query.consumer);
        let scratch = &mut self.scratch;
        scratch.selection.rebuild(allocation);
        scratch.intentions.clear();
        scratch.selected_indices.clear();
        for (i, c) in candidates.iter().enumerate() {
            scratch
                .intentions
                .push(Intention::new(c.consumer_intention));
            if scratch.selection.contains(c.provider) {
                scratch.selected_indices.push(i);
            }
        }
        if let Some(tracker) = self.consumers.get_mut(query.consumer) {
            tracker.record_allocation(&scratch.intentions, &scratch.selected_indices, query.n);
        }

        for candidate in candidates {
            // The free-function registration helper keeps the provider
            // table borrow disjoint from the scratch borrow.
            let tracker =
                register_provider_in(&mut self.providers, self.config, candidate.provider);
            let performed = scratch.selection.contains(candidate.provider);
            tracker.record_proposal(Intention::new(candidate.provider_intention), performed);
            // Satisfaction is a function of the performed window alone, so
            // a rejected proposal cannot move it — only selected candidates
            // need their dense-column entry refreshed.
            if performed {
                let satisfaction = tracker.satisfaction();
                self.provider_satisfactions
                    .set(candidate.provider, satisfaction);
            }
        }
        self.allocations += 1;
    }

    /// Intention-based adequation `δa(c)` of a consumer.
    pub fn consumer_adequation(&self, consumer: ConsumerId) -> f64 {
        self.consumers
            .get(consumer)
            .map(|t| t.adequation())
            .unwrap_or(self.config.initial_satisfaction)
    }

    /// Intention-based allocation satisfaction `δas(c)` of a consumer.
    pub fn consumer_allocation_satisfaction(&self, consumer: ConsumerId) -> f64 {
        self.consumers
            .get(consumer)
            .map(|t| t.allocation_satisfaction())
            .unwrap_or(1.0)
    }

    /// Intention-based adequation `δa(p)` of a provider.
    pub fn provider_adequation(&self, provider: ProviderId) -> f64 {
        self.providers
            .get(provider)
            .map(|t| t.adequation())
            .unwrap_or(self.config.initial_satisfaction)
    }

    /// Intention-based allocation satisfaction `δas(p)` of a provider.
    pub fn provider_allocation_satisfaction(&self, provider: ProviderId) -> f64 {
        self.providers
            .get(provider)
            .map(|t| t.allocation_satisfaction())
            .unwrap_or(1.0)
    }

    /// Direct access to a consumer's tracker, if registered.
    pub fn consumer_tracker(&self, consumer: ConsumerId) -> Option<&ConsumerTracker> {
        self.consumers.get(consumer)
    }

    /// Direct access to a provider's tracker, if registered.
    pub fn provider_tracker(&self, provider: ProviderId) -> Option<&ProviderTracker> {
        self.providers.get(provider)
    }

    /// Identifiers of all registered consumers.
    pub fn consumers(&self) -> impl Iterator<Item = ConsumerId> + '_ {
        self.consumers.keys()
    }

    /// Identifiers of all registered providers.
    pub fn providers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        self.providers.keys()
    }

    /// The number of locally observed allocations backing a consumer's
    /// satisfaction reading (the tracker's window fill). Used as the local
    /// weight when blending with remote views.
    pub fn consumer_observation_weight(&self, consumer: ConsumerId) -> u64 {
        self.consumers
            .get(consumer)
            .map(|t| t.window_len() as u64)
            .unwrap_or(0)
    }

    /// Drops every absorbed remote consumer view (called at the start of a
    /// synchronization round).
    pub fn clear_remote_consumer_views(&mut self) {
        self.remote_consumers.clear();
    }

    /// Accumulates a peer mediator's satisfaction reading for `consumer`,
    /// weighted by the number of observations backing it. Readings from
    /// several peers add up; [`MediatorView::consumer_satisfaction`] then
    /// blends the aggregate with the local tracker.
    pub fn add_remote_consumer_view(
        &mut self,
        consumer: ConsumerId,
        satisfaction: f64,
        weight: u64,
    ) {
        if weight == 0 || !satisfaction.is_finite() {
            return;
        }
        // A consumer removed here has departed the whole system (the
        // engine removes it from every shard in the same event); a peer
        // digest that still mentions it is stale and must not bring the
        // view back from the dead.
        if self.departed_consumers.contains(consumer) {
            return;
        }
        let view = self
            .remote_consumers
            .or_insert_with(consumer, || RemoteConsumerView {
                weighted_satisfaction: 0.0,
                weight: 0,
            });
        view.weighted_satisfaction += satisfaction * weight as f64;
        view.weight += weight;
    }

    /// The aggregated remote satisfaction view for a consumer, if any peer
    /// reported one: `(mean satisfaction, total weight)`.
    pub fn remote_consumer_view(&self, consumer: ConsumerId) -> Option<(f64, u64)> {
        self.remote_consumers
            .get(consumer)
            .filter(|v| v.weight > 0)
            .map(|v| (v.weighted_satisfaction / v.weight as f64, v.weight))
    }

    /// Total number of allocations recorded.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The tracker configuration in use.
    pub fn config(&self) -> MediatorStateConfig {
        self.config
    }
}

/// Ensures a provider tracker exists and returns it. A free function
/// (rather than a `&mut self` method) so callers holding disjoint borrows
/// of other `MediatorState` fields can register providers too; this is
/// the single home of the tracker construction.
fn register_provider_in(
    providers: &mut StridedTable<ProviderId, ProviderTracker>,
    config: MediatorStateConfig,
    provider: ProviderId,
) -> &mut ProviderTracker {
    providers.or_insert_with(provider, || {
        ProviderTracker::new(
            config.provider_proposed_window,
            config.provider_performed_window,
            config.initial_satisfaction,
        )
    })
}

impl Default for MediatorState {
    fn default() -> Self {
        MediatorState::paper_default()
    }
}

impl MediatorView for MediatorState {
    fn consumer_satisfaction(&self, consumer: ConsumerId) -> f64 {
        // Blend the local tracker with whatever peer mediators reported at
        // the last synchronization, weighting each side by its number of
        // observations. With no remote views (the mono-mediator case) this
        // is exactly the local reading.
        let local = self.consumers.get(consumer).map(|t| t.satisfaction());
        match (local, self.remote_consumer_view(consumer)) {
            (Some(local_sat), Some((remote_sat, remote_weight))) => {
                let local_weight = self.consumer_observation_weight(consumer);
                if local_weight == 0 {
                    remote_sat
                } else {
                    let (lw, rw) = (local_weight as f64, remote_weight as f64);
                    (local_sat * lw + remote_sat * rw) / (lw + rw)
                }
            }
            (Some(local_sat), None) => local_sat,
            (None, Some((remote_sat, _))) => remote_sat,
            (None, None) => self.config.initial_satisfaction,
        }
    }

    fn provider_satisfaction(&self, provider: ProviderId) -> f64 {
        // Equation 6 uses the smoothed (Table 2 / `proSatSize`) reading of
        // the provider's intention-based satisfaction: it reacts to a
        // provider being under-served over its recent history without
        // letting a single empty sampling window swing `ω` to an extreme
        // that would override the consumer's intentions entirely.
        // Providers are owned by exactly one mediator shard, so no remote
        // blending is needed on this side. Served from the dense column
        // (bit-identical to `tracker.satisfaction()` by invariant) so the
        // scoring hot path does one indexed load per candidate.
        self.provider_satisfactions.get(provider)
    }

    fn provider_satisfactions_into(&self, candidates: &[CandidateInfo], out: &mut Vec<f64>) {
        // Columnar gather: one bounds-checked load per candidate, no
        // table probe. Slots past the column (providers never observed
        // here) read the fill — the initial satisfaction.
        out.extend(
            candidates
                .iter()
                .map(|c| self.provider_satisfactions.get(c.provider)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::RankedProvider;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn query() -> Query {
        Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    fn candidates(values: &[(u32, f64, f64)]) -> Vec<CandidateInfo> {
        values
            .iter()
            .map(|&(id, ci, pi)| {
                CandidateInfo::new(ProviderId::new(id))
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi)
            })
            .collect()
    }

    fn allocation_to(query: QueryId, provider: u32) -> Allocation {
        Allocation {
            query,
            selected: vec![ProviderId::new(provider)],
            ranking: vec![RankedProvider {
                provider: ProviderId::new(provider),
                score: 1.0,
            }],
        }
    }

    #[test]
    fn unknown_participants_report_initial_values() {
        let state = MediatorState::paper_default();
        assert_eq!(state.consumer_satisfaction(ConsumerId::new(7)), 0.5);
        assert_eq!(state.provider_satisfaction(ProviderId::new(7)), 0.5);
        assert_eq!(state.consumer_adequation(ConsumerId::new(7)), 0.5);
        assert_eq!(state.provider_adequation(ProviderId::new(7)), 0.5);
        assert_eq!(
            state.consumer_allocation_satisfaction(ConsumerId::new(7)),
            1.0
        );
        assert_eq!(
            state.provider_allocation_satisfaction(ProviderId::new(7)),
            1.0
        );
        assert_eq!(state.allocations(), 0);
    }

    #[test]
    fn record_allocation_updates_both_sides() {
        let mut state = MediatorState::paper_default();
        let q = query();
        let cands = candidates(&[(0, 0.8, 0.9), (1, -0.5, 0.2)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);

        assert_eq!(state.allocations(), 1);
        // Consumer got its preferred provider: satisfaction above
        // adequation.
        assert!(state.consumer_satisfaction(q.consumer) > state.consumer_adequation(q.consumer));
        assert!(state.consumer_allocation_satisfaction(q.consumer) > 1.0);
        // Selected provider's satisfaction reflects its positive intention.
        assert!(state.provider_satisfaction(ProviderId::new(0)) > 0.9);
        // Non-selected provider performed nothing yet, so its smoothed
        // satisfaction stays at the initial value while its adequation
        // reflects the proposal; its strict Definition 5 reading is 0.
        assert_eq!(state.provider_satisfaction(ProviderId::new(1)), 0.5);
        assert_eq!(
            state
                .provider_tracker(ProviderId::new(1))
                .unwrap()
                .satisfaction_strict(),
            0.0
        );
        assert!(state.provider_adequation(ProviderId::new(1)) < 0.9);
        assert_eq!(state.providers().count(), 2);
        assert_eq!(state.consumers().count(), 1);
    }

    #[test]
    fn raw_intentions_are_clamped_before_recording() {
        let mut state = MediatorState::paper_default();
        let q = query();
        // A raw provider intention of -2.5 (possible under Definition 8
        // with ε = 1) must not push satisfaction below 0.
        let cands = candidates(&[(0, 1.0, -2.5)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);
        assert!(state.provider_satisfaction(ProviderId::new(0)) >= 0.0);
        assert_eq!(state.provider_satisfaction(ProviderId::new(0)), 0.0);
    }

    #[test]
    fn remove_participants_resets_their_view() {
        let mut state = MediatorState::paper_default();
        let q = query();
        let cands = candidates(&[(0, 0.8, 0.9)]);
        let alloc = allocation_to(q.id, 0);
        state.record_allocation(&q, &cands, &alloc);
        state.remove_provider(ProviderId::new(0));
        state.remove_consumer(q.consumer);
        assert_eq!(state.provider_satisfaction(ProviderId::new(0)), 0.5);
        assert_eq!(state.consumer_satisfaction(q.consumer), 0.5);
        assert!(state.provider_tracker(ProviderId::new(0)).is_none());
        assert!(state.consumer_tracker(q.consumer).is_none());
    }

    /// The dense column must agree, bit for bit, with a from-scratch
    /// tracker recompute over every slot a test touches.
    fn assert_column_matches_trackers(state: &MediatorState, slots: u32) {
        for slot in 0..slots {
            let probe = ProviderId::new(slot);
            let expected = state
                .provider_tracker(probe)
                .map(|t| t.satisfaction())
                .unwrap_or(state.config().initial_satisfaction);
            assert_eq!(
                state.provider_satisfaction(probe).to_bits(),
                expected.to_bits(),
                "column diverged from tracker at slot {slot}"
            );
        }
    }

    #[test]
    fn satisfaction_column_tracks_migration_export_and_absorb() {
        let mut donor = MediatorState::paper_default();
        let mut receiver = MediatorState::paper_default();
        let q = query();
        let cands = candidates(&[(0, 0.8, 0.9), (1, -0.5, 0.2)]);
        donor.record_allocation(&q, &cands, &allocation_to(q.id, 0));
        assert_column_matches_trackers(&donor, 4);

        let tracker = donor.export_provider(ProviderId::new(0)).unwrap();
        assert_column_matches_trackers(&donor, 4);
        receiver.absorb_provider(ProviderId::new(0), tracker);
        assert_column_matches_trackers(&receiver, 4);
        assert!(receiver.provider_satisfaction(ProviderId::new(0)) > 0.9);
        assert_eq!(donor.provider_satisfaction(ProviderId::new(0)), 0.5);
    }

    proptest::proptest! {
        /// Property pin for the struct-of-arrays invariant: after any
        /// sequence of registrations, departures, migrations, and recorded
        /// allocations, the dense satisfaction column is bit-identical to
        /// recomputing `satisfaction()` from each provider's tracker.
        #[test]
        fn prop_satisfaction_column_matches_recompute_after_any_sequence(
            ops in proptest::collection::vec(
                (0u8..4, 0u32..10, -1.0f64..=1.0, -1.0f64..=1.0),
                1..50,
            )
        ) {
            let mut state = MediatorState::paper_default();
            let mut in_transit: Vec<(ProviderId, ProviderTracker)> = Vec::new();
            for (round, (op, id, ci, pi)) in ops.into_iter().enumerate() {
                let p = ProviderId::new(id);
                match op {
                    0 => state.register_provider(p),
                    1 => state.remove_provider(p),
                    2 => {
                        // One migration leg per step: export if the
                        // provider is here, otherwise land whatever is in
                        // transit back into this state.
                        if let Some(t) = state.export_provider(p) {
                            in_transit.push((p, t));
                        } else if let Some((p2, t2)) = in_transit.pop() {
                            state.absorb_provider(p2, t2);
                        }
                    }
                    _ => {
                        let q = Query::single(
                            QueryId::new(round as u32),
                            ConsumerId::new(0),
                            QueryClass::Light,
                            SimTime::ZERO,
                        );
                        let cands = candidates(&[(id, ci, pi)]);
                        state.record_allocation(&q, &cands, &allocation_to(q.id, id));
                    }
                }
                for slot in 0..10u32 {
                    let probe = ProviderId::new(slot);
                    let expected = state
                        .provider_tracker(probe)
                        .map(|t| t.satisfaction())
                        .unwrap_or(0.5);
                    proptest::prop_assert_eq!(
                        state.provider_satisfaction(probe).to_bits(),
                        expected.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn explicit_registration_is_idempotent() {
        let mut state = MediatorState::paper_default();
        state.register_provider(ProviderId::new(3));
        state.register_provider(ProviderId::new(3));
        state.register_consumer(ConsumerId::new(2));
        state.register_consumer(ConsumerId::new(2));
        assert_eq!(state.providers().count(), 1);
        assert_eq!(state.consumers().count(), 1);
        assert_eq!(state.config().consumer_window, 200);
    }
}
