//! The intention functions of Section 5 (Definitions 7 and 8).
//!
//! Both functions follow the same pattern: a weighted geometric trade-off
//! between two criteria when both are favourable, and a negative
//! "repulsion" term otherwise. The parameter `ε > 0` (usually 1) prevents
//! the negative branch from collapsing to zero when one criterion sits at
//! its extreme.
//!
//! With `ε = 1` the negative branch can produce values below `-1`; the
//! paper's own Figure 2 plots provider intentions down to ≈ `-2.5`. Raw
//! values are therefore returned as `f64` and are only clamped into
//! `[-1, 1]` (via [`sqlb_types::Intention::new`]) when they are recorded
//! into the Section 3 satisfaction model.

use serde::{Deserialize, Serialize};

/// The paper's usual value for the `ε` parameter of Definitions 7–9.
pub const DEFAULT_EPSILON: f64 = 1.0;

/// Parameters shared by the intention functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntentionParams {
    /// The `ε > 0` constant of Definitions 7–9 (usually 1).
    pub epsilon: f64,
}

impl Default for IntentionParams {
    fn default() -> Self {
        IntentionParams {
            epsilon: DEFAULT_EPSILON,
        }
    }
}

impl IntentionParams {
    /// Creates parameters with an explicit `ε`, clamped to be strictly
    /// positive.
    pub fn with_epsilon(epsilon: f64) -> Self {
        IntentionParams {
            epsilon: if epsilon.is_finite() && epsilon > 0.0 {
                epsilon
            } else {
                DEFAULT_EPSILON
            },
        }
    }
}

/// `base^exp` with powf-free fast paths for the exponents the intention
/// and scoring trade-offs hit constantly.
///
/// The trade-off weights (`υ`, `δs`, `ω`) sit at exactly `0` or `1` in
/// common configurations — fixed-omega policies, the `υ = 1` evaluation
/// setting, fully (dis)satisfied participants — and IEEE 754 defines
/// `x^0 = 1` and `x^1 = x` *exactly*, so those paths are bit-identical to
/// the general `powf` branch (pinned by tests).
///
/// `exp == 0.5` deliberately has **no** `sqrt` fast path: `sqrt` is
/// correctly rounded but this platform's `pow` is not, and the two differ
/// by 1 ulp for some bases (e.g. `pow(2.4625, 0.5)`), which would break
/// the engine's bit-for-bit determinism contract. The pinning tests
/// encode this finding.
#[inline]
pub fn powf_fast(base: f64, exp: f64) -> f64 {
    if exp == 0.0 {
        1.0
    } else if exp == 1.0 {
        base
    } else {
        base.powf(exp)
    }
}

/// Consumer intention `ci_c(q, p)` (Definition 7).
///
/// * `preference` — `prf_c(q, p) ∈ [-1, 1]`, the consumer's preference for
///   allocating `q` to `p`;
/// * `reputation` — `rep(p) ∈ [-1, 1]`, the provider's reputation;
/// * `upsilon` — `υ ∈ [0, 1]`, the preference/reputation balance: `υ = 1`
///   means the consumer only considers its own preferences, `υ = 0` only
///   the provider's reputation, `υ = 0.5` both equally;
/// * `params` — the `ε` constant.
///
/// ```text
/// ci =  prf^υ · rep^(1-υ)                              if prf > 0 ∧ rep > 0
/// ci = -[(1 - prf + ε)^υ · (1 - rep + ε)^(1-υ)]        otherwise
/// ```
pub fn consumer_intention(
    preference: f64,
    reputation: f64,
    upsilon: f64,
    params: IntentionParams,
) -> f64 {
    let upsilon = upsilon.clamp(0.0, 1.0);
    let eps = params.epsilon;
    if preference > 0.0 && reputation > 0.0 {
        powf_fast(preference, upsilon) * powf_fast(reputation, 1.0 - upsilon)
    } else {
        -(powf_fast(1.0 - preference + eps, upsilon)
            * powf_fast(1.0 - reputation + eps, 1.0 - upsilon))
    }
}

/// Provider intention `pi_p(q)` (Definition 8).
///
/// * `preference` — `prf_p(q) ∈ [-1, 1]`, the provider's preference for
///   performing `q`;
/// * `utilization` — `Ut(p) ∈ [0, ∞)`;
/// * `satisfaction` — `δs(p) ∈ [0, 1]`, the provider's own
///   **preference-based** satisfaction ("the satisfaction it uses to make
///   the balance has to be based on its preferences and not on its
///   intentions … This is possible since a provider has access to its
///   private information", Section 5.2);
/// * `params` — the `ε` constant.
///
/// ```text
/// pi =  prf^(1-δs) · (1 - Ut)^δs                        if prf > 0 ∧ Ut < 1
/// pi = -[(1 - prf + ε)^(1-δs) · (Ut + ε)^δs]            otherwise
/// ```
///
/// Intuitively, a satisfied provider (`δs → 1`) is dominated by its
/// utilization term — it keeps accepting queries while it has spare
/// capacity, even uninteresting ones — whereas a dissatisfied provider
/// (`δs → 0`) focuses on its preferences to obtain the queries it wants.
pub fn provider_intention(
    preference: f64,
    utilization: f64,
    satisfaction: f64,
    params: IntentionParams,
) -> f64 {
    let satisfaction = satisfaction.clamp(0.0, 1.0);
    let utilization = utilization.max(0.0);
    let eps = params.epsilon;
    if preference > 0.0 && utilization < 1.0 {
        powf_fast(preference, 1.0 - satisfaction) * powf_fast(1.0 - utilization, satisfaction)
    } else {
        -(powf_fast(1.0 - preference + eps, 1.0 - satisfaction)
            * powf_fast(utilization + eps, satisfaction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: IntentionParams = IntentionParams { epsilon: 1.0 };

    #[test]
    fn consumer_intention_pure_preference_when_upsilon_is_one() {
        // υ = 1 and both criteria positive: the intention equals the
        // preference ("the consumer only takes into account its
        // preferences", Section 5.1).
        for prf in [0.1, 0.5, 0.9, 1.0] {
            let i = consumer_intention(prf, 0.7, 1.0, P);
            assert!((i - prf).abs() < 1e-12);
        }
    }

    #[test]
    fn consumer_intention_pure_reputation_when_upsilon_is_zero() {
        for rep in [0.1, 0.5, 1.0] {
            let i = consumer_intention(0.4, rep, 0.0, P);
            assert!((i - rep).abs() < 1e-12);
        }
    }

    #[test]
    fn consumer_intention_balanced_is_geometric_mean() {
        let i = consumer_intention(0.4, 0.9, 0.5, P);
        assert!((i - (0.4f64 * 0.9).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn consumer_intention_negative_when_preference_negative() {
        let i = consumer_intention(-0.5, 0.9, 0.5, P);
        assert!(i < 0.0);
        // ε = 1 keeps the magnitude strictly positive even at rep = 1.
        let i = consumer_intention(-1.0, 1.0, 0.5, P);
        assert!(i < 0.0);
    }

    #[test]
    fn consumer_intention_negative_when_reputation_negative() {
        let i = consumer_intention(0.9, -0.2, 0.5, P);
        assert!(i < 0.0);
    }

    #[test]
    fn consumer_intention_epsilon_prevents_zero_magnitude() {
        // Without ε the negative branch would vanish when prf = 1.
        let i = consumer_intention(1.0, -1.0, 0.5, P);
        assert!(i < 0.0);
        assert!(i.abs() > 0.5);
    }

    #[test]
    fn consumer_intention_monotone_in_preference_positive_branch() {
        let low = consumer_intention(0.2, 0.8, 0.7, P);
        let high = consumer_intention(0.9, 0.8, 0.7, P);
        assert!(high > low);
    }

    #[test]
    fn provider_intention_prefers_idle_interested_provider() {
        // Interested and idle: strong positive intention.
        let i = provider_intention(0.9, 0.0, 0.5, P);
        assert!(i > 0.9, "got {i}");
        // Interested but overloaded: negative intention.
        let i = provider_intention(0.9, 1.5, 0.5, P);
        assert!(i < 0.0);
        // Not interested: negative intention even when idle.
        let i = provider_intention(-0.5, 0.0, 0.5, P);
        assert!(i < 0.0);
    }

    #[test]
    fn provider_intention_figure2_midpoint() {
        // Figure 2 plots pi for δs = 0.5: at prf = 1 and Ut = 0 the
        // intention is 1; it decreases as utilization grows and turns
        // negative past Ut = 1.
        assert!((provider_intention(1.0, 0.0, 0.5, P) - 1.0).abs() < 1e-12);
        let half = provider_intention(1.0, 0.5, 0.5, P);
        assert!((half - 0.5f64.sqrt()).abs() < 1e-12);
        let overloaded = provider_intention(1.0, 2.0, 0.5, P);
        // Negative branch: -[(1-1+1)^0.5 · (2+1)^0.5] = -√3 ≈ -1.73.
        assert!((overloaded + 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn provider_intention_satisfied_provider_follows_utilization() {
        // δs = 1: the preference exponent vanishes; the provider accepts
        // any liked query while it has spare capacity.
        let i = provider_intention(0.01, 0.2, 1.0, P);
        assert!((i - 0.8).abs() < 1e-12);
        // δs = 0: the provider only cares about its preference.
        let i = provider_intention(0.3, 0.99, 0.0, P);
        assert!((i - 0.3).abs() < 1e-12);
    }

    #[test]
    fn provider_intention_dissatisfied_provider_rejects_unwanted_queries_harder() {
        // For a negative preference, a dissatisfied provider shows a more
        // negative intention than a satisfied one at equal utilization —
        // it "focuses on its preferences in order to obtain desired
        // queries" (Section 5.2).
        let dissatisfied = provider_intention(-0.8, 0.4, 0.1, P);
        let satisfied = provider_intention(-0.8, 0.4, 0.9, P);
        assert!(dissatisfied < satisfied);
        assert!(dissatisfied < 0.0 && satisfied < 0.0);
    }

    #[test]
    fn powf_fast_paths_are_bit_identical_to_powf() {
        // The bases that can reach powf_fast: positive-branch inputs in
        // (0, 1] and negative-branch inputs in (0, 2 + ε]. Sweep densely
        // and compare raw bits, not approximate equality.
        let mut base = 1e-6;
        while base <= 4.5 {
            for exp in [0.0, 1.0, 0.5] {
                assert_eq!(
                    powf_fast(base, exp).to_bits(),
                    base.powf(exp).to_bits(),
                    "powf_fast({base}, {exp}) diverged from powf"
                );
            }
            base += 0.001953125; // 2^-9: exact in binary, no drift
        }
        // And the reason 0.5 is NOT shortcut to sqrt: pow is not correctly
        // rounded on every platform, so sqrt(x) can differ from
        // pow(x, 0.5) by 1 ulp. If this assertion ever fails the sqrt fast
        // path would be safe to (re)introduce on this platform.
        let tricky: f64 = 1.0 - (-0.4624999999999999) + 1.0;
        assert_ne!(
            tricky.sqrt().to_bits(),
            tricky.powf(0.5).to_bits(),
            "pow became correctly rounded; sqrt fast path is now viable"
        );
    }

    #[test]
    fn intention_params_validation() {
        assert_eq!(IntentionParams::default().epsilon, 1.0);
        assert_eq!(IntentionParams::with_epsilon(0.25).epsilon, 0.25);
        assert_eq!(IntentionParams::with_epsilon(0.0).epsilon, 1.0);
        assert_eq!(IntentionParams::with_epsilon(-2.0).epsilon, 1.0);
        assert_eq!(IntentionParams::with_epsilon(f64::NAN).epsilon, 1.0);
    }

    proptest! {
        #[test]
        fn prop_powf_fast_matches_powf_bitwise(
            base in 1e-9f64..=4.0,
            free_exp in 0.0f64..=1.0,
        ) {
            for exp in [0.0, 1.0, 0.5, free_exp] {
                prop_assert_eq!(powf_fast(base, exp).to_bits(), base.powf(exp).to_bits());
            }
        }

        #[test]
        fn prop_consumer_intention_sign_matches_branches(
            prf in -1.0f64..=1.0,
            rep in -1.0f64..=1.0,
            upsilon in 0.0f64..=1.0,
        ) {
            let i = consumer_intention(prf, rep, upsilon, P);
            prop_assert!(i.is_finite());
            if prf > 0.0 && rep > 0.0 {
                prop_assert!(i >= 0.0);
                prop_assert!(i <= 1.0 + 1e-12);
            } else {
                prop_assert!(i < 0.0);
            }
        }

        #[test]
        fn prop_provider_intention_sign_matches_branches(
            prf in -1.0f64..=1.0,
            ut in 0.0f64..=3.0,
            sat in 0.0f64..=1.0,
        ) {
            let i = provider_intention(prf, ut, sat, P);
            prop_assert!(i.is_finite());
            if prf > 0.0 && ut < 1.0 {
                prop_assert!(i >= 0.0);
                prop_assert!(i <= 1.0 + 1e-12);
            } else {
                prop_assert!(i < 0.0);
            }
        }

        #[test]
        fn prop_provider_intention_decreases_with_utilization_in_positive_branch(
            prf in 0.05f64..=1.0,
            sat in 0.05f64..=1.0,
            ut in 0.0f64..=0.9,
        ) {
            let low = provider_intention(prf, ut, sat, P);
            let high = provider_intention(prf, (ut + 0.05).min(0.999), sat, P);
            prop_assert!(high <= low + 1e-12);
        }

        #[test]
        fn prop_consumer_intention_increases_with_reputation_in_positive_branch(
            prf in 0.05f64..=1.0,
            upsilon in 0.0f64..=0.95,
            rep in 0.05f64..=0.9,
        ) {
            let low = consumer_intention(prf, rep, upsilon, P);
            let high = consumer_intention(prf, (rep + 0.05).min(1.0), upsilon, P);
            prop_assert!(high >= low - 1e-12);
        }
    }
}
