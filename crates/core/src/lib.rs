//! # sqlb-core
//!
//! The SQLB framework itself — the primary contribution of *"SQLB: A Query
//! Allocation Framework for Autonomous Consumers and Providers"*
//! (Quiané-Ruiz, Lamarre, Valduriez — VLDB 2007).
//!
//! SQLB (Satisfaction-based Query Load Balancing) balances queries across
//! providers while taking the *intentions* of both sides into account:
//!
//! * consumers derive their intention for allocating a query to a provider
//!   by trading their **preference** for that provider against the
//!   provider's **reputation** ([`intention::consumer_intention`],
//!   Definition 7);
//! * providers derive their intention for performing a query by trading
//!   their **preference** for the query against their **utilization**,
//!   weighted by their own (private, preference-based) satisfaction
//!   ([`intention::provider_intention`], Definition 8);
//! * the mediator scores every candidate provider by trading the
//!   consumer's intention against the provider's intention, weighted by
//!   their respective (public, intention-based) satisfactions
//!   ([`scoring::provider_score`], Definition 9 and Equation 6);
//! * the query is allocated to the `q.n` best-scored providers
//!   ([`allocation`], Algorithm 1).
//!
//! The crate also defines the [`AllocationMethod`] trait that the baseline
//! methods (crate `sqlb-baselines`) implement, and [`MediatorState`], the
//! mediator-side bookkeeping of intention-based participant satisfaction
//! that Equation 6 relies on.

#![deny(missing_docs)]

pub mod allocation;
pub mod intention;
pub mod mediator;
pub mod mediator_state;
pub mod module;
pub mod scoring;
pub mod sqlb;

pub use allocation::{Allocation, AllocationMethod, CandidateInfo, MediatorView, SelectionSet};
pub use intention::{
    consumer_intention, powf_fast, provider_intention, IntentionParams, DEFAULT_EPSILON,
};
pub use mediator::{ConsumerDigestEntry, Mediator, SatisfactionDigest};
pub use mediator_state::MediatorState;
pub use module::{IntentionSource, QueryAllocationModule};
pub use scoring::{
    omega, provider_score, rank_candidates, rank_candidates_in_place, select_top_k, RankedProvider,
};
pub use sqlb::{OmegaPolicy, SqlbAllocator, SqlbConfig};
