//! The mediator abstraction.
//!
//! The paper evaluates a *mono-mediator* system, but its model explicitly
//! allows several mediators (Section 2). [`Mediator`] packages what one
//! mediation point owns — an identity, an allocation method instance, and
//! the intention-based satisfaction bookkeeping ([`MediatorState`]) that
//! Equation 6 needs — behind one interface, so upper layers (the
//! simulator's shard router, the concurrent runtime) can run one or many
//! without caring which.
//!
//! When several mediators partition the providers, each only observes the
//! allocations it performed itself, so its view of a *consumer*'s
//! satisfaction is partial (consumers reach every shard; providers belong
//! to exactly one). [`Mediator::export_digest`] and
//! [`Mediator::absorb_digests`] implement the periodic satisfaction-view
//! synchronization that repairs this: each mediator publishes its local
//! consumer readings with their observation weights, and every peer blends
//! them into its own view.

use serde::{Deserialize, Serialize};
use sqlb_obs::{Counter, Obs};
use sqlb_types::{ConsumerId, MediatorId, Query};

use crate::allocation::{Allocation, AllocationMethod, CandidateInfo};
use crate::mediator_state::{MediatorState, MediatorStateConfig};

/// Pre-resolved observability instruments of a [`Mediator`]. No-op
/// handles (one predictable branch per update) until
/// [`Mediator::set_obs`] installs an enabled [`sqlb_obs::Obs`], so the
/// allocation hot path is unchanged when observability is off.
#[derive(Debug, Default)]
struct MediatorMetrics {
    /// Allocation decisions taken (Algorithm 1 runs).
    allocations: Counter,
    /// Satisfaction digests published to peers.
    digests_exported: Counter,
    /// Peer digests blended into the local view.
    digests_absorbed: Counter,
}

/// One consumer's satisfaction reading inside a [`SatisfactionDigest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumerDigestEntry {
    /// The consumer the reading is about.
    pub consumer: ConsumerId,
    /// The mediator's local, intention-based satisfaction reading.
    pub satisfaction: f64,
    /// Number of local observations backing the reading (the tracker's
    /// window fill). Peers use it to weight the blend.
    pub weight: u64,
}

/// A mediator's shareable view of consumer satisfaction, exchanged during
/// periodic synchronization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionDigest {
    /// The mediator that produced the digest.
    pub mediator: MediatorId,
    /// One entry per consumer the mediator has observed.
    pub consumers: Vec<ConsumerDigestEntry>,
}

/// One mediation point: an allocation method plus the mediator-side
/// satisfaction state it scores with.
pub struct Mediator {
    id: MediatorId,
    method: Box<dyn AllocationMethod>,
    state: MediatorState,
    metrics: MediatorMetrics,
}

impl Mediator {
    /// Creates a mediator with the given method and tracker configuration.
    pub fn new(
        id: MediatorId,
        method: Box<dyn AllocationMethod>,
        config: MediatorStateConfig,
    ) -> Self {
        Mediator::with_slot_stride(id, method, config, 0, 1)
    }

    /// Creates a mediator whose satisfaction tables are compacted for the
    /// residue class `raw id ≡ offset (mod stride)` (see
    /// [`MediatorState::with_slot_stride`]). The shard router passes its
    /// round-robin partition parameters here so shard `i` of `K` stores
    /// `O(P / K)` state instead of growing dense tables over the whole id
    /// space.
    pub fn with_slot_stride(
        id: MediatorId,
        method: Box<dyn AllocationMethod>,
        config: MediatorStateConfig,
        offset: usize,
        stride: usize,
    ) -> Self {
        Mediator {
            id,
            method,
            state: MediatorState::with_slot_stride(config, offset, stride),
            metrics: MediatorMetrics::default(),
        }
    }

    /// Installs an observability sink: allocation and synchronization
    /// counters become live-readable through the sink's registry,
    /// prefixed with this mediator's raw id so sharded deployments can
    /// tell their mediators apart. With a disabled sink every handle
    /// stays a no-op.
    pub fn set_obs(&mut self, obs: &Obs) {
        let id = self.id.raw();
        self.metrics = MediatorMetrics {
            allocations: obs.counter(&format!("mediator_{id}_allocations")),
            digests_exported: obs.counter(&format!("mediator_{id}_digests_exported")),
            digests_absorbed: obs.counter(&format!("mediator_{id}_digests_absorbed")),
        };
    }

    /// The mediator's identity.
    pub fn id(&self) -> MediatorId {
        self.id
    }

    /// Name of the allocation method this mediator runs.
    pub fn method_name(&self) -> &'static str {
        self.method.name()
    }

    /// The mediator's satisfaction state.
    pub fn state(&self) -> &MediatorState {
        &self.state
    }

    /// Mutable access to the mediator's satisfaction state.
    pub fn state_mut(&mut self) -> &mut MediatorState {
        &mut self.state
    }

    /// Enables or disables the per-allocation ranking diagnostic of the
    /// underlying method (see [`AllocationMethod::set_record_ranking`]).
    pub fn set_record_ranking(&mut self, record: bool) {
        self.method.set_record_ranking(record);
    }

    /// Sets the scoring-kernel thread count of the underlying method (see
    /// [`AllocationMethod::set_scoring_threads`]). A no-op for methods
    /// without a batch kernel.
    pub fn set_scoring_threads(&mut self, threads: usize) {
        self.method.set_scoring_threads(threads);
    }

    /// Runs the allocation decision of Algorithm 1 (lines 6–9) for one
    /// query over the gathered candidate information, and records the
    /// outcome in the mediator's satisfaction state.
    pub fn allocate(&mut self, query: &Query, candidates: &[CandidateInfo]) -> Allocation {
        let allocation = self.method.allocate(query, candidates, &self.state);
        self.state.record_allocation(query, candidates, &allocation);
        self.metrics.allocations.inc();
        allocation
    }

    /// Batched form of [`Mediator::allocate`]: the decision/record step of
    /// Algorithm 1 for a whole mediation wave. `infos[i]` is the gathered
    /// candidate information of `queries[i]` (one entry per query, as
    /// produced by a batched gather such as the mediation reactor's);
    /// allocations are returned in input order.
    ///
    /// Decisions are sequential and order-preserving: each allocation is
    /// recorded in the satisfaction state before the next query of the
    /// wave is scored, so a wave of N queries is bit-identical to N
    /// single-query calls.
    pub fn allocate_batch(
        &mut self,
        queries: &[&Query],
        infos: &[Vec<CandidateInfo>],
    ) -> Vec<Allocation> {
        // A mismatch would silently drop trailing queries (zip stops at
        // the shorter side): never allocated, never recorded, never
        // notified. Fail loudly instead — the check is trivial next to
        // an allocation decision.
        assert_eq!(
            queries.len(),
            infos.len(),
            "allocate_batch needs one candidate-info vector per query"
        );
        queries
            .iter()
            .zip(infos)
            .map(|(query, query_infos)| self.allocate(query, query_infos))
            .collect()
    }

    /// Publishes this mediator's local consumer-satisfaction readings.
    pub fn export_digest(&self) -> SatisfactionDigest {
        let consumers = self
            .state
            .consumers()
            .filter_map(|consumer| {
                let weight = self.state.consumer_observation_weight(consumer);
                if weight == 0 {
                    return None;
                }
                let tracker = self.state.consumer_tracker(consumer)?;
                Some(ConsumerDigestEntry {
                    consumer,
                    satisfaction: tracker.satisfaction(),
                    weight,
                })
            })
            .collect();
        self.metrics.digests_exported.inc();
        SatisfactionDigest {
            mediator: self.id,
            consumers,
        }
    }

    /// Replaces this mediator's remote consumer views with the aggregate
    /// of the given peer digests. The mediator's own digest is skipped, so
    /// an all-to-all exchange can pass the same slice to everyone.
    pub fn absorb_digests(&mut self, digests: &[SatisfactionDigest]) {
        self.state.clear_remote_consumer_views();
        for digest in digests {
            if digest.mediator == self.id {
                continue;
            }
            self.metrics.digests_absorbed.inc();
            for entry in &digest.consumers {
                self.state.add_remote_consumer_view(
                    entry.consumer,
                    entry.satisfaction,
                    entry.weight,
                );
            }
        }
    }
}

impl std::fmt::Debug for Mediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mediator")
            .field("id", &self.id)
            .field("method", &self.method.name())
            .field("allocations", &self.state.allocations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::MediatorView;
    use crate::sqlb::SqlbAllocator;
    use sqlb_types::{ProviderId, QueryClass, QueryId, SimTime};

    fn mediator(raw: u32) -> Mediator {
        Mediator::new(
            MediatorId::new(raw),
            Box::new(SqlbAllocator::new()),
            MediatorStateConfig::default(),
        )
    }

    fn candidates(values: &[(u32, f64, f64)]) -> Vec<CandidateInfo> {
        values
            .iter()
            .map(|&(id, ci, pi)| {
                CandidateInfo::new(ProviderId::new(id))
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi)
            })
            .collect()
    }

    fn query(id: u32, consumer: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(consumer),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    #[test]
    fn allocate_records_into_state() {
        let mut m = mediator(0);
        let q = query(1, 0);
        let allocation = m.allocate(&q, &candidates(&[(0, 0.9, 0.9), (1, -0.9, -0.9)]));
        assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
        assert_eq!(m.state().allocations(), 1);
        assert_eq!(m.method_name(), "SQLB");
        assert_eq!(m.id(), MediatorId::new(0));
    }

    #[test]
    fn a_batched_wave_equals_the_same_single_query_calls() {
        let mut batched = mediator(0);
        let mut sequential = mediator(0);
        let queries: Vec<Query> = (0..6).map(|i| query(i, i % 2)).collect();
        let infos: Vec<Vec<CandidateInfo>> = (0..6)
            .map(|i| candidates(&[(0, 0.9 - 0.1 * i as f64, 0.5), (1, 0.2, 0.8)]))
            .collect();

        let query_refs: Vec<&Query> = queries.iter().collect();
        let from_batch = batched.allocate_batch(&query_refs, &infos);
        let from_singles: Vec<Allocation> = queries
            .iter()
            .zip(&infos)
            .map(|(q, i)| sequential.allocate(q, i))
            .collect();
        assert_eq!(from_batch, from_singles);
        assert_eq!(batched.state().allocations(), 6);
        // The recorded satisfaction state is identical too (the batch is
        // sequential and order-preserving, not a parallel fold).
        for consumer in [ConsumerId::new(0), ConsumerId::new(1)] {
            assert_eq!(
                batched.state().consumer_satisfaction(consumer),
                sequential.state().consumer_satisfaction(consumer)
            );
        }
    }

    #[test]
    fn digest_round_trip_blends_consumer_views() {
        let mut a = mediator(0);
        let mut b = mediator(1);

        // Mediator A sees consumer 0 get exactly what it wanted; mediator B
        // never sees consumer 0 at all.
        for i in 0..10 {
            a.allocate(&query(i, 0), &candidates(&[(0, 1.0, 1.0)]));
        }
        let before = b.state().consumer_satisfaction(ConsumerId::new(0));
        assert_eq!(before, 0.5, "B starts from the initial value");

        let digests = vec![a.export_digest(), b.export_digest()];
        a.absorb_digests(&digests);
        b.absorb_digests(&digests);

        let after = b.state().consumer_satisfaction(ConsumerId::new(0));
        assert!(
            after > 0.9,
            "B should adopt A's highly satisfied view, got {after}"
        );
        // A ignores its own digest, so its local view is unchanged.
        let a_view = a.state().consumer_satisfaction(ConsumerId::new(0));
        assert!(a_view > 0.9);
    }

    #[test]
    fn absorb_is_idempotent_per_round() {
        let mut a = mediator(0);
        let mut b = mediator(1);
        for i in 0..5 {
            a.allocate(&query(i, 3), &candidates(&[(0, 0.8, 0.5)]));
        }
        let digests = vec![a.export_digest()];
        b.absorb_digests(&digests);
        let first = b.state().consumer_satisfaction(ConsumerId::new(3));
        // A second synchronization round with the same digest must not
        // double-count the observations.
        b.absorb_digests(&digests);
        let second = b.state().consumer_satisfaction(ConsumerId::new(3));
        assert_eq!(first, second);
        assert_eq!(
            b.state()
                .remote_consumer_view(ConsumerId::new(3))
                .unwrap()
                .1,
            5
        );
    }

    #[test]
    fn empty_trackers_are_not_exported() {
        let mut m = mediator(0);
        m.state_mut().register_consumer(ConsumerId::new(9));
        assert!(m.export_digest().consumers.is_empty());
    }

    #[test]
    fn stale_digests_cannot_resurrect_departed_consumers() {
        let mut a = mediator(0);
        let mut b = mediator(1);
        for i in 0..10 {
            a.allocate(&query(i, 0), &candidates(&[(0, 1.0, 1.0)]));
        }
        // A exports a digest mentioning consumer 0; the consumer then
        // departs the whole system (every shard removes it) before the
        // digest is absorbed — exactly the race a slow synchronization
        // round can produce.
        let stale = vec![a.export_digest()];
        let consumer = ConsumerId::new(0);
        a.state_mut().remove_consumer(consumer);
        b.state_mut().remove_consumer(consumer);
        b.absorb_digests(&stale);
        assert_eq!(
            b.state().remote_consumer_view(consumer),
            None,
            "a stale digest must not resurrect a departed consumer"
        );
        assert_eq!(b.state().consumer_satisfaction(consumer), 0.5);
        // A consumer that genuinely comes back (re-registers locally) is
        // trackable again, including through digests.
        b.state_mut().register_consumer(consumer);
        b.absorb_digests(&stale);
        assert!(b.state().remote_consumer_view(consumer).is_some());
    }

    #[test]
    fn provider_history_survives_export_absorb_round_trip() {
        let mut donor = mediator(0);
        let mut receiver = mediator(1);
        let provider = ProviderId::new(0);
        for i in 0..25 {
            donor.allocate(&query(i, 2), &candidates(&[(0, 0.6, 0.8)]));
        }
        let before = donor.state().provider_satisfaction(provider);
        let proposed = donor
            .state()
            .provider_tracker(provider)
            .unwrap()
            .proposed_queries();
        assert!(before > 0.5, "the donor observed the provider");

        let tracker = donor.state_mut().export_provider(provider).unwrap();
        receiver.state_mut().absorb_provider(provider, tracker);

        assert!(donor.state().provider_tracker(provider).is_none());
        let migrated = receiver.state().provider_tracker(provider).unwrap();
        assert_eq!(migrated.proposed_queries(), proposed);
        assert_eq!(receiver.state().provider_satisfaction(provider), before);
        // Exporting an unknown provider yields nothing.
        assert!(donor
            .state_mut()
            .export_provider(ProviderId::new(42))
            .is_none());
    }
}
