//! The allocation abstraction shared by SQLB and the baseline methods.
//!
//! A query allocation method receives a query, the candidate set `P_q`
//! (with whatever per-candidate information the mediation process gathered:
//! intentions, utilization, bids…) and a view of the mediator-side
//! satisfaction bookkeeping, and returns the allocation vector — i.e. which
//! `min(q.n, N)` providers get the query (Section 2).

use serde::{Deserialize, Serialize};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

use crate::scoring::RankedProvider;

/// A provider's bid for a query, used by economic allocation methods
/// (the Mariposa-like baseline, Section 6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// Price asked by the provider for performing the query.
    pub price: f64,
    /// Delay (in seconds) the provider estimates for delivering the result.
    pub delay: f64,
}

impl Bid {
    /// Creates a bid.
    pub fn new(price: f64, delay: f64) -> Self {
        Bid {
            price: price.max(0.0),
            delay: delay.max(0.0),
        }
    }
}

/// Everything the mediation process gathered about one candidate provider
/// for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// The candidate provider.
    pub provider: ProviderId,
    /// The consumer's intention `CI_q[p]` for allocating the query to this
    /// provider (raw value — see `crate::intention` for the range
    /// discussion). `0` when the consumer did not answer in time
    /// (indifference).
    pub consumer_intention: f64,
    /// The provider's intention `PI_q[p]` for performing the query. `0`
    /// when the provider did not answer in time (indifference).
    pub provider_intention: f64,
    /// The provider's current utilization `Ut(p)`, as known to the
    /// mediator. Methods that do not use utilization ignore it.
    pub utilization: f64,
    /// The provider's bid, when the method requested one.
    pub bid: Option<Bid>,
}

impl CandidateInfo {
    /// Creates a candidate entry with neutral intentions, zero utilization
    /// and no bid; builder methods fill in the rest.
    pub fn new(provider: ProviderId) -> Self {
        CandidateInfo {
            provider,
            consumer_intention: 0.0,
            provider_intention: 0.0,
            utilization: 0.0,
            bid: None,
        }
    }

    /// Sets the consumer intention.
    pub fn with_consumer_intention(mut self, ci: f64) -> Self {
        self.consumer_intention = ci;
        self
    }

    /// Sets the provider intention.
    pub fn with_provider_intention(mut self, pi: f64) -> Self {
        self.provider_intention = pi;
        self
    }

    /// Sets the utilization.
    pub fn with_utilization(mut self, ut: f64) -> Self {
        self.utilization = ut;
        self
    }

    /// Sets the bid.
    pub fn with_bid(mut self, bid: Bid) -> Self {
        self.bid = Some(bid);
        self
    }
}

/// The outcome of allocating one query: the selected providers (the set
/// `\hat{P}_q`, in rank order) plus the full ranking for diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The query that was allocated.
    pub query: QueryId,
    /// The providers the query is allocated to, best first. Always exactly
    /// `min(q.n, N)` providers for a feasible query.
    pub selected: Vec<ProviderId>,
    /// The complete ranking `R_q` of the candidate set (methods that do not
    /// produce meaningful scores still return the candidates in their
    /// selection order with synthetic scores).
    pub ranking: Vec<RankedProvider>,
}

impl Allocation {
    /// Returns `true` if the given provider was selected.
    pub fn is_selected(&self, provider: ProviderId) -> bool {
        self.selected.contains(&provider)
    }

    /// Number of selected providers.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Whether no provider was selected (only possible for an empty
    /// candidate set).
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// Read-only view of the mediator-side, intention-based satisfaction
/// bookkeeping (what Equation 6 is allowed to use).
pub trait MediatorView {
    /// Intention-based satisfaction `δs(c)` of a consumer, as observed by
    /// the mediator. Unknown consumers report the initial value.
    fn consumer_satisfaction(&self, consumer: ConsumerId) -> f64;

    /// Intention-based satisfaction `δs(p)` of a provider, as observed by
    /// the mediator. Unknown providers report the initial value.
    fn provider_satisfaction(&self, provider: ProviderId) -> f64;
}

/// A neutral view reporting the same satisfaction for everyone. Useful for
/// tests and for methods that ignore satisfaction entirely.
#[derive(Debug, Clone, Copy)]
pub struct UniformView(pub f64);

impl MediatorView for UniformView {
    fn consumer_satisfaction(&self, _consumer: ConsumerId) -> f64 {
        self.0
    }
    fn provider_satisfaction(&self, _provider: ProviderId) -> f64 {
        self.0
    }
}

/// A query allocation method: given a query, its candidate set and the
/// mediator view, decide which providers get the query.
///
/// Implementations must select exactly `min(q.n, N)` providers (Section 2:
/// "queries should be treated if possible") and must only select providers
/// from the candidate set, without duplicates.
pub trait AllocationMethod {
    /// Human-readable name used in experiment output ("SQLB",
    /// "Capacity based", "Mariposa-like", …).
    fn name(&self) -> &'static str;

    /// Allocates `query` among `candidates`.
    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        view: &dyn MediatorView,
    ) -> Allocation;
}

/// Helper shared by allocation methods: keep the `min(q.n, N)` best entries
/// of an already-ranked candidate list and package them as an
/// [`Allocation`].
pub fn take_best(query: &Query, ranking: Vec<RankedProvider>) -> Allocation {
    let n = (query.n as usize).min(ranking.len());
    Allocation {
        query: query.id,
        selected: ranking.iter().take(n).map(|r| r.provider).collect(),
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{QueryClass, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    #[test]
    fn bid_clamps_negative_values() {
        let b = Bid::new(-3.0, -1.0);
        assert_eq!(b.price, 0.0);
        assert_eq!(b.delay, 0.0);
    }

    #[test]
    fn candidate_builder_sets_fields() {
        let c = CandidateInfo::new(ProviderId::new(4))
            .with_consumer_intention(0.3)
            .with_provider_intention(-0.2)
            .with_utilization(0.7)
            .with_bid(Bid::new(10.0, 2.0));
        assert_eq!(c.provider, ProviderId::new(4));
        assert_eq!(c.consumer_intention, 0.3);
        assert_eq!(c.provider_intention, -0.2);
        assert_eq!(c.utilization, 0.7);
        assert_eq!(c.bid.unwrap().price, 10.0);
    }

    #[test]
    fn take_best_respects_query_n() {
        let ranking = vec![
            RankedProvider {
                provider: ProviderId::new(0),
                score: 0.9,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.1,
            },
        ];
        let a = take_best(&query(2), ranking.clone());
        assert_eq!(a.selected, vec![ProviderId::new(0), ProviderId::new(1)]);
        assert_eq!(a.len(), 2);
        assert!(a.is_selected(ProviderId::new(1)));
        assert!(!a.is_selected(ProviderId::new(2)));

        // q.n larger than the candidate set: all candidates are selected.
        let a = take_best(&query(10), ranking.clone());
        assert_eq!(a.len(), 3);

        // Empty candidate set yields an empty allocation.
        let a = take_best(&query(1), vec![]);
        assert!(a.is_empty());
    }

    #[test]
    fn uniform_view_reports_constant() {
        let v = UniformView(0.25);
        assert_eq!(v.consumer_satisfaction(ConsumerId::new(0)), 0.25);
        assert_eq!(v.provider_satisfaction(ProviderId::new(9)), 0.25);
    }
}
