//! The allocation abstraction shared by SQLB and the baseline methods.
//!
//! A query allocation method receives a query, the candidate set `P_q`
//! (with whatever per-candidate information the mediation process gathered:
//! intentions, utilization, bids…) and a view of the mediator-side
//! satisfaction bookkeeping, and returns the allocation vector — i.e. which
//! `min(q.n, N)` providers get the query (Section 2).

use serde::{Deserialize, Serialize};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

use crate::scoring::{rank_candidates_in_place, select_top_k, RankedProvider};

/// A provider's bid for a query, used by economic allocation methods
/// (the Mariposa-like baseline, Section 6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// Price asked by the provider for performing the query.
    pub price: f64,
    /// Delay (in seconds) the provider estimates for delivering the result.
    pub delay: f64,
}

impl Bid {
    /// Creates a bid.
    pub fn new(price: f64, delay: f64) -> Self {
        Bid {
            price: price.max(0.0),
            delay: delay.max(0.0),
        }
    }
}

/// Everything the mediation process gathered about one candidate provider
/// for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateInfo {
    /// The candidate provider.
    pub provider: ProviderId,
    /// The consumer's intention `CI_q[p]` for allocating the query to this
    /// provider (raw value — see `crate::intention` for the range
    /// discussion). `0` when the consumer did not answer in time
    /// (indifference).
    pub consumer_intention: f64,
    /// The provider's intention `PI_q[p]` for performing the query. `0`
    /// when the provider did not answer in time (indifference).
    pub provider_intention: f64,
    /// The provider's current utilization `Ut(p)`, as known to the
    /// mediator. Methods that do not use utilization ignore it.
    pub utilization: f64,
    /// The provider's bid, when the method requested one.
    pub bid: Option<Bid>,
}

impl CandidateInfo {
    /// Creates a candidate entry with neutral intentions, zero utilization
    /// and no bid; builder methods fill in the rest.
    pub fn new(provider: ProviderId) -> Self {
        CandidateInfo {
            provider,
            consumer_intention: 0.0,
            provider_intention: 0.0,
            utilization: 0.0,
            bid: None,
        }
    }

    /// Sets the consumer intention.
    pub fn with_consumer_intention(mut self, ci: f64) -> Self {
        self.consumer_intention = ci;
        self
    }

    /// Sets the provider intention.
    pub fn with_provider_intention(mut self, pi: f64) -> Self {
        self.provider_intention = pi;
        self
    }

    /// Sets the utilization.
    pub fn with_utilization(mut self, ut: f64) -> Self {
        self.utilization = ut;
        self
    }

    /// Sets the bid.
    pub fn with_bid(mut self, bid: Bid) -> Self {
        self.bid = Some(bid);
        self
    }
}

/// The outcome of allocating one query: the selected providers (the set
/// `\hat{P}_q`, in rank order) plus the full ranking for diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The query that was allocated.
    pub query: QueryId,
    /// The providers the query is allocated to, best first. Always exactly
    /// `min(q.n, N)` providers for a feasible query.
    pub selected: Vec<ProviderId>,
    /// The complete ranking `R_q` of the candidate set (methods that do not
    /// produce meaningful scores still return the candidates in their
    /// selection order with synthetic scores).
    ///
    /// Materializing `R_q` per query is a diagnostic, not something the
    /// allocation pipeline needs — the engine disables it on its hot path
    /// via [`AllocationMethod::set_record_ranking`], in which case this
    /// vector is empty.
    pub ranking: Vec<RankedProvider>,
}

impl Allocation {
    /// Returns `true` if the given provider was selected.
    pub fn is_selected(&self, provider: ProviderId) -> bool {
        self.selected.contains(&provider)
    }

    /// Number of selected providers.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Whether no provider was selected (only possible for an empty
    /// candidate set).
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }
}

/// A reusable, id-sorted index over an allocation's selected providers.
///
/// The engine's participant bookkeeping asks "was provider `p` selected?"
/// once per candidate per query; answering that with
/// [`Allocation::is_selected`]'s linear scan makes the loop O(C · n). A
/// `SelectionSet` is rebuilt once per allocation (reusing its buffer, so
/// steady-state arrivals allocate nothing) and answers membership by
/// binary search over ids.
#[derive(Debug, Clone, Default)]
pub struct SelectionSet {
    ids: Vec<ProviderId>,
}

impl SelectionSet {
    /// Creates an empty selection set.
    pub fn new() -> Self {
        SelectionSet::default()
    }

    /// Reindexes the set over the given allocation's selected providers.
    pub fn rebuild(&mut self, allocation: &Allocation) {
        self.ids.clear();
        self.ids.extend_from_slice(&allocation.selected);
        self.ids.sort_unstable();
    }

    /// Whether the provider was selected by the indexed allocation.
    #[inline]
    pub fn contains(&self, provider: ProviderId) -> bool {
        self.ids.binary_search(&provider).is_ok()
    }

    /// Number of selected providers in the indexed allocation.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the indexed allocation selected no provider.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Read-only view of the mediator-side, intention-based satisfaction
/// bookkeeping (what Equation 6 is allowed to use).
pub trait MediatorView {
    /// Intention-based satisfaction `δs(c)` of a consumer, as observed by
    /// the mediator. Unknown consumers report the initial value.
    fn consumer_satisfaction(&self, consumer: ConsumerId) -> f64;

    /// Intention-based satisfaction `δs(p)` of a provider, as observed by
    /// the mediator. Unknown providers report the initial value.
    fn provider_satisfaction(&self, provider: ProviderId) -> f64;

    /// Batch gather for the scoring kernel: appends one provider
    /// satisfaction per candidate (in candidate order) to `out`. The
    /// default is the scalar loop; views that keep a dense satisfaction
    /// column (see `MediatorState`) override this to stream the column
    /// directly instead of paying a per-candidate virtual lookup.
    fn provider_satisfactions_into(&self, candidates: &[CandidateInfo], out: &mut Vec<f64>) {
        out.extend(
            candidates
                .iter()
                .map(|c| self.provider_satisfaction(c.provider)),
        );
    }
}

/// A neutral view reporting the same satisfaction for everyone. Useful for
/// tests and for methods that ignore satisfaction entirely.
#[derive(Debug, Clone, Copy)]
pub struct UniformView(pub f64);

impl MediatorView for UniformView {
    fn consumer_satisfaction(&self, _consumer: ConsumerId) -> f64 {
        self.0
    }
    fn provider_satisfaction(&self, _provider: ProviderId) -> f64 {
        self.0
    }
}

/// A query allocation method: given a query, its candidate set and the
/// mediator view, decide which providers get the query.
///
/// Implementations must select exactly `min(q.n, N)` providers (Section 2:
/// "queries should be treated if possible") and must only select providers
/// from the candidate set, without duplicates.
pub trait AllocationMethod {
    /// Human-readable name used in experiment output ("SQLB",
    /// "Capacity based", "Mariposa-like", …).
    fn name(&self) -> &'static str;

    /// Allocates `query` among `candidates`.
    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        view: &dyn MediatorView,
    ) -> Allocation;

    /// Enables or disables materializing the full ranking `R_q` in every
    /// returned [`Allocation`].
    ///
    /// The ranking is a per-query diagnostic: with it enabled (the
    /// default, so interactive users always get it) every allocation
    /// fully sorts and clones the candidate vector; with it disabled a
    /// method only needs a partial top-`min(q.n, N)` selection and
    /// returns an empty `ranking`. The *selected* providers are identical
    /// either way. The simulation engine disables it on its hot path.
    ///
    /// The default implementation ignores the request (suitable for
    /// methods that never materialize a ranking).
    fn set_record_ranking(&mut self, _record: bool) {}

    /// Sets how many worker threads the method may score one candidate
    /// set with. Implementations that parallelize (see `SqlbAllocator`)
    /// must keep the outcome bit-identical to sequential scoring at any
    /// thread count — scoring is pure per candidate and the reduction is
    /// a deterministic index-ordered merge, so this is a throughput knob,
    /// never a semantics knob. The default ignores the request (suitable
    /// for methods whose decision is not a per-candidate kernel).
    fn set_scoring_threads(&mut self, _threads: usize) {}
}

/// Helper shared by allocation methods: keep the `min(q.n, N)` best entries
/// of an already-ranked candidate list and package them as an
/// [`Allocation`].
pub fn take_best(query: &Query, ranking: Vec<RankedProvider>) -> Allocation {
    let n = (query.n as usize).min(ranking.len());
    Allocation {
        query: query.id,
        selected: ranking.iter().take(n).map(|r| r.provider).collect(),
        ranking,
    }
}

/// Hot-path variant of [`take_best`] for score-ranked methods: takes the
/// *unsorted* scored candidates in a reusable buffer, selects the
/// `min(q.n, N)` best in place (partial selection — identical prefix to a
/// full sort, see [`select_top_k`]), and only materializes/sorts the full
/// ranking when `record_ranking` is set. The buffer is left reusable by
/// the caller for the next query.
pub fn select_best(
    query: &Query,
    scored: &mut [RankedProvider],
    record_ranking: bool,
) -> Allocation {
    let n = (query.n as usize).min(scored.len());
    if record_ranking {
        rank_candidates_in_place(scored);
    } else {
        select_top_k(scored, n);
    }
    Allocation {
        query: query.id,
        selected: scored[..n].iter().map(|r| r.provider).collect(),
        ranking: if record_ranking {
            scored.to_vec()
        } else {
            Vec::new()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{QueryClass, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    #[test]
    fn bid_clamps_negative_values() {
        let b = Bid::new(-3.0, -1.0);
        assert_eq!(b.price, 0.0);
        assert_eq!(b.delay, 0.0);
    }

    #[test]
    fn candidate_builder_sets_fields() {
        let c = CandidateInfo::new(ProviderId::new(4))
            .with_consumer_intention(0.3)
            .with_provider_intention(-0.2)
            .with_utilization(0.7)
            .with_bid(Bid::new(10.0, 2.0));
        assert_eq!(c.provider, ProviderId::new(4));
        assert_eq!(c.consumer_intention, 0.3);
        assert_eq!(c.provider_intention, -0.2);
        assert_eq!(c.utilization, 0.7);
        assert_eq!(c.bid.unwrap().price, 10.0);
    }

    #[test]
    fn take_best_respects_query_n() {
        let ranking = vec![
            RankedProvider {
                provider: ProviderId::new(0),
                score: 0.9,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.1,
            },
        ];
        let a = take_best(&query(2), ranking.clone());
        assert_eq!(a.selected, vec![ProviderId::new(0), ProviderId::new(1)]);
        assert_eq!(a.len(), 2);
        assert!(a.is_selected(ProviderId::new(1)));
        assert!(!a.is_selected(ProviderId::new(2)));

        // q.n larger than the candidate set: all candidates are selected.
        let a = take_best(&query(10), ranking.clone());
        assert_eq!(a.len(), 3);

        // Empty candidate set yields an empty allocation.
        let a = take_best(&query(1), vec![]);
        assert!(a.is_empty());
    }

    #[test]
    fn select_best_matches_take_best_selection() {
        let scored = vec![
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.1,
            },
            RankedProvider {
                provider: ProviderId::new(0),
                score: 0.9,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: 0.5,
            },
        ];
        for n in [1u32, 2, 10] {
            let reference = take_best(&query(n), crate::scoring::rank_candidates(scored.clone()));
            let mut buffer = scored.clone();
            let lean = select_best(&query(n), &mut buffer, false);
            assert_eq!(lean.selected, reference.selected);
            assert!(lean.ranking.is_empty(), "lean path skips the ranking");
            let mut buffer = scored.clone();
            let full = select_best(&query(n), &mut buffer, true);
            assert_eq!(full.selected, reference.selected);
            assert_eq!(full.ranking, reference.ranking);
        }
    }

    #[test]
    fn selection_set_answers_membership() {
        let allocation = Allocation {
            query: QueryId::new(1),
            selected: vec![ProviderId::new(7), ProviderId::new(2), ProviderId::new(5)],
            ranking: Vec::new(),
        };
        let mut set = SelectionSet::new();
        set.rebuild(&allocation);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        for p in 0..10u32 {
            assert_eq!(
                set.contains(ProviderId::new(p)),
                allocation.is_selected(ProviderId::new(p)),
                "SelectionSet disagrees with is_selected for p{p}"
            );
        }
        // Rebuilding over another allocation reuses the buffer.
        let empty = Allocation {
            query: QueryId::new(2),
            selected: vec![],
            ranking: Vec::new(),
        };
        set.rebuild(&empty);
        assert!(set.is_empty());
        assert!(!set.contains(ProviderId::new(7)));
    }

    #[test]
    fn uniform_view_reports_constant() {
        let v = UniformView(0.25);
        assert_eq!(v.consumer_satisfaction(ConsumerId::new(0)), 0.25);
        assert_eq!(v.provider_satisfaction(ProviderId::new(9)), 0.25);
    }
}
