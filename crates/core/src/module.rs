//! The query allocation module (Algorithm 1), synchronous form.
//!
//! Algorithm 1 of the paper gathers the consumer's intentions towards every
//! candidate provider and every candidate provider's intention towards the
//! query (in parallel, with a timeout), scores and ranks the candidates,
//! allocates the query to the `q.n` best-ranked providers and notifies the
//! others.
//!
//! [`QueryAllocationModule`] is the deterministic, in-process realization of
//! that algorithm used by the simulator; the `sqlb-mediation` crate provides
//! the concurrent (fork / waituntil / timeout) realization on top of
//! channels. Both share the [`IntentionSource`] abstraction: the thing that
//! answers intention requests (live agents, simulated agents, or canned
//! values in tests). A source may decline to answer (modelling a timeout),
//! in which case the module records an indifferent intention of `0`.

use sqlb_types::{ProviderId, Query};

use crate::allocation::{Allocation, AllocationMethod, Bid, CandidateInfo};
use crate::mediator_state::MediatorState;

/// Answers the mediator's intention (and bid) requests during one query
/// allocation.
pub trait IntentionSource {
    /// The consumer `query.consumer`'s intention for allocating `query` to
    /// `provider` (`ci_c(q, p)`, Definition 7). `None` models a consumer
    /// that did not answer before the mediation timeout.
    fn consumer_intention(&mut self, query: &Query, provider: ProviderId) -> Option<f64>;

    /// The provider's intention for performing `query` (`pi_p(q)`,
    /// Definition 8). `None` models a provider that did not answer before
    /// the mediation timeout.
    fn provider_intention(&mut self, query: &Query, provider: ProviderId) -> Option<f64>;

    /// The provider's utilization as known to the mediator. Methods that do
    /// not use utilization (SQLB proper) ignore this; the Capacity-based
    /// baseline relies on it.
    fn utilization(&self, provider: ProviderId) -> f64;

    /// The provider's bid for the query, if the allocation method runs an
    /// economic protocol (Mariposa-like baseline). The default is to not
    /// bid.
    fn bid(&mut self, _query: &Query, _provider: ProviderId) -> Option<Bid> {
        None
    }
}

/// The mediator's query allocation module: pairs an [`AllocationMethod`]
/// with the mediator-side satisfaction bookkeeping and drives Algorithm 1
/// for each incoming query.
#[derive(Debug)]
pub struct QueryAllocationModule<M> {
    method: M,
    state: MediatorState,
}

impl<M: AllocationMethod> QueryAllocationModule<M> {
    /// Creates a module around an allocation method, with the paper-default
    /// mediator state configuration.
    pub fn new(method: M) -> Self {
        QueryAllocationModule {
            method,
            state: MediatorState::paper_default(),
        }
    }

    /// Creates a module with an explicit mediator state.
    pub fn with_state(method: M, state: MediatorState) -> Self {
        QueryAllocationModule { method, state }
    }

    /// The allocation method's display name.
    pub fn method_name(&self) -> &'static str {
        self.method.name()
    }

    /// Read access to the mediator-side satisfaction state.
    pub fn state(&self) -> &MediatorState {
        &self.state
    }

    /// Mutable access to the mediator-side satisfaction state (used by the
    /// simulator to evict departed participants).
    pub fn state_mut(&mut self) -> &mut MediatorState {
        &mut self.state
    }

    /// Mutable access to the allocation method.
    pub fn method_mut(&mut self) -> &mut M {
        &mut self.method
    }

    /// Runs Algorithm 1 for one query.
    ///
    /// 1. asks `source` for the consumer's intention towards every
    ///    candidate and each candidate's intention towards the query
    ///    (lines 2–5; unanswered requests become indifferent `0` values);
    /// 2. lets the allocation method score/rank the candidates and pick the
    ///    `min(q.n, N)` best (lines 6–9);
    /// 3. records the outcome in the mediator-side satisfaction state
    ///    (the "mediation result" sent to all candidates, line 10).
    pub fn allocate(
        &mut self,
        query: &Query,
        candidates: &[ProviderId],
        source: &mut dyn IntentionSource,
    ) -> Allocation {
        let infos = gather_candidate_info(query, candidates, source);
        let allocation = self.method.allocate(query, &infos, &self.state);
        debug_assert!(
            allocation.selected.len() == query.n.min(infos.len() as u32) as usize,
            "allocation methods must select exactly min(q.n, N) providers"
        );
        self.state.record_allocation(query, &infos, &allocation);
        allocation
    }
}

/// Gathers the per-candidate information (lines 2–5 of Algorithm 1) from an
/// intention source. Exposed so the concurrent mediation runtime can share
/// the same representation.
pub fn gather_candidate_info(
    query: &Query,
    candidates: &[ProviderId],
    source: &mut dyn IntentionSource,
) -> Vec<CandidateInfo> {
    candidates
        .iter()
        .map(|&p| {
            let ci = source.consumer_intention(query, p).unwrap_or(0.0);
            let pi = source.provider_intention(query, p).unwrap_or(0.0);
            let mut info = CandidateInfo::new(p)
                .with_consumer_intention(ci)
                .with_provider_intention(pi)
                .with_utilization(source.utilization(p));
            if let Some(bid) = source.bid(query, p) {
                info = info.with_bid(bid);
            }
            info
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::MediatorView;
    use crate::sqlb::SqlbAllocator;
    use sqlb_types::{ConsumerId, QueryClass, QueryId, SimTime};
    use std::collections::BTreeMap;

    /// A canned intention source for tests.
    struct Canned {
        consumer: BTreeMap<u32, f64>,
        provider: BTreeMap<u32, f64>,
        silent_providers: Vec<u32>,
    }

    impl IntentionSource for Canned {
        fn consumer_intention(&mut self, _q: &Query, p: ProviderId) -> Option<f64> {
            self.consumer.get(&p.raw()).copied()
        }
        fn provider_intention(&mut self, _q: &Query, p: ProviderId) -> Option<f64> {
            if self.silent_providers.contains(&p.raw()) {
                None
            } else {
                self.provider.get(&p.raw()).copied()
            }
        }
        fn utilization(&self, _p: ProviderId) -> f64 {
            0.0
        }
    }

    fn query(id: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    #[test]
    fn module_runs_algorithm_1_end_to_end() {
        let mut module = QueryAllocationModule::new(SqlbAllocator::new());
        assert_eq!(module.method_name(), "SQLB");
        let mut source = Canned {
            consumer: [(0, 0.9), (1, -0.5), (2, 0.4)].into_iter().collect(),
            provider: [(0, 0.8), (1, 0.9), (2, -0.3)].into_iter().collect(),
            silent_providers: vec![],
        };
        let candidates: Vec<ProviderId> = (0..3).map(ProviderId::new).collect();
        let alloc = module.allocate(&query(1), &candidates, &mut source);
        assert_eq!(alloc.selected, vec![ProviderId::new(0)]);
        assert_eq!(module.state().allocations(), 1);
        // The consumer got a provider it likes → satisfaction above 0.5.
        assert!(module.state().consumer_satisfaction(ConsumerId::new(0)) > 0.5);
    }

    #[test]
    fn silent_participants_default_to_indifference() {
        let mut module = QueryAllocationModule::new(SqlbAllocator::new());
        let mut source = Canned {
            consumer: [(0, 0.9), (1, 0.9)].into_iter().collect(),
            provider: [(0, -0.9), (1, 0.9)].into_iter().collect(),
            // Provider 1 never answers: its intention is read as 0, so the
            // positive-intention provider is... p0 is negative, p1 silent
            // (0). Score for p1 falls in the negative branch too (PI = 0),
            // but its magnitude is smaller, so p1 still ranks first.
            silent_providers: vec![1],
        };
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = gather_candidate_info(&query(2), &candidates, &mut source);
        assert_eq!(infos[1].provider_intention, 0.0);
        let alloc = module.allocate(&query(2), &candidates, &mut source);
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn state_accumulates_over_multiple_allocations() {
        let mut module = QueryAllocationModule::new(SqlbAllocator::new());
        // Both providers want the query and the consumer is indifferent
        // between them: the first allocation goes to p0 (deterministic
        // tie-break), after which Equation 6 favours the less satisfied
        // provider, so queries alternate instead of starving p1.
        let mut source = Canned {
            consumer: [(0, 0.5), (1, 0.5)].into_iter().collect(),
            provider: [(0, 0.7), (1, 0.7)].into_iter().collect(),
            silent_providers: vec![],
        };
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let first = module.allocate(&query(0), &candidates, &mut source);
        assert_eq!(first.selected, vec![ProviderId::new(0)]);
        let mut wins = [0u32, 0u32];
        for i in 1..200 {
            let alloc = module.allocate(&query(i), &candidates, &mut source);
            wins[alloc.selected[0].index()] += 1;
        }
        assert_eq!(module.state().allocations(), 200);
        assert!(
            wins[0] > 0 && wins[1] > 0,
            "satisfaction balancing should spread queries across both providers, got {wins:?}"
        );
    }

    #[test]
    fn with_state_and_accessors() {
        let state = MediatorState::paper_default();
        let mut module = QueryAllocationModule::with_state(SqlbAllocator::new(), state);
        module.state_mut().register_provider(ProviderId::new(9));
        assert_eq!(module.state().providers().count(), 1);
        let _ = module.method_mut();
    }
}
