//! Scoring and ranking of providers (Section 5.3).

use serde::{Deserialize, Serialize};
use sqlb_types::ProviderId;

use crate::intention::IntentionParams;

/// A provider together with its score for a given query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedProvider {
    /// The provider being ranked.
    pub provider: ProviderId,
    /// Its score `scr_q(p)` (Definition 9).
    pub score: f64,
}

/// The consumer/provider trade-off weight `ω` (Equation 6):
///
/// ```text
/// ω = ((δs(c) − δs(p)) + 1) / 2
/// ```
///
/// `δs(c)` and `δs(p)` are the *intention-based* satisfactions that the
/// query allocation module can observe ("Conversely to provider's
/// intention, the query allocation module has not access to private
/// information. Thus, the satisfaction it uses has to be based on the
/// intentions."). The more satisfied the consumer is relative to the
/// provider, the more weight the provider's intention receives.
pub fn omega(consumer_satisfaction: f64, provider_satisfaction: f64) -> f64 {
    let c = consumer_satisfaction.clamp(0.0, 1.0);
    let p = provider_satisfaction.clamp(0.0, 1.0);
    ((c - p) + 1.0) / 2.0
}

/// Provider score `scr_q(p)` (Definition 9): the balance between the
/// provider's intention `PI` to perform the query and the consumer's
/// intention `CI` to allocate the query to it.
///
/// ```text
/// scr =  PI^ω · CI^(1-ω)                                 if PI > 0 ∧ CI > 0
/// scr = -[(1 - PI + ε)^ω · (1 - CI + ε)^(1-ω)]           otherwise
/// ```
///
/// Intentions are accepted as raw `f64` values because Definitions 7–8 with
/// `ε = 1` can produce magnitudes above 1 (see `crate::intention`).
pub fn provider_score(
    provider_intention: f64,
    consumer_intention: f64,
    omega: f64,
    params: IntentionParams,
) -> f64 {
    let omega = omega.clamp(0.0, 1.0);
    let eps = params.epsilon;
    if provider_intention > 0.0 && consumer_intention > 0.0 {
        provider_intention.powf(omega) * consumer_intention.powf(1.0 - omega)
    } else {
        -((1.0 - provider_intention + eps).powf(omega)
            * (1.0 - consumer_intention + eps).powf(1.0 - omega))
    }
}

/// Ranks candidates from best to worst score (the vector `R_q` of
/// Section 5.3). Ties are broken by provider identifier so the ranking is
/// deterministic.
pub fn rank_candidates(mut candidates: Vec<RankedProvider>) -> Vec<RankedProvider> {
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.provider.cmp(&b.provider))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: IntentionParams = IntentionParams { epsilon: 1.0 };

    #[test]
    fn omega_balances_satisfactions() {
        // Equally satisfied participants → both intentions weigh the same.
        assert!((omega(0.5, 0.5) - 0.5).abs() < 1e-12);
        // Fully satisfied consumer, unsatisfied provider → the provider's
        // intention dominates (ω = 1).
        assert!((omega(1.0, 0.0) - 1.0).abs() < 1e-12);
        // Fully satisfied provider, unsatisfied consumer → the consumer's
        // intention dominates (ω = 0).
        assert!((omega(0.0, 1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn omega_clamps_inputs() {
        assert!((omega(2.0, -1.0) - 1.0).abs() < 1e-12);
        assert!((omega(-5.0, 7.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn score_positive_branch_is_weighted_geometric_mean() {
        let s = provider_score(0.64, 0.25, 0.5, P);
        assert!((s - (0.64f64 * 0.25).sqrt()).abs() < 1e-12);
        // ω = 1: only the provider's intention matters.
        let s = provider_score(0.64, 0.25, 1.0, P);
        assert!((s - 0.64).abs() < 1e-12);
        // ω = 0: only the consumer's intention matters.
        let s = provider_score(0.64, 0.25, 0.0, P);
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn score_negative_when_either_intention_non_positive() {
        assert!(provider_score(-0.5, 0.9, 0.5, P) < 0.0);
        assert!(provider_score(0.9, -0.5, 0.5, P) < 0.0);
        assert!(provider_score(0.0, 0.9, 0.5, P) < 0.0);
        assert!(provider_score(-2.5, -1.0, 0.3, P) < 0.0);
    }

    #[test]
    fn score_orders_candidates_sensibly() {
        // Table 1 intuition: a provider wanted by both sides should beat a
        // provider wanted by only one side, which should beat a provider
        // wanted by neither.
        let both = provider_score(0.8, 0.8, 0.5, P);
        let provider_only = provider_score(0.8, -0.3, 0.5, P);
        let consumer_only = provider_score(-0.3, 0.8, 0.5, P);
        let neither = provider_score(-0.3, -0.3, 0.5, P);
        assert!(both > provider_only);
        assert!(both > consumer_only);
        assert!(provider_only > neither);
        assert!(consumer_only > neither);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let ranked = rank_candidates(vec![
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(0),
                score: 0.9,
            },
            RankedProvider {
                provider: ProviderId::new(3),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: -0.4,
            },
        ]);
        let order: Vec<u32> = ranked.iter().map(|r| r.provider.raw()).collect();
        assert_eq!(order, vec![0, 2, 3, 1]);
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn ranking_of_empty_set_is_empty() {
        assert!(rank_candidates(vec![]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_omega_in_unit_interval(c in 0.0f64..=1.0, p in 0.0f64..=1.0) {
            let w = omega(c, p);
            prop_assert!((0.0..=1.0).contains(&w));
        }

        #[test]
        fn prop_score_sign_matches_branches(
            pi in -2.5f64..=1.0,
            ci in -2.5f64..=1.0,
            w in 0.0f64..=1.0,
        ) {
            let s = provider_score(pi, ci, w, P);
            prop_assert!(s.is_finite());
            if pi > 0.0 && ci > 0.0 {
                prop_assert!(s >= 0.0);
            } else {
                prop_assert!(s < 0.0);
            }
        }

        #[test]
        fn prop_score_monotone_in_provider_intention_positive_branch(
            ci in 0.05f64..=1.0,
            w in 0.05f64..=1.0,
            pi in 0.05f64..=0.95,
        ) {
            let low = provider_score(pi, ci, w, P);
            let high = provider_score(pi + 0.05, ci, w, P);
            prop_assert!(high >= low - 1e-12);
        }

        #[test]
        fn prop_ranking_is_a_permutation(
            scores in proptest::collection::vec(-2.0f64..=1.0, 0..50),
        ) {
            let candidates: Vec<RankedProvider> = scores
                .iter()
                .enumerate()
                .map(|(i, &score)| RankedProvider {
                    provider: ProviderId::new(i as u32),
                    score,
                })
                .collect();
            let ranked = rank_candidates(candidates.clone());
            prop_assert_eq!(ranked.len(), candidates.len());
            let mut ids: Vec<u32> = ranked.iter().map(|r| r.provider.raw()).collect();
            ids.sort_unstable();
            let expected: Vec<u32> = (0..scores.len() as u32).collect();
            prop_assert_eq!(ids, expected);
            prop_assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        }
    }
}
