//! Scoring and ranking of providers (Section 5.3).
//!
//! Besides the scalar Definition 9 evaluation ([`provider_score`]), this
//! module owns the *batch* scoring kernel the allocation hot path runs
//! over a shard's candidate slice: [`score_batch`] streams the columnar
//! `(PI, CI, ω)` inputs into a reusable score buffer, and
//! [`best_candidate_lazy`] answers the paper's `q.n = 1` argmax with a
//! certified-upper-bound evaluation that skips the `powf`-heavy exact
//! score for provably losing candidates while staying bit-identical to
//! scoring everything.

use std::cmp::Ordering;

use serde::{Deserialize, Serialize};
use sqlb_types::ProviderId;

use crate::allocation::CandidateInfo;
use crate::intention::{powf_fast, IntentionParams};

/// A provider together with its score for a given query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedProvider {
    /// The provider being ranked.
    pub provider: ProviderId,
    /// Its score `scr_q(p)` (Definition 9).
    pub score: f64,
}

/// The consumer/provider trade-off weight `ω` (Equation 6):
///
/// ```text
/// ω = ((δs(c) − δs(p)) + 1) / 2
/// ```
///
/// `δs(c)` and `δs(p)` are the *intention-based* satisfactions that the
/// query allocation module can observe ("Conversely to provider's
/// intention, the query allocation module has not access to private
/// information. Thus, the satisfaction it uses has to be based on the
/// intentions."). The more satisfied the consumer is relative to the
/// provider, the more weight the provider's intention receives.
pub fn omega(consumer_satisfaction: f64, provider_satisfaction: f64) -> f64 {
    let c = consumer_satisfaction.clamp(0.0, 1.0);
    let p = provider_satisfaction.clamp(0.0, 1.0);
    ((c - p) + 1.0) / 2.0
}

/// Provider score `scr_q(p)` (Definition 9): the balance between the
/// provider's intention `PI` to perform the query and the consumer's
/// intention `CI` to allocate the query to it.
///
/// ```text
/// scr =  PI^ω · CI^(1-ω)                                 if PI > 0 ∧ CI > 0
/// scr = -[(1 - PI + ε)^ω · (1 - CI + ε)^(1-ω)]           otherwise
/// ```
///
/// Intentions are accepted as raw `f64` values because Definitions 7–8 with
/// `ε = 1` can produce magnitudes above 1 (see `crate::intention`).
pub fn provider_score(
    provider_intention: f64,
    consumer_intention: f64,
    omega: f64,
    params: IntentionParams,
) -> f64 {
    let omega = omega.clamp(0.0, 1.0);
    let eps = params.epsilon;
    if provider_intention > 0.0 && consumer_intention > 0.0 {
        powf_fast(provider_intention, omega) * powf_fast(consumer_intention, 1.0 - omega)
    } else {
        -(powf_fast(1.0 - provider_intention + eps, omega)
            * powf_fast(1.0 - consumer_intention + eps, 1.0 - omega))
    }
}

/// Relative safety margin applied to [`score_upper_bound`] so floating-
/// point rounding of the bound arithmetic can never place the bound below
/// the exact score. The analytic inequalities hold over the reals; the
/// computed bound and the computed score each carry only a few ulp
/// (≲ 1e-15 relative) of rounding, so a 1e-9 margin dominates by six
/// orders of magnitude.
const UB_SAFETY: f64 = 1e-9;

/// A certified upper bound on [`provider_score`]: cheap to evaluate (no
/// `powf`) and never below the exact score for the same inputs.
///
/// * Positive branch (`PI > 0 ∧ CI > 0`): the score is the `ω`-weighted
///   geometric mean of `PI` and `CI`, which the weighted AM–GM inequality
///   bounds by the `ω`-weighted arithmetic mean `ω·PI + (1-ω)·CI`.
/// * Negative branch: the score is `-(A^ω · B^(1-ω))` with
///   `A = 1 - PI + ε` and `B = 1 - CI + ε`, and for positive `A`, `B` the
///   weighted geometric mean is at least `min(A, B)` — so the score is at
///   most `-min(A, B)`. Non-positive `A` or `B` (impossible for genuine
///   Definition 7/8 intentions, whose positive parts never exceed 1)
///   yields `+∞`, i.e. "no pruning, evaluate exactly".
///
/// Both bounds are inflated by a relative safety margin (`UB_SAFETY`,
/// 1e-9 — six orders of magnitude above the few-ulp rounding of the
/// bound arithmetic) to absorb rounding, so
/// `score_upper_bound(...) ≥ provider_score(...)` holds for every input
/// the pruning in [`best_candidate_lazy`] relies on.
pub fn score_upper_bound(
    provider_intention: f64,
    consumer_intention: f64,
    omega: f64,
    params: IntentionParams,
) -> f64 {
    let w = omega.clamp(0.0, 1.0);
    if provider_intention > 0.0 && consumer_intention > 0.0 {
        (w * provider_intention + (1.0 - w) * consumer_intention) * (1.0 + UB_SAFETY)
    } else {
        let a = 1.0 - provider_intention + params.epsilon;
        let b = 1.0 - consumer_intention + params.epsilon;
        let m = a.min(b);
        if m <= 0.0 {
            return f64::INFINITY;
        }
        -(m * (1.0 - UB_SAFETY))
    }
}

/// The batch Definition 9 kernel: scores every candidate of a slice
/// against the parallel `ω` column, appending one [`RankedProvider`] per
/// candidate to `out` (in candidate order). This is the full-evaluation
/// path of the allocation kernel — [`best_candidate_lazy`] is the pruned
/// `q.n = 1` variant with identical selection semantics.
///
/// `omegas` must hold exactly one weight per candidate.
pub fn score_batch(
    candidates: &[CandidateInfo],
    omegas: &[f64],
    params: IntentionParams,
    out: &mut Vec<RankedProvider>,
) {
    debug_assert_eq!(candidates.len(), omegas.len());
    out.extend(
        candidates
            .iter()
            .zip(omegas.iter())
            .map(|(c, &w)| RankedProvider {
                provider: c.provider,
                score: provider_score(c.provider_intention, c.consumer_intention, w, params),
            }),
    );
}

/// The `q.n = 1` argmax of the scoring kernel, evaluated lazily: the
/// exact (two-`powf`) score is only computed for candidates whose
/// certified upper bound could still beat the best exact score seen, so
/// the typical arrival pays a handful of `powf` calls instead of two per
/// candidate.
///
/// Returns exactly the entry a full [`score_batch`] followed by
/// [`select_top_k`]`(.., 1)` would put first — same provider, same score
/// bits: a candidate is only skipped when its bound is *strictly* below
/// the running best score, which rules out both wins and score ties (and
/// ties are the only place the ascending-id tie-break could matter).
///
/// `ub_scratch` is a reusable buffer for the bound column.
pub fn best_candidate_lazy(
    candidates: &[CandidateInfo],
    omegas: &[f64],
    params: IntentionParams,
    ub_scratch: &mut Vec<f64>,
) -> Option<RankedProvider> {
    debug_assert_eq!(candidates.len(), omegas.len());
    if candidates.is_empty() {
        return None;
    }
    // Pass 1: the bound column, and the most promising candidate (highest
    // bound, ties by lowest index so the scan order is deterministic).
    ub_scratch.clear();
    let mut lead = 0usize;
    let mut lead_ub = f64::NEG_INFINITY;
    for (i, c) in candidates.iter().enumerate() {
        let ub = score_upper_bound(
            c.provider_intention,
            c.consumer_intention,
            omegas[i],
            params,
        );
        ub_scratch.push(ub);
        if ub > lead_ub {
            lead_ub = ub;
            lead = i;
        }
    }
    // Seed the running best with the exact score of the leader — starting
    // from the highest bound maximizes how much of the column pass 2 can
    // prune.
    let c = &candidates[lead];
    let mut best = RankedProvider {
        provider: c.provider,
        score: provider_score(
            c.provider_intention,
            c.consumer_intention,
            omegas[lead],
            params,
        ),
    };
    // Pass 2: only candidates whose certified bound reaches the running
    // best score are evaluated exactly; the best score never decreases, so
    // every skipped candidate provably loses to the final winner.
    for (i, c) in candidates.iter().enumerate() {
        if i == lead || ub_scratch[i] < best.score {
            continue;
        }
        let entry = RankedProvider {
            provider: c.provider,
            score: provider_score(
                c.provider_intention,
                c.consumer_intention,
                omegas[i],
                params,
            ),
        };
        if ranking_order(&entry, &best) == Ordering::Less {
            best = entry;
        }
    }
    Some(best)
}

/// The deterministic ranking order: descending score, ties broken by
/// ascending provider identifier. Candidate sets never contain a provider
/// twice, so this is a *strict* total order — any two distinct entries
/// compare unequal, which is what makes partial selection provably
/// identical to a full sort (the top-`k` set is uniquely determined).
#[inline]
fn ranking_order(a: &RankedProvider, b: &RankedProvider) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.provider.cmp(&b.provider))
}

/// Sorts a candidate slice into ranking order in place (the vector `R_q`
/// of Section 5.3), without reallocating.
pub fn rank_candidates_in_place(candidates: &mut [RankedProvider]) {
    candidates.sort_unstable_by(ranking_order);
}

/// Puts the `min(k, len)` best candidates — by the same deterministic
/// order as [`rank_candidates`] — in ranking order at the front of the
/// slice. The rest of the slice is left in unspecified order.
///
/// Because the ranking order is a strict total order over distinct
/// providers, the selected prefix is bit-identical to
/// `rank_candidates(...)[..k]`; the allocation hot path uses this to
/// replace the O(N log N) full sort with an O(N) selection for the
/// paper's `q.n = 1` queries (and O(N + k log k) in general).
pub fn select_top_k(candidates: &mut [RankedProvider], k: usize) {
    let len = candidates.len();
    if k == 0 || len <= 1 {
        return;
    }
    if k >= len {
        candidates.sort_unstable_by(ranking_order);
        return;
    }
    if k == 1 {
        // Selection of the single best entry: one scan, no partition.
        let mut best = 0;
        for i in 1..len {
            if ranking_order(&candidates[i], &candidates[best]) == Ordering::Less {
                best = i;
            }
        }
        candidates.swap(0, best);
        return;
    }
    candidates.select_nth_unstable_by(k - 1, ranking_order);
    candidates[..k].sort_unstable_by(ranking_order);
}

/// Ranks candidates from best to worst score (the vector `R_q` of
/// Section 5.3). Ties are broken by provider identifier so the ranking is
/// deterministic.
pub fn rank_candidates(mut candidates: Vec<RankedProvider>) -> Vec<RankedProvider> {
    rank_candidates_in_place(&mut candidates);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: IntentionParams = IntentionParams { epsilon: 1.0 };

    #[test]
    fn omega_balances_satisfactions() {
        // Equally satisfied participants → both intentions weigh the same.
        assert!((omega(0.5, 0.5) - 0.5).abs() < 1e-12);
        // Fully satisfied consumer, unsatisfied provider → the provider's
        // intention dominates (ω = 1).
        assert!((omega(1.0, 0.0) - 1.0).abs() < 1e-12);
        // Fully satisfied provider, unsatisfied consumer → the consumer's
        // intention dominates (ω = 0).
        assert!((omega(0.0, 1.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn omega_clamps_inputs() {
        assert!((omega(2.0, -1.0) - 1.0).abs() < 1e-12);
        assert!((omega(-5.0, 7.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn score_positive_branch_is_weighted_geometric_mean() {
        let s = provider_score(0.64, 0.25, 0.5, P);
        assert!((s - (0.64f64 * 0.25).sqrt()).abs() < 1e-12);
        // ω = 1: only the provider's intention matters.
        let s = provider_score(0.64, 0.25, 1.0, P);
        assert!((s - 0.64).abs() < 1e-12);
        // ω = 0: only the consumer's intention matters.
        let s = provider_score(0.64, 0.25, 0.0, P);
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn score_negative_when_either_intention_non_positive() {
        assert!(provider_score(-0.5, 0.9, 0.5, P) < 0.0);
        assert!(provider_score(0.9, -0.5, 0.5, P) < 0.0);
        assert!(provider_score(0.0, 0.9, 0.5, P) < 0.0);
        assert!(provider_score(-2.5, -1.0, 0.3, P) < 0.0);
    }

    #[test]
    fn score_orders_candidates_sensibly() {
        // Table 1 intuition: a provider wanted by both sides should beat a
        // provider wanted by only one side, which should beat a provider
        // wanted by neither.
        let both = provider_score(0.8, 0.8, 0.5, P);
        let provider_only = provider_score(0.8, -0.3, 0.5, P);
        let consumer_only = provider_score(-0.3, 0.8, 0.5, P);
        let neither = provider_score(-0.3, -0.3, 0.5, P);
        assert!(both > provider_only);
        assert!(both > consumer_only);
        assert!(provider_only > neither);
        assert!(consumer_only > neither);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let ranked = rank_candidates(vec![
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(0),
                score: 0.9,
            },
            RankedProvider {
                provider: ProviderId::new(3),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: -0.4,
            },
        ]);
        let order: Vec<u32> = ranked.iter().map(|r| r.provider.raw()).collect();
        assert_eq!(order, vec![0, 2, 3, 1]);
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn ranking_of_empty_set_is_empty() {
        assert!(rank_candidates(vec![]).is_empty());
    }

    #[test]
    fn top_k_prefix_equals_full_sort_on_ties() {
        // Tied scores exercise the id tie-break through the selection
        // path.
        let base = vec![
            RankedProvider {
                provider: ProviderId::new(3),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(1),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(2),
                score: 0.5,
            },
            RankedProvider {
                provider: ProviderId::new(0),
                score: -0.5,
            },
        ];
        let sorted = rank_candidates(base.clone());
        for k in 0..=base.len() + 1 {
            let mut selected = base.clone();
            select_top_k(&mut selected, k);
            let prefix = k.min(base.len());
            assert_eq!(&selected[..prefix], &sorted[..prefix], "k = {k}");
        }
    }

    #[test]
    fn provider_score_fast_omegas_match_general_powf() {
        // The fast-path contract: ω ∈ {0, 1} (and, through `1 - ω`, their
        // mirror exponents) plus arbitrary ω = 0.5 must return the same
        // bits as the bare-powf formulation of Definition 9.
        let mut pi = -2.4;
        while pi <= 1.0 {
            let mut ci = -2.4;
            while ci <= 1.0 {
                for w in [0.0, 1.0, 0.5] {
                    let fast = provider_score(pi, ci, w, P);
                    let general = {
                        // Reimplementation of Definition 9 with bare powf.
                        if pi > 0.0 && ci > 0.0 {
                            pi.powf(w) * ci.powf(1.0 - w)
                        } else {
                            -((1.0 - pi + P.epsilon).powf(w) * (1.0 - ci + P.epsilon).powf(1.0 - w))
                        }
                    };
                    assert_eq!(
                        fast.to_bits(),
                        general.to_bits(),
                        "provider_score({pi}, {ci}, {w}) diverged"
                    );
                }
                ci += 0.0625;
            }
            pi += 0.0625;
        }
    }

    fn kernel_candidates(pis: &[f64], cis: &[f64]) -> Vec<CandidateInfo> {
        pis.iter()
            .zip(cis.iter())
            .enumerate()
            .map(|(i, (&pi, &ci))| {
                CandidateInfo::new(ProviderId::new(i as u32))
                    .with_provider_intention(pi)
                    .with_consumer_intention(ci)
            })
            .collect()
    }

    #[test]
    fn lazy_argmax_handles_empty_and_singleton_sets() {
        let mut scratch = Vec::new();
        assert_eq!(best_candidate_lazy(&[], &[], P, &mut scratch), None);
        let cands = kernel_candidates(&[0.4], &[0.6]);
        let best = best_candidate_lazy(&cands, &[0.5], P, &mut scratch).unwrap();
        assert_eq!(best.provider, ProviderId::new(0));
        assert_eq!(
            best.score.to_bits(),
            provider_score(0.4, 0.6, 0.5, P).to_bits()
        );
    }

    proptest! {
        #[test]
        fn prop_upper_bound_certifies_the_exact_score(
            pi in -2.5f64..=1.0,
            ci in -2.5f64..=1.0,
            w in 0.0f64..=1.0,
        ) {
            let exact = provider_score(pi, ci, w, P);
            let bound = score_upper_bound(pi, ci, w, P);
            prop_assert!(
                bound >= exact,
                "bound {bound} below exact score {exact} for ({pi}, {ci}, {w})"
            );
        }

        #[test]
        fn prop_lazy_argmax_is_bit_identical_to_full_scoring(
            inputs in proptest::collection::vec(
                (-2.5f64..=1.0, -2.5f64..=1.0, 0.0f64..=1.0),
                1..80,
            ),
            duplicate_scores in proptest::bool::ANY,
        ) {
            let mut pis: Vec<f64> = inputs.iter().map(|(pi, _, _)| *pi).collect();
            let mut cis: Vec<f64> = inputs.iter().map(|(_, ci, _)| *ci).collect();
            let mut omegas: Vec<f64> = inputs.iter().map(|(_, _, w)| *w).collect();
            if duplicate_scores {
                // Force exact score ties so the ascending-id tie-break is
                // exercised through the pruned path.
                for i in 1..cis.len() {
                    pis[i] = pis[0];
                    cis[i] = cis[0];
                    omegas[i] = omegas[0];
                }
            }
            let candidates = kernel_candidates(&pis, &cis);
            let mut full = Vec::new();
            score_batch(&candidates, &omegas, P, &mut full);
            prop_assert_eq!(full.len(), candidates.len());
            select_top_k(&mut full, 1);
            let mut scratch = Vec::new();
            let lazy = best_candidate_lazy(&candidates, &omegas, P, &mut scratch).unwrap();
            prop_assert_eq!(lazy.provider, full[0].provider);
            prop_assert_eq!(lazy.score.to_bits(), full[0].score.to_bits());
        }

        #[test]
        fn prop_omega_in_unit_interval(c in 0.0f64..=1.0, p in 0.0f64..=1.0) {
            let w = omega(c, p);
            prop_assert!((0.0..=1.0).contains(&w));
        }

        #[test]
        fn prop_score_sign_matches_branches(
            pi in -2.5f64..=1.0,
            ci in -2.5f64..=1.0,
            w in 0.0f64..=1.0,
        ) {
            let s = provider_score(pi, ci, w, P);
            prop_assert!(s.is_finite());
            if pi > 0.0 && ci > 0.0 {
                prop_assert!(s >= 0.0);
            } else {
                prop_assert!(s < 0.0);
            }
        }

        #[test]
        fn prop_score_monotone_in_provider_intention_positive_branch(
            ci in 0.05f64..=1.0,
            w in 0.05f64..=1.0,
            pi in 0.05f64..=0.95,
        ) {
            let low = provider_score(pi, ci, w, P);
            let high = provider_score(pi + 0.05, ci, w, P);
            prop_assert!(high >= low - 1e-12);
        }

        #[test]
        fn prop_ranking_is_a_permutation(
            scores in proptest::collection::vec(-2.0f64..=1.0, 0..50),
        ) {
            let candidates: Vec<RankedProvider> = scores
                .iter()
                .enumerate()
                .map(|(i, &score)| RankedProvider {
                    provider: ProviderId::new(i as u32),
                    score,
                })
                .collect();
            let ranked = rank_candidates(candidates.clone());
            prop_assert_eq!(ranked.len(), candidates.len());
            let mut ids: Vec<u32> = ranked.iter().map(|r| r.provider.raw()).collect();
            ids.sort_unstable();
            let expected: Vec<u32> = (0..scores.len() as u32).collect();
            prop_assert_eq!(ids, expected);
            prop_assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        }

        #[test]
        fn prop_select_top_k_prefix_is_bit_identical_to_full_sort(
            scores in proptest::collection::vec(-2.0f64..=1.0, 0..80),
            k in 0usize..80,
        ) {
            let candidates: Vec<RankedProvider> = scores
                .iter()
                .enumerate()
                .map(|(i, &score)| RankedProvider {
                    provider: ProviderId::new(i as u32),
                    score,
                })
                .collect();
            let sorted = rank_candidates(candidates.clone());
            let mut selected = candidates.clone();
            select_top_k(&mut selected, k);
            let prefix = k.min(candidates.len());
            for i in 0..prefix {
                prop_assert_eq!(selected[i].provider, sorted[i].provider);
                prop_assert_eq!(selected[i].score.to_bits(), sorted[i].score.to_bits());
            }
            // The tail is unordered but must still be a permutation of the
            // non-selected candidates.
            let mut tail: Vec<u32> = selected[prefix..].iter().map(|r| r.provider.raw()).collect();
            tail.sort_unstable();
            let mut expected_tail: Vec<u32> =
                sorted[prefix..].iter().map(|r| r.provider.raw()).collect();
            expected_tail.sort_unstable();
            prop_assert_eq!(tail, expected_tail);
        }
    }
}
