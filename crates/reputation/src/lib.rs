//! # sqlb-reputation
//!
//! The reputation substrate used by SQLB's consumer intention function.
//!
//! Definition 7 of the paper balances a consumer's *preference* for a
//! provider against the provider's *reputation* `rep(p) ∈ [-1, 1]`: a
//! consumer with little experience with a provider leans on reputation
//! (`υ < 0.5`), an experienced consumer leans on its own preference
//! (`υ > 0.5`). The paper notes that "reputation does not directly appear
//! [in the model], but it is clear that it has a major role to play in the
//! manner that participants work out their intentions" (Section 3.3).
//!
//! This crate provides the minimal substrate needed for that role:
//!
//! * [`ReputationStore`] — a per-provider reputation value maintained from
//!   consumer feedback with an exponential update rule and optional decay
//!   towards a prior;
//! * [`ExperienceTracker`] — counts a consumer's past interactions with
//!   each provider, so consumers can derive a per-provider `υ` value
//!   ("if a consumer has enough experiences with a given provider p, it
//!   sets υ > 0.5, or else it sets υ < 0.5", Section 5.1).

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use sqlb_types::{ProviderId, Reputation};
use std::collections::BTreeMap;

/// A feedback-driven reputation store.
///
/// Reputation values live in `[-1, 1]`. New providers start at a
/// configurable prior. Each piece of feedback moves the reputation towards
/// the feedback value by a learning-rate step; an optional decay pulls
/// reputations back towards the prior when providers are not observed for a
/// long time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReputationStore {
    prior: f64,
    learning_rate: f64,
    values: BTreeMap<ProviderId, f64>,
    feedback_counts: BTreeMap<ProviderId, u64>,
}

impl ReputationStore {
    /// Creates a store with the given prior reputation and learning rate in
    /// `(0, 1]`. A learning rate of 1 makes the reputation equal to the most
    /// recent feedback.
    pub fn new(prior: Reputation, learning_rate: f64) -> Self {
        ReputationStore {
            prior: prior.value(),
            learning_rate: learning_rate.clamp(f64::MIN_POSITIVE, 1.0),
            values: BTreeMap::new(),
            feedback_counts: BTreeMap::new(),
        }
    }

    /// A store with a neutral prior (0) and a moderate learning rate (0.1).
    pub fn neutral() -> Self {
        ReputationStore::new(Reputation::NEUTRAL, 0.1)
    }

    /// Returns the reputation of a provider, or the prior if no feedback
    /// has been recorded for it.
    pub fn reputation(&self, provider: ProviderId) -> Reputation {
        Reputation::new(*self.values.get(&provider).unwrap_or(&self.prior))
    }

    /// Records consumer feedback about a provider. `feedback` is the
    /// consumer's assessment of the interaction in `[-1, 1]` (e.g. the
    /// preference it ended up having for the result).
    pub fn record_feedback(&mut self, provider: ProviderId, feedback: Reputation) {
        let current = *self.values.get(&provider).unwrap_or(&self.prior);
        let updated = current + self.learning_rate * (feedback.value() - current);
        self.values.insert(provider, updated.clamp(-1.0, 1.0));
        *self.feedback_counts.entry(provider).or_insert(0) += 1;
    }

    /// Number of feedback observations recorded for a provider.
    pub fn feedback_count(&self, provider: ProviderId) -> u64 {
        *self.feedback_counts.get(&provider).unwrap_or(&0)
    }

    /// Decays every reputation towards the prior by `factor ∈ [0, 1]`
    /// (0 = no decay, 1 = full reset to the prior). Models reputation
    /// becoming stale in systems where providers change behaviour.
    pub fn decay(&mut self, factor: f64) {
        let factor = factor.clamp(0.0, 1.0);
        for value in self.values.values_mut() {
            *value += factor * (self.prior - *value);
        }
    }

    /// Removes a provider from the store (e.g. on departure).
    pub fn remove(&mut self, provider: ProviderId) {
        self.values.remove(&provider);
        self.feedback_counts.remove(&provider);
    }

    /// Number of providers with recorded feedback.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store has no recorded feedback.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Default for ReputationStore {
    fn default() -> Self {
        ReputationStore::neutral()
    }
}

/// Tracks how much first-hand experience a consumer has with each provider
/// and derives the preference/reputation balance `υ` of Definition 7.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperienceTracker {
    interactions: BTreeMap<ProviderId, u64>,
    /// Number of interactions after which the consumer fully trusts its own
    /// preferences (`υ = 1`).
    saturation: u64,
}

impl ExperienceTracker {
    /// Creates a tracker that saturates (full confidence in own
    /// preferences) after `saturation` interactions with a provider.
    pub fn new(saturation: u64) -> Self {
        ExperienceTracker {
            interactions: BTreeMap::new(),
            saturation: saturation.max(1),
        }
    }

    /// Records one interaction with a provider.
    pub fn record_interaction(&mut self, provider: ProviderId) {
        *self.interactions.entry(provider).or_insert(0) += 1;
    }

    /// Number of recorded interactions with a provider.
    pub fn interactions_with(&self, provider: ProviderId) -> u64 {
        *self.interactions.get(&provider).unwrap_or(&0)
    }

    /// The preference/reputation balance `υ ∈ [0, 1]` for a provider:
    /// `0.5` is reached at half the saturation count, `1` at saturation.
    /// With no experience the consumer relies entirely on reputation
    /// (`υ = 0`).
    pub fn upsilon(&self, provider: ProviderId) -> f64 {
        let n = self.interactions_with(provider) as f64;
        (n / self.saturation as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unknown_provider_has_prior_reputation() {
        let store = ReputationStore::new(Reputation::new(0.3), 0.5);
        assert!((store.reputation(ProviderId::new(9)).value() - 0.3).abs() < 1e-12);
        assert_eq!(store.feedback_count(ProviderId::new(9)), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn feedback_moves_reputation_towards_feedback() {
        let mut store = ReputationStore::new(Reputation::NEUTRAL, 0.5);
        let p = ProviderId::new(0);
        store.record_feedback(p, Reputation::new(1.0));
        assert!((store.reputation(p).value() - 0.5).abs() < 1e-12);
        store.record_feedback(p, Reputation::new(1.0));
        assert!((store.reputation(p).value() - 0.75).abs() < 1e-12);
        assert_eq!(store.feedback_count(p), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn negative_feedback_lowers_reputation() {
        let mut store = ReputationStore::neutral();
        let p = ProviderId::new(0);
        for _ in 0..50 {
            store.record_feedback(p, Reputation::new(-1.0));
        }
        assert!(store.reputation(p).value() < -0.9);
    }

    #[test]
    fn decay_pulls_towards_prior() {
        let mut store = ReputationStore::new(Reputation::NEUTRAL, 1.0);
        let p = ProviderId::new(0);
        store.record_feedback(p, Reputation::new(1.0));
        store.decay(0.5);
        assert!((store.reputation(p).value() - 0.5).abs() < 1e-12);
        store.decay(1.0);
        assert!((store.reputation(p).value() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn remove_forgets_provider() {
        let mut store = ReputationStore::neutral();
        let p = ProviderId::new(0);
        store.record_feedback(p, Reputation::new(1.0));
        store.remove(p);
        assert_eq!(store.feedback_count(p), 0);
        assert!((store.reputation(p).value() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn experience_tracker_upsilon_ramps_to_one() {
        let mut t = ExperienceTracker::new(4);
        let p = ProviderId::new(0);
        assert_eq!(t.upsilon(p), 0.0);
        t.record_interaction(p);
        assert!((t.upsilon(p) - 0.25).abs() < 1e-12);
        for _ in 0..10 {
            t.record_interaction(p);
        }
        assert_eq!(t.upsilon(p), 1.0);
        assert_eq!(t.interactions_with(p), 11);
    }

    #[test]
    fn experience_tracker_saturation_is_at_least_one() {
        let mut t = ExperienceTracker::new(0);
        let p = ProviderId::new(1);
        t.record_interaction(p);
        assert_eq!(t.upsilon(p), 1.0);
    }

    proptest! {
        #[test]
        fn prop_reputation_stays_in_range(
            feedback in proptest::collection::vec(-1.0f64..=1.0, 0..100),
            rate in 0.01f64..=1.0,
            prior in -1.0f64..=1.0,
        ) {
            let mut store = ReputationStore::new(Reputation::new(prior), rate);
            let p = ProviderId::new(0);
            for &f in &feedback {
                store.record_feedback(p, Reputation::new(f));
            }
            let r = store.reputation(p).value();
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn prop_upsilon_in_unit_interval(n in 0u64..1000, saturation in 1u64..100) {
            let mut t = ExperienceTracker::new(saturation);
            let p = ProviderId::new(0);
            for _ in 0..n {
                t.record_interaction(p);
            }
            let u = t.upsilon(p);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }
}
