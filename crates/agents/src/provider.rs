//! The provider agent.

use serde::{Deserialize, Serialize};
use sqlb_core::allocation::Bid;
use sqlb_core::intention::{provider_intention, IntentionParams};
use sqlb_satisfaction::ProviderTracker;
use sqlb_types::{
    Capacity, Intention, Preference, ProviderId, Query, QueryClass, SimDuration, SimTime,
    Utilization, WorkUnits,
};

use crate::utilization::UtilizationWindow;

/// Configuration of a provider agent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderConfig {
    /// The `ε` constant of Definition 8.
    pub params: IntentionParams,
    /// Window size for the proposal memory.
    pub proposed_memory: usize,
    /// Window size for the performed-query memory (`proSatSize`,
    /// Table 2: 500).
    pub performed_memory: usize,
    /// Initial satisfaction (Table 2: 0.5).
    pub initial_satisfaction: f64,
    /// Length of the sliding utilization window, in seconds of virtual
    /// time.
    pub utilization_window_secs: f64,
    /// Base price per work unit used when bidding (Mariposa-like
    /// protocol).
    pub price_per_unit: f64,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig {
            params: IntentionParams::default(),
            proposed_memory: 500,
            performed_memory: 500,
            initial_satisfaction: 0.5,
            utilization_window_secs: UtilizationWindow::DEFAULT_WINDOW_SECS,
            price_per_unit: 1.0,
        }
    }
}

/// A memoized Definition 8 evaluation: the intention value computed for
/// one query class at exact (bit-level) utilization and satisfaction
/// inputs. The class preference and `ε` never change after construction,
/// so these two inputs fully determine the intention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct IntentionMemo {
    utilization_bits: u64,
    satisfaction_bits: u64,
    intention: f64,
}

/// An autonomous provider.
///
/// The agent owns its capacity, its (private) preference per query class,
/// its utilization window, its outstanding backlog, and two satisfaction
/// trackers:
///
/// * an **intention-based** tracker — the public characterization that
///   matches what the mediator can observe (Figure 4(a));
/// * a **preference-based** tracker — the private characterization the
///   provider uses inside Definition 8 and that Figures 4(b)–(c) report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderAgent {
    id: ProviderId,
    config: ProviderConfig,
    capacity: Capacity,
    /// Preference per query-class index (`prf_p(q)`).
    class_preferences: Vec<f64>,
    utilization: UtilizationWindow,
    /// Outstanding (queued but not yet completed) work.
    backlog: f64,
    intention_tracker: ProviderTracker,
    preference_tracker: ProviderTracker,
    departed: bool,
    performed_count: u64,
    /// Per-class memo of the last Definition 8 evaluation. A provider's
    /// intention inputs only change when it is *selected* (satisfaction)
    /// or its utilization window content changes — for the overwhelming
    /// majority of (arrival, candidate) pairs they are identical to the
    /// previous arrival, so the `powf`-heavy trade-off is skipped
    /// entirely. Keyed on exact input bits, the memo is bit-identical to
    /// recomputation by construction.
    intention_memo: [Option<IntentionMemo>; 2],
}

impl ProviderAgent {
    /// Creates a provider with the given capacity and per-class
    /// preferences (`class_preferences[class.index()]`).
    pub fn new(
        id: ProviderId,
        capacity: Capacity,
        class_preferences: Vec<Preference>,
        config: ProviderConfig,
    ) -> Self {
        ProviderAgent {
            id,
            config,
            capacity,
            class_preferences: class_preferences.iter().map(|p| p.value()).collect(),
            utilization: UtilizationWindow::new(
                capacity,
                SimDuration::from_secs(config.utilization_window_secs),
            ),
            backlog: 0.0,
            intention_tracker: ProviderTracker::new(
                config.proposed_memory,
                config.performed_memory,
                config.initial_satisfaction,
            ),
            preference_tracker: ProviderTracker::new(
                config.proposed_memory,
                config.performed_memory,
                config.initial_satisfaction,
            ),
            departed: false,
            performed_count: 0,
            intention_memo: [None; 2],
        }
    }

    /// The provider's identifier.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// The provider's capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The agent configuration.
    pub fn config(&self) -> ProviderConfig {
        self.config
    }

    /// The provider's preference for performing queries of the given class
    /// (`prf_p(q)`). Unknown classes are treated neutrally.
    pub fn preference_for(&self, class: QueryClass) -> Preference {
        Preference::new(
            self.class_preferences
                .get(class.index())
                .copied()
                .unwrap_or(0.0),
        )
    }

    /// Current utilization `Ut(p)`.
    pub fn utilization(&mut self, now: SimTime) -> Utilization {
        self.utilization.utilization(now)
    }

    /// The provider's intention `pi_p(q)` for performing `query` at `now`
    /// (Definition 8), balancing its preference against its utilization
    /// according to its private, preference-based satisfaction
    /// (Definition 5 reading: a provider that got nothing lately focuses
    /// entirely on its preferences to obtain the queries it wants).
    pub fn intention_for(&mut self, query: &Query, now: SimTime) -> f64 {
        self.intention_and_utilization(query, now).0
    }

    /// The provider's intention for `query` at `now` together with the
    /// utilization `Ut(p)` that intention was computed from.
    ///
    /// This is the hot-path entry point: the mediation layer needs both
    /// values per candidate, and computing them together expires the
    /// sliding utilization window once instead of twice. The Definition 8
    /// evaluation itself is memoized per query class on the exact bits of
    /// its (utilization, satisfaction) inputs — `provider_intention` is a
    /// pure function and the class preference is fixed at construction,
    /// so a memo hit returns exactly the bits recomputation would.
    pub fn intention_and_utilization(&mut self, query: &Query, now: SimTime) -> (f64, f64) {
        let utilization = self.utilization.utilization(now).value();
        let satisfaction = self.preference_tracker.satisfaction();
        let slot = query.class().index();
        if let Some(Some(memo)) = self.intention_memo.get(slot) {
            if memo.utilization_bits == utilization.to_bits()
                && memo.satisfaction_bits == satisfaction.to_bits()
            {
                return (memo.intention, utilization);
            }
        }
        let preference = self.preference_for(query.class()).value();
        let intention =
            provider_intention(preference, utilization, satisfaction, self.config.params);
        if let Some(entry) = self.intention_memo.get_mut(slot) {
            *entry = Some(IntentionMemo {
                utilization_bits: utilization.to_bits(),
                satisfaction_bits: satisfaction.to_bits(),
                intention,
            });
        }
        (intention, utilization)
    }

    /// The provider's bid for a query (Mariposa-like protocol): the price
    /// reflects how *adapted* the provider is to the query (adapted
    /// providers underbid), the delay reflects the current backlog and the
    /// provider's speed.
    pub fn bid_for(&self, query: &Query, _now: SimTime) -> Bid {
        let adaptation = self.preference_for(query.class()).to_unit().value();
        // Price factor in [0.2, 1.2]: a fully adapted provider asks ~1/6 of
        // what a completely unadapted one asks.
        let price_factor = 1.2 - adaptation;
        let price = query.cost().value() * self.config.price_per_unit * price_factor;
        let delay = (self.backlog + query.cost().value()) / self.capacity.units_per_sec();
        Bid::new(price, delay)
    }

    /// Records a query that was proposed to this provider, the intention it
    /// showed for it, and whether the query was allocated to it. Updates
    /// both the public (intention-based) and private (preference-based)
    /// characterizations.
    pub fn record_proposal(&mut self, query: &Query, shown_intention: f64, performed: bool) {
        self.intention_tracker
            .record_proposal(Intention::new(shown_intention), performed);
        let preference = self.preference_for(query.class());
        self.preference_tracker
            .record_proposal(Intention::new(preference.value()), performed);
    }

    /// Accepts an allocated query at `now`: the work enters the backlog and
    /// the utilization window, and the processing time on this provider is
    /// returned (the simulator adds queueing delay on top).
    pub fn assign(&mut self, query: &Query, now: SimTime) -> SimDuration {
        let work = query.cost();
        self.utilization.record_assignment(now, work);
        self.backlog += work.value();
        self.performed_count += 1;
        self.capacity.processing_time(work)
    }

    /// Marks `work` units of backlog as completed.
    pub fn complete(&mut self, work: WorkUnits) {
        self.backlog = (self.backlog - work.value()).max(0.0);
    }

    /// Outstanding (assigned but not completed) work.
    pub fn backlog(&self) -> WorkUnits {
        WorkUnits::new(self.backlog)
    }

    /// Number of queries assigned to this provider over its lifetime.
    pub fn performed_queries(&self) -> u64 {
        self.performed_count
    }

    /// Public, intention-based adequation `δa(p)` (Definition 4).
    pub fn adequation(&self) -> f64 {
        self.intention_tracker.adequation()
    }

    /// Public, intention-based satisfaction `δs(p)` (Definition 5) — what
    /// Figure 4(a) reports and "what a query allocation method can see". A
    /// provider that performed none of the queries recently proposed to it
    /// reports 0; this is also the value the dissatisfaction departure rule
    /// inspects.
    pub fn satisfaction(&self) -> f64 {
        self.intention_tracker.satisfaction_strict()
    }

    /// Public, intention-based allocation satisfaction `δas(p)`
    /// (Definition 6).
    pub fn allocation_satisfaction(&self) -> f64 {
        sqlb_satisfaction::allocation_satisfaction(
            self.intention_tracker.satisfaction_strict(),
            self.intention_tracker.adequation(),
        )
    }

    /// Alias of [`ProviderAgent::satisfaction`], kept for call sites that
    /// want to be explicit about using the strict Definition 5 reading.
    pub fn strict_satisfaction(&self) -> f64 {
        self.intention_tracker.satisfaction_strict()
    }

    /// Public, intention-based satisfaction smoothed over the last
    /// `performed_memory` treated queries (Table 2's `proSatSize` reading)
    /// instead of the instantaneous Definition 5 value.
    pub fn smoothed_satisfaction(&self) -> f64 {
        self.intention_tracker.satisfaction()
    }

    /// Number of queries proposed to this provider over its lifetime.
    pub fn proposed_queries(&self) -> u64 {
        self.intention_tracker.proposed_queries()
    }

    /// Private, preference-based adequation.
    pub fn preference_adequation(&self) -> f64 {
        self.preference_tracker.adequation()
    }

    /// Private, preference-based satisfaction — the input to Definition 8
    /// and the quantity of Figure 4(b). This is the provider's *long-run*
    /// feeling about the queries it performs ("what is more important for a
    /// provider is to be globally satisfied with the queries it performs",
    /// Section 3.2.2), so it uses the smoothed Table 2 reading over the
    /// last `proSatSize` treated queries.
    pub fn preference_satisfaction(&self) -> f64 {
        self.preference_tracker.satisfaction()
    }

    /// Private, preference-based satisfaction computed strictly as
    /// Definition 5 over the proposal window.
    pub fn strict_preference_satisfaction(&self) -> f64 {
        self.preference_tracker.satisfaction_strict()
    }

    /// Private, preference-based allocation satisfaction — the quantity of
    /// Figure 4(c).
    pub fn preference_allocation_satisfaction(&self) -> f64 {
        sqlb_satisfaction::allocation_satisfaction(
            self.preference_tracker.satisfaction(),
            self.preference_tracker.adequation(),
        )
    }

    /// Whether the provider has left the system.
    pub fn has_departed(&self) -> bool {
        self.departed
    }

    /// Marks the provider as departed.
    pub fn depart(&mut self) {
        self.departed = true;
    }

    /// Re-admits a churned-out provider (scenario churn groups bring
    /// providers back). The agent keeps its satisfaction trackers, its
    /// utilization window and any outstanding backlog — under the default
    /// `Resume` re-join policy the provider's history simply continues.
    pub fn rejoin(&mut self) {
        self.departed = false;
    }

    /// Discards the provider's satisfaction history, rebuilding both
    /// trackers at the configured initial satisfaction and clearing the
    /// Definition 8 memo (the `Reset` re-join policy). The utilization
    /// window and backlog are *physical* state — work already accepted
    /// does not vanish when bookkeeping resets — so they are kept.
    pub fn reset_satisfaction_history(&mut self) {
        self.intention_tracker = ProviderTracker::new(
            self.config.proposed_memory,
            self.config.performed_memory,
            self.config.initial_satisfaction,
        );
        self.preference_tracker = ProviderTracker::new(
            self.config.proposed_memory,
            self.config.performed_memory,
            self.config.initial_satisfaction,
        );
        self.intention_memo = [None; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{ConsumerId, QueryId};

    fn prefs(light: f64, heavy: f64) -> Vec<Preference> {
        vec![Preference::new(light), Preference::new(heavy)]
    }

    fn query(id: u32, class: QueryClass) -> Query {
        Query::single(QueryId::new(id), ConsumerId::new(0), class, SimTime::ZERO)
    }

    fn provider(capacity: f64, light: f64, heavy: f64) -> ProviderAgent {
        ProviderAgent::new(
            ProviderId::new(0),
            Capacity::new(capacity),
            prefs(light, heavy),
            ProviderConfig::default(),
        )
    }

    #[test]
    fn idle_interested_provider_shows_positive_intention() {
        let mut p = provider(100.0, 0.8, -0.5);
        let i = p.intention_for(&query(0, QueryClass::Light), SimTime::ZERO);
        assert!(i > 0.0);
        let i = p.intention_for(&query(0, QueryClass::Heavy), SimTime::ZERO);
        assert!(i < 0.0, "disliked class yields negative intention");
    }

    #[test]
    fn overloaded_provider_shows_negative_intention() {
        let mut p = provider(10.0, 1.0, 1.0);
        // Assign far more work than one window's worth of capacity.
        for _ in 0..20 {
            p.assign(&query(0, QueryClass::Heavy), SimTime::from_secs(1.0));
        }
        assert!(p.utilization(SimTime::from_secs(1.0)).is_overloaded());
        let i = p.intention_for(&query(0, QueryClass::Light), SimTime::from_secs(1.0));
        assert!(i < 0.0);
    }

    #[test]
    fn assignment_updates_backlog_and_processing_time() {
        let mut p = provider(100.0, 0.5, 0.5);
        let d = p.assign(&query(0, QueryClass::Light), SimTime::ZERO);
        assert!((d.as_secs() - 1.3).abs() < 1e-9);
        assert!((p.backlog().value() - 130.0).abs() < 1e-9);
        p.complete(WorkUnits::new(130.0));
        assert_eq!(p.backlog().value(), 0.0);
        assert_eq!(p.performed_queries(), 1);
    }

    #[test]
    fn slower_provider_takes_proportionally_longer() {
        let mut fast = provider(100.0, 0.5, 0.5);
        let mut slow = provider(100.0 / 7.0, 0.5, 0.5);
        let q = query(0, QueryClass::Heavy);
        let tf = fast.assign(&q, SimTime::ZERO).as_secs();
        let ts = slow.assign(&q, SimTime::ZERO).as_secs();
        assert!((ts / tf - 7.0).abs() < 1e-9);
    }

    #[test]
    fn adapted_providers_bid_lower() {
        let adapted = provider(100.0, 1.0, 1.0);
        let unadapted = provider(100.0, -1.0, -1.0);
        let q = query(0, QueryClass::Light);
        let cheap = adapted.bid_for(&q, SimTime::ZERO);
        let expensive = unadapted.bid_for(&q, SimTime::ZERO);
        assert!(cheap.price < expensive.price);
        assert!((cheap.price - 130.0 * 0.2).abs() < 1e-9);
        assert!((expensive.price - 130.0 * 1.2).abs() < 1e-9);
    }

    #[test]
    fn bid_delay_grows_with_backlog() {
        let mut p = provider(100.0, 0.5, 0.5);
        let q = query(0, QueryClass::Light);
        let before = p.bid_for(&q, SimTime::ZERO).delay;
        for _ in 0..5 {
            p.assign(&q, SimTime::ZERO);
        }
        let after = p.bid_for(&q, SimTime::ZERO).delay;
        assert!(after > before);
        assert!((before - 1.3).abs() < 1e-9);
    }

    #[test]
    fn public_and_private_satisfaction_can_diverge() {
        let mut p = provider(100.0, 0.9, -0.9);
        let q_liked = query(0, QueryClass::Light);
        // The provider keeps performing liked queries but — because it is
        // loaded — shows small intentions for them: its intention-based
        // satisfaction is mediocre while its preference-based satisfaction
        // is high.
        for _ in 0..20 {
            p.record_proposal(&q_liked, 0.05, true);
        }
        assert!(p.preference_satisfaction() > 0.9);
        assert!(p.satisfaction() < 0.6);
        assert!(p.preference_allocation_satisfaction() > 0.0);
    }

    #[test]
    fn departure_flag() {
        let mut p = provider(100.0, 0.0, 0.0);
        assert!(!p.has_departed());
        p.depart();
        assert!(p.has_departed());
    }

    #[test]
    fn memoized_intention_is_bit_identical_to_fresh_computation() {
        // Drive one provider through assignments, completions and
        // proposal records; at every step its (memoized) intention must
        // equal the intention of a freshly built agent in the same state,
        // bit for bit, for both classes.
        let mut memoized = provider(50.0, 0.7, -0.3);
        for step in 0..200u32 {
            let now = SimTime::from_secs(step as f64 * 0.5);
            let class = if step % 3 == 0 {
                QueryClass::Heavy
            } else {
                QueryClass::Light
            };
            let q = query(step, class);
            if step % 7 == 0 {
                memoized.assign(&q, now);
            }
            if step % 11 == 0 {
                memoized.complete(WorkUnits::new(130.0));
            }
            if step % 5 == 0 {
                memoized.record_proposal(&q, 0.4, step % 2 == 0);
            }
            let (pi, ut) = memoized.intention_and_utilization(&q, now);
            // A clone has the same state but we clear its memo by
            // rebuilding the inputs manually through the public formula.
            let expected = sqlb_core::intention::provider_intention(
                memoized.preference_for(class).value(),
                ut,
                memoized.preference_satisfaction(),
                memoized.config().params,
            );
            assert_eq!(
                pi.to_bits(),
                expected.to_bits(),
                "memoized intention diverged at step {step}"
            );
            assert_eq!(
                memoized.intention_for(&q, now).to_bits(),
                expected.to_bits()
            );
            assert_eq!(ut.to_bits(), memoized.utilization(now).value().to_bits());
        }
    }

    #[test]
    fn adequation_follows_proposals() {
        let mut p = provider(100.0, 0.6, 0.6);
        for i in 0..10 {
            p.record_proposal(&query(i, QueryClass::Light), 0.6, false);
        }
        assert!((p.adequation() - 0.8).abs() < 1e-9);
        assert!((p.preference_adequation() - 0.8).abs() < 1e-9);
        // Nothing performed among the proposals: the strict Definition 5
        // satisfaction collapses to 0 (the smoothed reading keeps the
        // initial value) and allocation satisfaction dips below 1.
        assert_eq!(p.satisfaction(), 0.0);
        assert_eq!(p.smoothed_satisfaction(), 0.5);
        assert!(p.allocation_satisfaction() < 1.0);
    }
}
