//! Departure rules (Section 6.3.2).
//!
//! "Participants are given the autonomy to leave the system. … we assume
//! that participants support high degrees of dissatisfaction, starvation,
//! and overutilization. Thus, a consumer leaves the system, by
//! dissatisfaction, if its satisfaction is smaller than its adequation …
//! A provider leaves the system (i) by dissatisfaction, if its satisfaction
//! is smaller than its adequation minus 0.15, (ii) by starvation, if its
//! utilization is smaller than 20 % of its optimal utilization, and
//! (iii) by overutilization, if its utilization is greater than 220 % of
//! its optimal utilization. With a workload of 80 % of the total system
//! capacity, the optimal utilization of a provider is 0.8."
//!
//! The rules are pure functions over the relevant characteristics; the
//! simulator decides which satisfaction basis to feed them (it uses the
//! strict Definition 5, intention-based values for providers, mirroring the
//! quantities the model makes observable) and how often to evaluate them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a participant left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepartureReason {
    /// The allocation method punished the participant
    /// (satisfaction below adequation, beyond the tolerated margin).
    Dissatisfaction,
    /// The provider received far too little work.
    Starvation,
    /// The provider received far too much work.
    Overutilization,
}

impl fmt::Display for DepartureReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepartureReason::Dissatisfaction => write!(f, "dissatisfaction"),
            DepartureReason::Starvation => write!(f, "starvation"),
            DepartureReason::Overutilization => write!(f, "overutilization"),
        }
    }
}

/// The consumer departure rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumerDepartureRule {
    /// Tolerated dissatisfaction margin: the consumer leaves when
    /// `δs(c) < δa(c) − margin`. The paper uses 0 (any punishment at all).
    pub margin: f64,
    /// Minimum number of issued queries before the rule is evaluated, so a
    /// consumer is not judged on an empty or nearly empty memory.
    pub min_issued_queries: u64,
    /// Number of consecutive assessments at which the rule must fire before
    /// the consumer actually leaves ("participants support high degrees of
    /// dissatisfaction" — a momentary dip is tolerated, persistent
    /// punishment is not).
    pub required_consecutive: u32,
}

impl Default for ConsumerDepartureRule {
    fn default() -> Self {
        ConsumerDepartureRule {
            margin: 0.0,
            min_issued_queries: 50,
            required_consecutive: 3,
        }
    }
}

impl ConsumerDepartureRule {
    /// Evaluates the rule. Returns the departure reason if the consumer
    /// decides to leave.
    pub fn evaluate(
        &self,
        satisfaction: f64,
        adequation: f64,
        issued_queries: u64,
    ) -> Option<DepartureReason> {
        if issued_queries < self.min_issued_queries {
            return None;
        }
        if satisfaction < adequation - self.margin {
            Some(DepartureReason::Dissatisfaction)
        } else {
            None
        }
    }
}

/// The provider departure rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderDepartureRule {
    /// Dissatisfaction margin: the provider leaves when
    /// `δs(p) < δa(p) − margin` (paper: 0.15).
    pub dissatisfaction_margin: f64,
    /// Starvation threshold as a fraction of the optimal utilization
    /// (paper: 0.2).
    pub starvation_fraction: f64,
    /// Overutilization threshold as a fraction of the optimal utilization
    /// (paper: 2.2).
    pub overutilization_fraction: f64,
    /// Minimum number of proposals the provider must have seen before the
    /// rule is evaluated.
    pub min_proposed_queries: u64,
    /// Number of consecutive assessments at which the rule must fire before
    /// the provider actually leaves.
    pub required_consecutive: u32,
    /// Which departure reasons are enabled. Figure 5(a) enables only
    /// dissatisfaction and starvation; Figure 5(b) enables all three.
    pub enabled: EnabledReasons,
}

/// Which provider departure reasons are active in a given experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnabledReasons {
    /// Dissatisfaction departures are possible.
    pub dissatisfaction: bool,
    /// Starvation departures are possible.
    pub starvation: bool,
    /// Overutilization departures are possible.
    pub overutilization: bool,
}

impl EnabledReasons {
    /// All three reasons enabled (Figure 5(b)).
    pub const ALL: EnabledReasons = EnabledReasons {
        dissatisfaction: true,
        starvation: true,
        overutilization: true,
    };
    /// Only dissatisfaction and starvation (Figure 5(a)).
    pub const DISSATISFACTION_AND_STARVATION: EnabledReasons = EnabledReasons {
        dissatisfaction: true,
        starvation: true,
        overutilization: false,
    };
    /// No departures at all (captive participants, Section 6.3.1).
    pub const NONE: EnabledReasons = EnabledReasons {
        dissatisfaction: false,
        starvation: false,
        overutilization: false,
    };
}

impl Default for ProviderDepartureRule {
    fn default() -> Self {
        ProviderDepartureRule {
            dissatisfaction_margin: 0.15,
            starvation_fraction: 0.2,
            overutilization_fraction: 2.2,
            min_proposed_queries: 500,
            required_consecutive: 3,
            enabled: EnabledReasons::ALL,
        }
    }
}

impl ProviderDepartureRule {
    /// Creates the paper's rule with an explicit set of enabled reasons.
    pub fn with_enabled(enabled: EnabledReasons) -> Self {
        ProviderDepartureRule {
            enabled,
            ..ProviderDepartureRule::default()
        }
    }

    /// Evaluates the rule.
    ///
    /// * `satisfaction`, `adequation` — the provider's characteristics (the
    ///   simulator passes the strict Definition 5 satisfaction);
    /// * `utilization` — current `Ut(p)`;
    /// * `optimal_utilization` — the utilization a provider would have if
    ///   the workload were spread exactly proportionally to capacity (the
    ///   workload fraction);
    /// * `proposed_queries` — how many proposals the provider has seen.
    ///
    /// Overutilization is checked first, then dissatisfaction, then
    /// starvation: an overloaded provider leaves because of the overload
    /// even if it is also dissatisfied.
    pub fn evaluate(
        &self,
        satisfaction: f64,
        adequation: f64,
        utilization: f64,
        optimal_utilization: f64,
        proposed_queries: u64,
    ) -> Option<DepartureReason> {
        if proposed_queries < self.min_proposed_queries {
            return None;
        }
        if self.enabled.overutilization
            && utilization > self.overutilization_fraction * optimal_utilization
        {
            return Some(DepartureReason::Overutilization);
        }
        if self.enabled.dissatisfaction && satisfaction < adequation - self.dissatisfaction_margin {
            return Some(DepartureReason::Dissatisfaction);
        }
        if self.enabled.starvation && utilization < self.starvation_fraction * optimal_utilization {
            return Some(DepartureReason::Starvation);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn consumer_leaves_when_punished() {
        let rule = ConsumerDepartureRule::default();
        assert_eq!(
            rule.evaluate(0.4, 0.6, 100),
            Some(DepartureReason::Dissatisfaction)
        );
        assert_eq!(rule.evaluate(0.6, 0.6, 100), None);
        assert_eq!(rule.evaluate(0.7, 0.6, 100), None);
    }

    #[test]
    fn consumer_needs_enough_history() {
        let rule = ConsumerDepartureRule::default();
        assert_eq!(rule.evaluate(0.0, 1.0, 10), None);
        assert_eq!(
            rule.evaluate(0.0, 1.0, 50),
            Some(DepartureReason::Dissatisfaction)
        );
    }

    #[test]
    fn provider_thresholds_match_paper() {
        let rule = ProviderDepartureRule::default();
        // 80 % workload → optimal utilization 0.8.
        let optimal = 0.8;
        // Dissatisfaction requires a gap larger than 0.15.
        assert_eq!(rule.evaluate(0.50, 0.60, 0.8, optimal, 1000), None);
        assert_eq!(
            rule.evaluate(0.40, 0.60, 0.8, optimal, 1000),
            Some(DepartureReason::Dissatisfaction)
        );
        // Starvation below 20 % of optimal = 0.16.
        assert_eq!(
            rule.evaluate(0.6, 0.6, 0.10, optimal, 1000),
            Some(DepartureReason::Starvation)
        );
        assert_eq!(rule.evaluate(0.6, 0.6, 0.20, optimal, 1000), None);
        // Overutilization above 220 % of optimal = 1.76.
        assert_eq!(
            rule.evaluate(0.6, 0.6, 1.8, optimal, 1000),
            Some(DepartureReason::Overutilization)
        );
        assert_eq!(rule.evaluate(0.6, 0.6, 1.7, optimal, 1000), None);
    }

    #[test]
    fn provider_needs_enough_history() {
        let rule = ProviderDepartureRule::default();
        assert_eq!(rule.evaluate(0.0, 1.0, 0.0, 0.8, 10), None);
    }

    #[test]
    fn overutilization_takes_precedence_over_dissatisfaction() {
        let rule = ProviderDepartureRule::default();
        assert_eq!(
            rule.evaluate(0.1, 0.9, 2.0, 0.8, 1000),
            Some(DepartureReason::Overutilization)
        );
    }

    #[test]
    fn disabled_reasons_are_ignored() {
        let rule =
            ProviderDepartureRule::with_enabled(EnabledReasons::DISSATISFACTION_AND_STARVATION);
        assert_eq!(rule.evaluate(0.6, 0.6, 5.0, 0.8, 1000), None);
        assert_eq!(
            rule.evaluate(0.1, 0.6, 5.0, 0.8, 1000),
            Some(DepartureReason::Dissatisfaction)
        );
        let rule = ProviderDepartureRule::with_enabled(EnabledReasons::NONE);
        assert_eq!(rule.evaluate(0.0, 1.0, 100.0, 0.8, 1000), None);
    }

    #[test]
    fn reasons_display() {
        assert_eq!(
            DepartureReason::Dissatisfaction.to_string(),
            "dissatisfaction"
        );
        assert_eq!(DepartureReason::Starvation.to_string(), "starvation");
        assert_eq!(
            DepartureReason::Overutilization.to_string(),
            "overutilization"
        );
    }

    proptest! {
        #[test]
        fn prop_captive_rule_never_fires(
            s in 0.0f64..1.0,
            a in 0.0f64..1.0,
            u in 0.0f64..5.0,
            o in 0.1f64..1.0,
        ) {
            let rule = ProviderDepartureRule::with_enabled(EnabledReasons::NONE);
            prop_assert_eq!(rule.evaluate(s, a, u, o, u64::MAX), None);
        }

        #[test]
        fn prop_satisfied_balanced_provider_stays(
            a in 0.0f64..1.0,
            o in 0.2f64..1.0,
        ) {
            // A provider whose satisfaction matches its adequation and whose
            // utilization sits exactly at the optimum never leaves.
            let rule = ProviderDepartureRule::default();
            prop_assert_eq!(rule.evaluate(a, a, o, o, u64::MAX), None);
        }
    }
}
