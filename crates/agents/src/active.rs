//! Incrementally maintained active-participant indices.
//!
//! The simulation engine used to rebuild "the consumers that have not
//! departed" as a fresh `Vec` on **every** query arrival, and to re-count
//! them for every inter-arrival draw — O(C) work per arrival for a set
//! that only ever changes on the (rare) departure path. [`ActiveSet`]
//! maintains that set incrementally: it starts as the full population in
//! ascending id order and shrinks by binary-search removal when a
//! participant departs, so the arrival hot path reads a ready slice.
//!
//! Ordering matters for determinism: the engine draws a random *index*
//! into the active set, so the set must present exactly the same sequence
//! as the filter-and-collect it replaces — ascending id order of the
//! surviving participants, which removal by binary search preserves.

use serde::{Deserialize, Serialize};
use sqlb_types::StableId;

/// An ordered (ascending id) set of still-active participant identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveSet<K> {
    ids: Vec<K>,
}

impl<K: StableId + Ord> ActiveSet<K> {
    /// Builds the set from identifiers in ascending order (the order
    /// population generators and [`sqlb_types::ParticipantTable::keys`]
    /// produce).
    pub fn from_sorted(ids: impl IntoIterator<Item = K>) -> Self {
        let ids: Vec<K> = ids.into_iter().collect();
        // The O(n) ordering audit is feature-gated (not just
        // debug-gated): debug-profile tests build 10^5-participant
        // populations, where even a linear sweep per construction is
        // noticeable. `cargo test --features strict-invariants` turns it
        // back on.
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ActiveSet requires strictly ascending ids"
        );
        ActiveSet { ids }
    }

    /// The active identifiers, ascending.
    #[inline]
    pub fn ids(&self) -> &[K] {
        &self.ids
    }

    /// Number of active participants.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no participant is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` is active.
    pub fn contains(&self, id: K) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Removes a departing participant. Returns `true` if it was present
    /// (removal is idempotent — departures can only happen once, but the
    /// set does not rely on that).
    pub fn remove(&mut self, id: K) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-admits a re-joining participant at its ordered position (churn
    /// scenarios bring previously departed providers back). Returns
    /// `true` if it was absent (insertion is idempotent, mirroring
    /// [`ActiveSet::remove`]).
    pub fn insert(&mut self, id: K) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }
}

impl<K: StableId + Ord> FromIterator<K> for ActiveSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        ActiveSet::from_sorted(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sqlb_types::ConsumerId;

    fn set(n: u32) -> ActiveSet<ConsumerId> {
        (0..n).map(ConsumerId::new).collect()
    }

    #[test]
    fn starts_full_and_shrinks_on_removal() {
        let mut s = set(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(ConsumerId::new(2)));
        assert!(s.remove(ConsumerId::new(2)));
        assert!(!s.contains(ConsumerId::new(2)));
        assert_eq!(
            s.ids().iter().map(|c| c.raw()).collect::<Vec<_>>(),
            [0, 1, 3]
        );
        // Idempotent.
        assert!(!s.remove(ConsumerId::new(2)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_restores_ordered_position() {
        let mut s = set(4);
        assert!(s.remove(ConsumerId::new(1)));
        assert!(s.remove(ConsumerId::new(3)));
        assert!(s.insert(ConsumerId::new(3)));
        assert!(s.insert(ConsumerId::new(1)));
        // Idempotent: re-inserting an active id is a no-op.
        assert!(!s.insert(ConsumerId::new(1)));
        assert_eq!(
            s.ids().iter().map(|c| c.raw()).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn empties_cleanly() {
        let mut s = set(2);
        s.remove(ConsumerId::new(0));
        s.remove(ConsumerId::new(1));
        assert!(s.is_empty());
        assert_eq!(s.ids(), &[]);
    }

    proptest! {
        #[test]
        fn prop_matches_filter_rebuild_after_any_departure_sequence(
            n in 1u32..64,
            departures in proptest::collection::vec(0u32..96, 0..96),
        ) {
            let mut s = set(n);
            let mut departed = std::collections::HashSet::new();
            for d in departures {
                s.remove(ConsumerId::new(d));
                if d < n {
                    departed.insert(d);
                }
                // The incremental set must equal the from-scratch rebuild
                // (ascending id filter) after every single step.
                let rebuilt: Vec<u32> =
                    (0..n).filter(|i| !departed.contains(i)).collect();
                let actual: Vec<u32> = s.ids().iter().map(|c| c.raw()).collect();
                prop_assert_eq!(&actual, &rebuilt);
                prop_assert_eq!(s.len(), rebuilt.len());
            }
        }
    }
}
