//! Sliding-window utilization tracking.
//!
//! The paper defines `Ut(p)` as "how much [a provider] is loaded w.r.t. its
//! capacity" and assumes providers "work out their utilization as in \[16\]".
//! The property the evaluation relies on is that a provider receiving its
//! fair share of an `x %` workload has utilization ≈ `x/100` ("With a
//! workload of 80 % of the total system capacity, the optimal utilization
//! of a provider is 0.8", Section 6.3.2).
//!
//! [`UtilizationWindow`] satisfies that property directly: it remembers the
//! work (in units) assigned to the provider during the last `window`
//! seconds and reports
//!
//! ```text
//! Ut(p) = assigned_work(now − window, now) / (capacity × window)
//! ```

use serde::{Deserialize, Serialize};
use sqlb_types::{Capacity, SimDuration, SimTime, Utilization, WorkUnits};
use std::collections::VecDeque;

/// Sliding-window utilization estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationWindow {
    capacity: Capacity,
    window: SimDuration,
    assignments: VecDeque<(f64, f64)>, // (time seconds, work units)
    total_in_window: f64,
    lifetime_assigned: f64,
}

impl UtilizationWindow {
    /// Default window length used by the simulator (seconds of virtual
    /// time). Long enough to smooth out individual allocations, short
    /// enough to track the workload ramp of Figure 4.
    pub const DEFAULT_WINDOW_SECS: f64 = 60.0;

    /// Creates a window for a provider of the given capacity.
    pub fn new(capacity: Capacity, window: SimDuration) -> Self {
        assert!(
            window.as_secs() > 0.0,
            "utilization window must be positive"
        );
        UtilizationWindow {
            capacity,
            window,
            assignments: VecDeque::new(),
            total_in_window: 0.0,
            lifetime_assigned: 0.0,
        }
    }

    /// Creates a window with the default length.
    pub fn with_default_window(capacity: Capacity) -> Self {
        UtilizationWindow::new(capacity, SimDuration::from_secs(Self::DEFAULT_WINDOW_SECS))
    }

    /// Records work assigned to the provider at `time`.
    pub fn record_assignment(&mut self, time: SimTime, work: WorkUnits) {
        self.expire(time);
        self.assignments.push_back((time.as_secs(), work.value()));
        self.total_in_window += work.value();
        self.lifetime_assigned += work.value();
    }

    /// Current utilization at `now`.
    pub fn utilization(&mut self, now: SimTime) -> Utilization {
        self.expire(now);
        let denominator = self.capacity.units_per_sec() * self.window.as_secs();
        Utilization::new(self.total_in_window / denominator)
    }

    /// Utilization without mutating the window (slightly conservative: work
    /// older than the window but not yet expired is still counted).
    pub fn utilization_unexpired(&self) -> Utilization {
        let denominator = self.capacity.units_per_sec() * self.window.as_secs();
        Utilization::new(self.total_in_window / denominator)
    }

    /// Total work assigned over the provider's lifetime, in units.
    pub fn lifetime_assigned(&self) -> WorkUnits {
        WorkUnits::new(self.lifetime_assigned)
    }

    /// The provider capacity this window is calibrated against.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = now.as_secs() - self.window.as_secs();
        while let Some(&(t, w)) = self.assignments.front() {
            if t < cutoff {
                self.assignments.pop_front();
                self.total_in_window -= w;
            } else {
                break;
            }
        }
        if self.assignments.is_empty() {
            self.total_in_window = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn idle_provider_has_zero_utilization() {
        let mut w = UtilizationWindow::new(Capacity::new(100.0), SimDuration::from_secs(60.0));
        assert_eq!(w.utilization(t(0.0)).value(), 0.0);
        assert_eq!(w.utilization(t(1000.0)).value(), 0.0);
    }

    #[test]
    fn fair_share_workload_gives_matching_utilization() {
        // A provider of 100 units/s receiving 80 units/s of work over the
        // window should sit at utilization 0.8 (the "optimal utilization at
        // 80 % workload" of Section 6.3.2).
        let mut w = UtilizationWindow::new(Capacity::new(100.0), SimDuration::from_secs(60.0));
        // 60 s × 80 u/s = 4800 units spread over the window.
        for i in 0..60 {
            w.record_assignment(t(i as f64), WorkUnits::new(80.0));
        }
        let u = w.utilization(t(59.0)).value();
        assert!((u - 0.8).abs() < 0.02, "got {u}");
    }

    #[test]
    fn old_work_expires() {
        let mut w = UtilizationWindow::new(Capacity::new(100.0), SimDuration::from_secs(10.0));
        w.record_assignment(t(0.0), WorkUnits::new(1000.0));
        assert!(w.utilization(t(1.0)).value() > 0.9);
        assert_eq!(w.utilization(t(20.0)).value(), 0.0);
        assert_eq!(w.lifetime_assigned().value(), 1000.0);
    }

    #[test]
    fn overload_reports_above_one() {
        let mut w = UtilizationWindow::new(Capacity::new(10.0), SimDuration::from_secs(10.0));
        w.record_assignment(t(5.0), WorkUnits::new(500.0));
        assert!(w.utilization(t(5.0)).value() > 2.0);
        assert!(w.utilization(t(5.0)).is_overloaded());
    }

    #[test]
    fn unexpired_view_does_not_mutate() {
        let mut w = UtilizationWindow::with_default_window(Capacity::new(100.0));
        w.record_assignment(t(0.0), WorkUnits::new(600.0));
        let before = w.utilization_unexpired().value();
        assert!(before > 0.0);
        // Reading far in the future with the mutating accessor expires it.
        assert_eq!(w.utilization(t(1000.0)).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        UtilizationWindow::new(Capacity::new(1.0), SimDuration::ZERO);
    }

    proptest! {
        #[test]
        fn prop_utilization_never_negative(
            assignments in proptest::collection::vec((0.0f64..1000.0, 0.0f64..500.0), 0..100),
            probe in 0.0f64..2000.0,
        ) {
            let mut w = UtilizationWindow::new(Capacity::new(50.0), SimDuration::from_secs(30.0));
            let mut sorted = assignments.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (time, work) in sorted {
                w.record_assignment(t(time), WorkUnits::new(work));
            }
            prop_assert!(w.utilization(t(probe)).value() >= 0.0);
        }

        #[test]
        fn prop_more_work_means_no_less_utilization(
            base in 0.0f64..200.0,
            extra in 0.0f64..200.0,
        ) {
            let mut a = UtilizationWindow::new(Capacity::new(100.0), SimDuration::from_secs(10.0));
            let mut b = UtilizationWindow::new(Capacity::new(100.0), SimDuration::from_secs(10.0));
            a.record_assignment(t(5.0), WorkUnits::new(base));
            b.record_assignment(t(5.0), WorkUnits::new(base));
            b.record_assignment(t(5.0), WorkUnits::new(extra));
            prop_assert!(b.utilization(t(5.0)).value() >= a.utilization(t(5.0)).value());
        }
    }
}
