//! # sqlb-agents
//!
//! The autonomous participants of the SQLB system: consumer and provider
//! agents, together with the machinery they need to act autonomously —
//! preference tables, private (preference-based) satisfaction tracking,
//! sliding-window utilization, bid computation, departure rules, and the
//! population generators that reproduce the class mix of the paper's
//! evaluation (Table 2 and Section 6.1).
//!
//! Agents own their *private* information (preferences, preference-based
//! satisfaction) and expose only *intentions*: "The way in which
//! participants compute their intentions is considered as private
//! information and not revealed to others" (Section 2).

#![warn(missing_docs)]

pub mod active;
pub mod consumer;
pub mod departure;
pub mod population;
pub mod provider;
pub mod utilization;

pub use active::ActiveSet;
pub use consumer::{ConsumerAgent, ConsumerConfig};
pub use departure::{
    ConsumerDepartureRule, DepartureReason, EnabledReasons, ProviderDepartureRule,
};
pub use population::{
    AdaptationClass, CapacityClass, InterestClass, Population, PopulationConfig, ProviderProfile,
};
pub use provider::{ProviderAgent, ProviderConfig};
pub use utilization::UtilizationWindow;

/// Stable-identifier participant state table (defined in `sqlb-types` so
/// lower layers such as the mediator state can use it too; re-exported
/// here because agent populations are its primary producer).
pub use sqlb_types::table::{ParticipantTable, StableId};
