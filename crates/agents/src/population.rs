//! Population generation (Table 2 and Section 6.1).
//!
//! The paper's evaluation populates the system with 200 consumers and 400
//! providers whose heterogeneity follows three independent class
//! dimensions:
//!
//! * **consumer interest** in a provider — high (60 % of providers,
//!   preferences drawn in `[0.34, 1]`), medium (30 %, `[-0.54, 0.34]`),
//!   low (10 %, `[-1, -0.54]`);
//! * **adaptation** of a provider to the incoming queries — high (35 %,
//!   preferences in `[-0.2, 1]`), medium (60 %, `[-0.6, 0.6]`), low (5 %,
//!   `[-1, 0.2]`);
//! * **capacity** — low (10 %), medium (60 %), high (30 %), with
//!   high-capacity providers 3× more powerful than medium and 7× more
//!   powerful than low (calibrated so a high-capacity provider delivers
//!   100 work units per second).
//!
//! Class labels are assigned in exact proportions and then shuffled
//! independently (seeded), so the three dimensions are uncorrelated as in
//! the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlb_types::{
    Capacity, ConsumerId, ParticipantTable, Preference, ProviderId, QueryClass, SqlbError,
};

use crate::active::ActiveSet;
use crate::consumer::{ConsumerAgent, ConsumerConfig};
use crate::provider::{ProviderAgent, ProviderConfig};

/// How interesting a provider is to consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterestClass {
    /// Consumers have high interest in this provider.
    High,
    /// Consumers have medium interest in this provider.
    Medium,
    /// Consumers have low interest in this provider.
    Low,
}

impl InterestClass {
    /// The preference range consumers draw from for a provider of this
    /// class.
    pub fn preference_range(self) -> (f64, f64) {
        match self {
            InterestClass::High => (0.34, 1.0),
            InterestClass::Medium => (-0.54, 0.34),
            InterestClass::Low => (-1.0, -0.54),
        }
    }

    /// Short label used in experiment output (Table 3 columns).
    pub fn label(self) -> &'static str {
        match self {
            InterestClass::High => "high",
            InterestClass::Medium => "med",
            InterestClass::Low => "low",
        }
    }
}

/// How adapted a provider is to the incoming queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaptationClass {
    /// The provider likes most incoming queries.
    High,
    /// The provider is indifferent to most incoming queries.
    Medium,
    /// The provider dislikes most incoming queries.
    Low,
}

impl AdaptationClass {
    /// The preference range providers of this class draw from for each
    /// query class.
    pub fn preference_range(self) -> (f64, f64) {
        match self {
            AdaptationClass::High => (-0.2, 1.0),
            AdaptationClass::Medium => (-0.6, 0.6),
            AdaptationClass::Low => (-1.0, 0.2),
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            AdaptationClass::High => "high",
            AdaptationClass::Medium => "med",
            AdaptationClass::Low => "low",
        }
    }
}

/// The capacity class of a provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapacityClass {
    /// 30 % of providers; 100 units/s.
    High,
    /// 60 % of providers; a third of the high capacity.
    Medium,
    /// 10 % of providers; a seventh of the high capacity.
    Low,
}

impl CapacityClass {
    /// Reference capacity of a high-capacity provider, in units/s. With the
    /// paper's query costs (130/150 units) this yields the reported ≈1.3 s
    /// and ≈1.5 s processing times.
    pub const HIGH_UNITS_PER_SEC: f64 = 100.0;

    /// The capacity of a provider of this class.
    pub fn capacity(self) -> Capacity {
        match self {
            CapacityClass::High => Capacity::new(Self::HIGH_UNITS_PER_SEC),
            CapacityClass::Medium => Capacity::new(Self::HIGH_UNITS_PER_SEC / 3.0),
            CapacityClass::Low => Capacity::new(Self::HIGH_UNITS_PER_SEC / 7.0),
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CapacityClass::High => "high",
            CapacityClass::Medium => "med",
            CapacityClass::Low => "low",
        }
    }
}

/// The class profile of one provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderProfile {
    /// How interesting the provider is to consumers.
    pub interest: InterestClass,
    /// How adapted the provider is to the incoming queries.
    pub adaptation: AdaptationClass,
    /// The provider's capacity class.
    pub capacity: CapacityClass,
}

/// Configuration of a generated population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of consumers (`nbConsumers`, Table 2: 200).
    pub consumers: u32,
    /// Number of providers (`nbProviders`, Table 2: 400).
    pub providers: u32,
    /// Seed for all random draws (class shuffling and preference values).
    pub seed: u64,
    /// Fractions of high/medium/low consumer-interest providers.
    pub interest_fractions: [f64; 3],
    /// Fractions of high/medium/low adaptation providers.
    pub adaptation_fractions: [f64; 3],
    /// Fractions of high/medium/low capacity providers.
    pub capacity_fractions: [f64; 3],
    /// Per-consumer agent configuration.
    pub consumer_config: ConsumerConfig,
    /// Per-provider agent configuration.
    pub provider_config: ProviderConfig,
    /// Derive consumer preferences on demand from a hash of
    /// `(seed, consumer, provider)` instead of materializing `C × P`
    /// values. Off by default (the paper-faithful dense form); required in
    /// practice beyond ~10^4 participants, where the dense table is the
    /// memory wall. The procedural draw uses a different stream than the
    /// dense one, so the two modes produce different (but each internally
    /// deterministic) populations for the same seed.
    #[serde(default)]
    pub procedural_preferences: bool,
}

impl PopulationConfig {
    /// The paper's Table 2 configuration (200 consumers, 400 providers).
    pub fn paper(seed: u64) -> Self {
        PopulationConfig {
            consumers: 200,
            providers: 400,
            seed,
            interest_fractions: [0.6, 0.3, 0.1],
            adaptation_fractions: [0.35, 0.6, 0.05],
            capacity_fractions: [0.3, 0.6, 0.1],
            consumer_config: ConsumerConfig::default(),
            provider_config: ProviderConfig::default(),
            procedural_preferences: false,
        }
    }

    /// A scaled-down configuration with the same class mix, for fast tests
    /// and default experiment runs.
    pub fn scaled(consumers: u32, providers: u32, seed: u64) -> Self {
        PopulationConfig {
            consumers,
            providers,
            ..PopulationConfig::paper(seed)
        }
    }

    /// Validates that the class fractions are sane.
    pub fn validate(&self) -> Result<(), SqlbError> {
        for (name, fractions) in [
            ("interest", &self.interest_fractions),
            ("adaptation", &self.adaptation_fractions),
            ("capacity", &self.capacity_fractions),
        ] {
            let sum: f64 = fractions.iter().sum();
            if (sum - 1.0).abs() > 1e-6 || fractions.iter().any(|f| *f < 0.0) {
                return Err(SqlbError::InvalidConfig {
                    reason: format!("{name} class fractions must be non-negative and sum to 1"),
                });
            }
        }
        if self.consumers == 0 || self.providers == 0 {
            return Err(SqlbError::InvalidConfig {
                reason: "population needs at least one consumer and one provider".into(),
            });
        }
        Ok(())
    }
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig::paper(0)
    }
}

/// A generated population of consumer and provider agents.
///
/// Agents are stored in [`ParticipantTable`]s keyed by their stable
/// identifiers, so code that holds a [`ConsumerId`]/[`ProviderId`] can
/// never be redirected to another agent by a departure elsewhere in the
/// population.
///
/// The population also maintains incremental *active* indices (the
/// participants that have not departed), so per-arrival hot paths never
/// rescan the agent tables. Keep the agents' departed flags in sync by
/// departing participants through [`Population::depart_consumer`] /
/// [`Population::depart_provider`] rather than the agents directly.
#[derive(Debug, Clone)]
pub struct Population {
    /// The consumer agents, keyed by consumer id.
    pub consumers: ParticipantTable<ConsumerId, ConsumerAgent>,
    /// The provider agents, keyed by provider id.
    pub providers: ParticipantTable<ProviderId, ProviderAgent>,
    /// The class profile of each provider, keyed by provider id.
    pub profiles: ParticipantTable<ProviderId, ProviderProfile>,
    /// Consumers that have not departed, ascending id.
    active_consumers: ActiveSet<ConsumerId>,
    /// Providers that have not departed, ascending id.
    active_providers: ActiveSet<ProviderId>,
}

impl Population {
    /// Generates a population from a configuration.
    pub fn generate(config: &PopulationConfig) -> Result<Population, SqlbError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.providers as usize;

        let interest = assign_classes(
            n,
            &config.interest_fractions,
            [
                InterestClass::High,
                InterestClass::Medium,
                InterestClass::Low,
            ],
            &mut rng,
        );
        let adaptation = assign_classes(
            n,
            &config.adaptation_fractions,
            [
                AdaptationClass::High,
                AdaptationClass::Medium,
                AdaptationClass::Low,
            ],
            &mut rng,
        );
        let capacity = assign_classes(
            n,
            &config.capacity_fractions,
            [
                CapacityClass::High,
                CapacityClass::Medium,
                CapacityClass::Low,
            ],
            &mut rng,
        );

        let profiles: Vec<ProviderProfile> = (0..n)
            .map(|i| ProviderProfile {
                interest: interest[i],
                adaptation: adaptation[i],
                capacity: capacity[i],
            })
            .collect();

        let providers: Vec<ProviderAgent> = profiles
            .iter()
            .enumerate()
            .map(|(i, profile)| {
                let (lo, hi) = profile.adaptation.preference_range();
                let class_preferences = vec![
                    Preference::new(rng.random_range(lo..=hi)),
                    Preference::new(rng.random_range(lo..=hi)),
                ];
                ProviderAgent::new(
                    ProviderId::new(i as u32),
                    profile.capacity.capacity(),
                    class_preferences,
                    config.provider_config,
                )
            })
            .collect();

        let consumers: Vec<ConsumerAgent> = if config.procedural_preferences {
            // One shared range column for the whole population; every
            // consumer derives each preference on demand.
            let ranges: std::sync::Arc<[(f64, f64)]> = profiles
                .iter()
                .map(|profile| profile.interest.preference_range())
                .collect();
            (0..config.consumers)
                .map(|c| {
                    ConsumerAgent::procedural(
                        ConsumerId::new(c),
                        config.seed,
                        std::sync::Arc::clone(&ranges),
                        config.consumer_config,
                    )
                })
                .collect()
        } else {
            (0..config.consumers)
                .map(|c| {
                    let preferences: Vec<Preference> = profiles
                        .iter()
                        .map(|profile| {
                            let (lo, hi) = profile.interest.preference_range();
                            Preference::new(rng.random_range(lo..=hi))
                        })
                        .collect();
                    ConsumerAgent::new(ConsumerId::new(c), preferences, config.consumer_config)
                })
                .collect()
        };

        Ok(Population {
            active_consumers: (0..config.consumers).map(ConsumerId::new).collect(),
            active_providers: (0..config.providers).map(ProviderId::new).collect(),
            consumers: ParticipantTable::from_values(consumers),
            providers: ParticipantTable::from_values(providers),
            profiles: ParticipantTable::from_values(profiles),
        })
    }

    /// Identifiers of the consumers that have not departed, in ascending
    /// id order — exactly the sequence a filter over
    /// [`Population::consumers`] would produce, but maintained
    /// incrementally instead of rebuilt per read.
    pub fn active_consumer_ids(&self) -> &[ConsumerId] {
        self.active_consumers.ids()
    }

    /// Identifiers of the providers that have not departed, ascending.
    pub fn active_provider_ids(&self) -> &[ProviderId] {
        self.active_providers.ids()
    }

    /// Number of consumers that have not departed.
    pub fn active_consumer_count(&self) -> usize {
        self.active_consumers.len()
    }

    /// Number of providers that have not departed.
    pub fn active_provider_count(&self) -> usize {
        self.active_providers.len()
    }

    /// Marks a consumer as departed and drops it from the active index.
    /// Departed consumers stop issuing queries.
    pub fn depart_consumer(&mut self, consumer: ConsumerId) {
        if let Some(agent) = self.consumers.get_mut(consumer) {
            agent.depart();
        }
        self.active_consumers.remove(consumer);
    }

    /// Marks a provider as departed and drops it from the active index.
    pub fn depart_provider(&mut self, provider: ProviderId) {
        if let Some(agent) = self.providers.get_mut(provider) {
            agent.depart();
        }
        self.active_providers.remove(provider);
    }

    /// Re-admits a previously departed provider (scenario churn re-join):
    /// clears its departed flag and restores it to the active index at
    /// its ordered position. The agent's satisfaction history is kept —
    /// callers wanting the `Reset` re-join policy additionally call
    /// [`crate::ProviderAgent::reset_satisfaction_history`].
    pub fn rejoin_provider(&mut self, provider: ProviderId) {
        if let Some(agent) = self.providers.get_mut(provider) {
            agent.rejoin();
        }
        self.active_providers.insert(provider);
    }

    /// Debug-checks that the incremental active indices agree with a
    /// from-scratch rebuild over the agents' departed flags. The engine
    /// calls it after every departure assessment, but the O(n) rebuild
    /// only compiles in under the `strict-invariants` feature (and, as a
    /// `debug_assert`, only fires with debug assertions on): at 10^5+
    /// participants an unconditional per-assessment sweep dominates
    /// debug-profile test time.
    pub fn debug_assert_active_indices_consistent(&self) {
        #[cfg(feature = "strict-invariants")]
        self.assert_active_indices_consistent();
    }

    /// The unconditional form of the audit, used by the
    /// `strict-invariants` gate above and by tests that want the check
    /// regardless of features.
    #[cfg_attr(not(feature = "strict-invariants"), allow(dead_code))]
    fn assert_active_indices_consistent(&self) {
        debug_assert!(
            self.active_consumers.ids().iter().copied().eq(self
                .consumers
                .iter()
                .filter(|(_, c)| !c.has_departed())
                .map(|(id, _)| id)),
            "active-consumer index diverged from the departed flags"
        );
        debug_assert!(
            self.active_providers.ids().iter().copied().eq(self
                .providers
                .iter()
                .filter(|(_, p)| !p.has_departed())
                .map(|(id, _)| id)),
            "active-provider index diverged from the departed flags"
        );
    }

    /// Total system capacity: the aggregate capacity of all providers, in
    /// work units per second.
    pub fn total_capacity(&self) -> f64 {
        self.providers
            .values()
            .map(|p| p.capacity().units_per_sec())
            .sum()
    }

    /// Number of consumers.
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// Number of providers.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// The class profile of a provider.
    pub fn profile(&self, provider: ProviderId) -> Option<ProviderProfile> {
        self.profiles.get(provider).copied()
    }

    /// Mean treatment cost of the paper's query mix (used to convert a
    /// workload fraction into a query arrival rate).
    pub fn mean_query_cost() -> f64 {
        (QueryClass::Light.default_cost().value() + QueryClass::Heavy.default_cost().value()) / 2.0
    }
}

/// Assigns class labels in exact proportions (largest remainder on the last
/// class) and shuffles them.
fn assign_classes<T: Copy>(
    n: usize,
    fractions: &[f64; 3],
    classes: [T; 3],
    rng: &mut StdRng,
) -> Vec<T> {
    let mut labels = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (i, &class) in classes.iter().enumerate() {
        let count = if i == classes.len() - 1 {
            n - assigned
        } else {
            ((fractions[i] * n as f64).round() as usize).min(n - assigned)
        };
        labels.extend(std::iter::repeat_n(class, count));
        assigned += count;
    }
    labels.shuffle(rng);
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_population_has_expected_sizes_and_mix() {
        let pop = Population::generate(&PopulationConfig::paper(42)).unwrap();
        assert_eq!(pop.consumer_count(), 200);
        assert_eq!(pop.provider_count(), 400);

        let high_interest = pop
            .profiles
            .values()
            .filter(|p| p.interest == InterestClass::High)
            .count();
        let high_capacity = pop
            .profiles
            .values()
            .filter(|p| p.capacity == CapacityClass::High)
            .count();
        let low_adaptation = pop
            .profiles
            .values()
            .filter(|p| p.adaptation == AdaptationClass::Low)
            .count();
        assert_eq!(high_interest, 240); // 60 % of 400
        assert_eq!(high_capacity, 120); // 30 % of 400
        assert_eq!(low_adaptation, 20); // 5 % of 400
    }

    #[test]
    fn capacity_ratios_match_paper() {
        assert!(
            (CapacityClass::High.capacity().units_per_sec()
                / CapacityClass::Medium.capacity().units_per_sec()
                - 3.0)
                .abs()
                < 1e-9
        );
        assert!(
            (CapacityClass::High.capacity().units_per_sec()
                / CapacityClass::Low.capacity().units_per_sec()
                - 7.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn total_capacity_matches_class_mix() {
        let pop = Population::generate(&PopulationConfig::paper(1)).unwrap();
        let expected = 120.0 * 100.0 + 240.0 * (100.0 / 3.0) + 40.0 * (100.0 / 7.0);
        assert!((pop.total_capacity() - expected).abs() < 1e-6);
    }

    #[test]
    fn preferences_fall_in_class_ranges() {
        let pop = Population::generate(&PopulationConfig::scaled(20, 50, 7)).unwrap();
        for consumer in pop.consumers.values() {
            for (id, profile) in pop.profiles.iter() {
                let pref = consumer.preference_for(id).value();
                let (lo, hi) = profile.interest.preference_range();
                assert!(
                    pref >= lo - 1e-9 && pref <= hi + 1e-9,
                    "consumer preference {pref} outside [{lo}, {hi}]"
                );
            }
        }
        for (id, provider) in pop.providers.iter() {
            let (lo, hi) = pop.profiles[id].adaptation.preference_range();
            for class in [QueryClass::Light, QueryClass::Heavy] {
                let pref = provider.preference_for(class).value();
                assert!(pref >= lo - 1e-9 && pref <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn procedural_preferences_respect_class_ranges_and_are_deterministic() {
        let mut config = PopulationConfig::scaled(20, 50, 7);
        config.procedural_preferences = true;
        let pop = Population::generate(&config).unwrap();
        for consumer in pop.consumers.values() {
            for (id, profile) in pop.profiles.iter() {
                let pref = consumer.preference_for(id).value();
                let (lo, hi) = profile.interest.preference_range();
                assert!(
                    pref >= lo && pref <= hi,
                    "procedural preference {pref} outside [{lo}, {hi}]"
                );
            }
        }
        // Same seed reproduces the same table, bit for bit; another seed
        // diverges.
        let again = Population::generate(&config).unwrap();
        let mut other = config;
        other.seed = 8;
        let other = Population::generate(&other).unwrap();
        let (c, p) = (ConsumerId::new(3), ProviderId::new(11));
        let read = |pop: &Population| pop.consumers[c].preference_for(p).value().to_bits();
        assert_eq!(read(&pop), read(&again));
        assert_ne!(read(&pop), read(&other));
        // Provider-side state is independent of the consumer preference
        // mode: both modes share the provider rng stream.
        let dense = Population::generate(&PopulationConfig::scaled(20, 50, 7)).unwrap();
        assert_eq!(pop.profiles, dense.profiles);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Population::generate(&PopulationConfig::scaled(10, 30, 99)).unwrap();
        let b = Population::generate(&PopulationConfig::scaled(10, 30, 99)).unwrap();
        assert_eq!(a.profiles, b.profiles);
        for (ca, cb) in a.consumers.values().zip(b.consumers.values()) {
            for p in 0..30 {
                assert_eq!(
                    ca.preference_for(ProviderId::new(p)).value(),
                    cb.preference_for(ProviderId::new(p)).value()
                );
            }
        }
        let c = Population::generate(&PopulationConfig::scaled(10, 30, 100)).unwrap();
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = PopulationConfig::paper(0);
        config.interest_fractions = [0.5, 0.2, 0.1];
        assert!(Population::generate(&config).is_err());

        let mut config = PopulationConfig::paper(0);
        config.consumers = 0;
        assert!(Population::generate(&config).is_err());

        let mut config = PopulationConfig::paper(0);
        config.capacity_fractions = [1.2, -0.1, -0.1];
        assert!(Population::generate(&config).is_err());
    }

    #[test]
    fn mean_query_cost_is_140() {
        assert!((Population::mean_query_cost() - 140.0).abs() < 1e-12);
    }

    #[test]
    fn profile_lookup() {
        let pop = Population::generate(&PopulationConfig::scaled(5, 10, 3)).unwrap();
        assert!(pop.profile(ProviderId::new(0)).is_some());
        assert!(pop.profile(ProviderId::new(100)).is_none());
    }

    proptest! {
        #[test]
        fn prop_class_assignment_counts_sum_to_n(
            n in 1usize..500,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let labels = assign_classes(
                n,
                &[0.35, 0.6, 0.05],
                [AdaptationClass::High, AdaptationClass::Medium, AdaptationClass::Low],
                &mut rng,
            );
            prop_assert_eq!(labels.len(), n);
        }

        #[test]
        fn prop_scaled_population_generates(consumers in 1u32..20, providers in 1u32..60, seed in 0u64..50) {
            let pop = Population::generate(&PopulationConfig::scaled(consumers, providers, seed)).unwrap();
            prop_assert_eq!(pop.consumer_count(), consumers as usize);
            prop_assert_eq!(pop.provider_count(), providers as usize);
            prop_assert!(pop.total_capacity() > 0.0);
        }
    }
}
