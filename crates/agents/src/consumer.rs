//! The consumer agent.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use sqlb_core::intention::{consumer_intention, IntentionParams};
use sqlb_reputation::ReputationStore;
use sqlb_satisfaction::{consumer_query_outcome, ConsumerTracker};
use sqlb_types::{ConsumerId, Preference, ProviderId, Query};

/// Configuration of a consumer agent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumerConfig {
    /// The preference/reputation balance `υ` of Definition 7. The paper's
    /// evaluation uses `υ = 1` ("the consumers' intentions denote their
    /// preferences", Section 6.1).
    pub upsilon: f64,
    /// The `ε` constant of Definition 7.
    pub params: IntentionParams,
    /// Window size `k` of the consumer's satisfaction memory
    /// (`conSatSize`, Table 2: 200).
    pub memory: usize,
    /// Initial satisfaction (Table 2: 0.5).
    pub initial_satisfaction: f64,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        ConsumerConfig {
            upsilon: 1.0,
            params: IntentionParams::default(),
            memory: 200,
            initial_satisfaction: 0.5,
        }
    }
}

/// How a consumer's per-provider preference table is stored.
///
/// The materialized form is the paper's model verbatim; the procedural
/// form exists for million-participant populations, where `C × P`
/// materialized values (hundreds of gigabytes) are the scaling wall. A
/// procedural preference is a pure function of `(seed, consumer,
/// provider)` hashed through splitmix64 into the provider's
/// interest-class range, so it is stable across reads and deterministic
/// per seed while costing O(1) memory per consumer.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum PreferenceTable {
    /// Materialized values, one per provider
    /// (`values[p.index()] = prf_c(·, p)`).
    Dense(Vec<f64>),
    /// Hash-derived values, uniform in the provider's interest-class
    /// preference range. The range column is shared by every consumer of
    /// the population (one `(lo, hi)` pair per provider, total O(P)).
    Procedural {
        seed: u64,
        ranges: Arc<[(f64, f64)]>,
    },
}

/// An autonomous consumer.
///
/// The agent owns its (private) preference table over providers, derives
/// its intentions from preferences and provider reputation (Definition 7),
/// and tracks its own adequation/satisfaction/allocation-satisfaction over
/// the `k` last queries it issued — the values on which its departure
/// decision is based.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsumerAgent {
    id: ConsumerId,
    config: ConsumerConfig,
    /// Preference towards each provider, indexed by provider id.
    preferences: PreferenceTable,
    tracker: ConsumerTracker,
    departed: bool,
}

impl ConsumerAgent {
    /// Creates a consumer with the given per-provider preferences
    /// (`preferences[p.index()] = prf_c(·, p)`).
    pub fn new(id: ConsumerId, preferences: Vec<Preference>, config: ConsumerConfig) -> Self {
        ConsumerAgent {
            id,
            config,
            preferences: PreferenceTable::Dense(preferences.iter().map(|p| p.value()).collect()),
            tracker: ConsumerTracker::new(config.memory, config.initial_satisfaction),
            departed: false,
        }
    }

    /// Creates a consumer whose preferences are derived on demand from
    /// `seed` and the shared per-provider interest-class range column,
    /// instead of being materialized — O(1) memory per consumer at any
    /// provider count.
    pub fn procedural(
        id: ConsumerId,
        seed: u64,
        ranges: Arc<[(f64, f64)]>,
        config: ConsumerConfig,
    ) -> Self {
        ConsumerAgent {
            id,
            config,
            preferences: PreferenceTable::Procedural { seed, ranges },
            tracker: ConsumerTracker::new(config.memory, config.initial_satisfaction),
            departed: false,
        }
    }

    /// The consumer's identifier.
    pub fn id(&self) -> ConsumerId {
        self.id
    }

    /// The agent configuration.
    pub fn config(&self) -> ConsumerConfig {
        self.config
    }

    /// The consumer's preference for allocating queries to `provider`
    /// (`prf_c(q, p)`; the paper's evaluation uses per-provider rather than
    /// per-query preferences). Providers outside the table get a neutral
    /// preference.
    pub fn preference_for(&self, provider: ProviderId) -> Preference {
        let value = match &self.preferences {
            PreferenceTable::Dense(values) => values.get(provider.index()).copied().unwrap_or(0.0),
            PreferenceTable::Procedural { seed, ranges } => match ranges.get(provider.index()) {
                Some(&(lo, hi)) => lo + preference_unit(*seed, self.id, provider) * (hi - lo),
                None => 0.0,
            },
        };
        Preference::new(value)
    }

    /// The consumer's intention `ci_c(q, p)` for allocating `query` to
    /// `provider` (Definition 7), given the reputation store it consults.
    ///
    /// When `υ = 1` the intention is exactly the preference, matching the
    /// paper's experimental setting.
    pub fn intention_for(
        &self,
        _query: &Query,
        provider: ProviderId,
        reputation: &ReputationStore,
    ) -> f64 {
        let preference = self.preference_for(provider).value();
        if (self.config.upsilon - 1.0).abs() < f64::EPSILON {
            return preference;
        }
        consumer_intention(
            preference,
            reputation.reputation(provider).value(),
            self.config.upsilon,
            self.config.params,
        )
    }

    /// Records the outcome of one of this consumer's queries: the shown
    /// intentions over the whole candidate set and the subset that was
    /// selected. `n` is the number of results the consumer desired.
    pub fn record_allocation(&mut self, shown_intentions: &[f64], selected: &[usize], n: u32) {
        // Equations 1–2 in one allocation-free pass (bit-identical to the
        // Intention-slice variants; see `consumer_query_outcome`).
        if let Some((adequation, satisfaction)) =
            consumer_query_outcome(shown_intentions, selected, n)
        {
            self.tracker.record_values(adequation, satisfaction);
        }
    }

    /// Consumer adequation `δa(c)` (Definition 1).
    pub fn adequation(&self) -> f64 {
        self.tracker.adequation()
    }

    /// Consumer satisfaction `δs(c)` (Definition 2).
    pub fn satisfaction(&self) -> f64 {
        self.tracker.satisfaction()
    }

    /// Consumer allocation satisfaction `δas(c)` (Definition 3).
    pub fn allocation_satisfaction(&self) -> f64 {
        self.tracker.allocation_satisfaction()
    }

    /// Number of queries this consumer has issued (lifetime).
    pub fn issued_queries(&self) -> u64 {
        self.tracker.issued_queries()
    }

    /// Whether the consumer has left the system.
    pub fn has_departed(&self) -> bool {
        self.departed
    }

    /// Marks the consumer as departed. Departed consumers stop issuing
    /// queries.
    pub fn depart(&mut self) {
        self.departed = true;
    }
}

/// A uniform draw in `[0, 1)` that is a pure function of `(seed, consumer,
/// provider)`: the pair is packed into one word, stirred together with the
/// seed, and finalized with splitmix64. 53 mantissa bits of the output make
/// the float, so every representable step in `[0, 1)` is reachable.
fn preference_unit(seed: u64, consumer: ConsumerId, provider: ProviderId) -> f64 {
    let pair = ((consumer.raw() as u64) << 32) | provider.raw() as u64;
    let z = splitmix64(seed ^ pair.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The splitmix64 finalizer (Steele, Lea & Flood): a cheap, well-mixed
/// 64-bit permutation — adjacent inputs land far apart, which is exactly
/// what adjacent `(consumer, provider)` pairs need.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::{QueryClass, QueryId, SimTime};

    fn prefs(values: &[f64]) -> Vec<Preference> {
        values.iter().map(|&v| Preference::new(v)).collect()
    }

    fn query() -> Query {
        Query::single(
            QueryId::new(0),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    #[test]
    fn upsilon_one_makes_intention_equal_preference() {
        let c = ConsumerAgent::new(
            ConsumerId::new(0),
            prefs(&[0.7, -0.4]),
            ConsumerConfig::default(),
        );
        let reputation = ReputationStore::neutral();
        assert!((c.intention_for(&query(), ProviderId::new(0), &reputation) - 0.7).abs() < 1e-12);
        assert!(
            (c.intention_for(&query(), ProviderId::new(1), &reputation) - (-0.4)).abs() < 1e-12
        );
        // Unknown provider → neutral preference.
        assert_eq!(
            c.intention_for(&query(), ProviderId::new(9), &reputation),
            0.0
        );
    }

    #[test]
    fn upsilon_below_one_mixes_in_reputation() {
        let config = ConsumerConfig {
            upsilon: 0.5,
            ..ConsumerConfig::default()
        };
        let c = ConsumerAgent::new(ConsumerId::new(0), prefs(&[0.49]), config);
        let mut reputation = ReputationStore::new(sqlb_types::Reputation::NEUTRAL, 1.0);
        reputation.record_feedback(ProviderId::new(0), sqlb_types::Reputation::new(1.0));
        let i = c.intention_for(&query(), ProviderId::new(0), &reputation);
        assert!((i - 0.7).abs() < 1e-12, "geometric mean of 0.49 and 1.0");
        // A provider with (neutral) zero reputation drops the intention to
        // the negative branch.
        let c2 = ConsumerAgent::new(ConsumerId::new(1), prefs(&[0.49]), config);
        let i = c2.intention_for(&query(), ProviderId::new(0), &ReputationStore::neutral());
        assert!(i < 0.0);
    }

    #[test]
    fn satisfaction_tracks_allocations() {
        let mut c = ConsumerAgent::new(
            ConsumerId::new(0),
            prefs(&[0.9, -0.9]),
            ConsumerConfig::default(),
        );
        assert_eq!(c.satisfaction(), 0.5);
        // Always receives its preferred provider.
        for _ in 0..10 {
            c.record_allocation(&[0.9, -0.9], &[0], 1);
        }
        assert!(c.satisfaction() > c.adequation());
        assert!(c.allocation_satisfaction() > 1.0);
        assert_eq!(c.issued_queries(), 10);

        // Now always receives the provider it dislikes.
        let mut punished = ConsumerAgent::new(
            ConsumerId::new(1),
            prefs(&[0.9, -0.9]),
            ConsumerConfig::default(),
        );
        for _ in 0..10 {
            punished.record_allocation(&[0.9, -0.9], &[1], 1);
        }
        assert!(punished.satisfaction() < punished.adequation());
        assert!(punished.allocation_satisfaction() < 1.0);
    }

    #[test]
    fn departure_flag() {
        let mut c = ConsumerAgent::new(ConsumerId::new(0), prefs(&[]), ConsumerConfig::default());
        assert!(!c.has_departed());
        c.depart();
        assert!(c.has_departed());
    }

    #[test]
    fn procedural_preferences_are_stable_in_range_and_seeded() {
        let ranges: Arc<[(f64, f64)]> = vec![(0.34, 1.0), (-1.0, -0.54), (-0.54, 0.34)].into();
        let a = ConsumerAgent::procedural(
            ConsumerId::new(3),
            7,
            Arc::clone(&ranges),
            ConsumerConfig::default(),
        );
        for p in 0..3u32 {
            let (lo, hi) = ranges[p as usize];
            let v = a.preference_for(ProviderId::new(p)).value();
            assert!(v >= lo && v < hi, "preference {v} outside [{lo}, {hi})");
            // Pure function of (seed, consumer, provider): stable across
            // reads.
            assert_eq!(
                v.to_bits(),
                a.preference_for(ProviderId::new(p)).value().to_bits()
            );
        }
        // Out-of-table providers are neutral, like the dense form.
        assert_eq!(a.preference_for(ProviderId::new(99)).value(), 0.0);

        // Same seed → same table; different seed or consumer → different
        // draws (with overwhelming probability for this fixed case).
        let b = ConsumerAgent::procedural(
            ConsumerId::new(3),
            7,
            Arc::clone(&ranges),
            ConsumerConfig::default(),
        );
        let c = ConsumerAgent::procedural(
            ConsumerId::new(3),
            8,
            Arc::clone(&ranges),
            ConsumerConfig::default(),
        );
        let d = ConsumerAgent::procedural(ConsumerId::new(4), 7, ranges, ConsumerConfig::default());
        let p0 = ProviderId::new(0);
        assert_eq!(
            a.preference_for(p0).value().to_bits(),
            b.preference_for(p0).value().to_bits()
        );
        assert_ne!(
            a.preference_for(p0).value().to_bits(),
            c.preference_for(p0).value().to_bits()
        );
        assert_ne!(
            a.preference_for(p0).value().to_bits(),
            d.preference_for(p0).value().to_bits()
        );
    }
}
