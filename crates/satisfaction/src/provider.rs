//! Provider characterization (Section 3.2).

use serde::{Deserialize, Serialize};
use sqlb_types::Intention;

use crate::allocation_satisfaction;
use crate::memory::InteractionMemory;

/// Tracks a provider's characteristics.
///
/// * Adequation `δa(p)` (Definition 4) is computed over the provider's shown
///   values for the `k_proposed` last *proposed* queries (the set
///   `PQ^k_p`, whether allocated to it or not).
/// * Satisfaction `δs(p)` (Definition 5) is computed over the shown values
///   of the queries the provider actually *performed*. Following Table 2
///   (`proSatSize`: "k last treated queries") this uses a dedicated memory
///   of the last `k_performed` performed queries; see the crate-level
///   documentation for why the literal `SQ^k_p ⊆ PQ^k_p` reading is not
///   usable with the paper's own experimental parameters. The literal
///   variant is exposed as [`ProviderTracker::satisfaction_strict`].
/// * Allocation satisfaction `δas(p)` (Definition 6) is the ratio of the
///   two.
///
/// Like [`crate::ConsumerTracker`], the tracker is value-agnostic: feed it
/// intentions for the public view or preferences for the provider's private
/// view (the private view is what Definition 8 uses to balance preferences
/// against utilization).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderTracker {
    /// Shown values with a performed flag for every proposed query
    /// (performed or not), bounded by the proposed window. One ring
    /// buffer backs both Definition 4 (adequation, through the running
    /// `proposed_sum`) and the strict Definition 5 variant — recording a
    /// proposal used to maintain a second, value-only window with the
    /// same contents, which doubled the deque traffic on the allocation
    /// hot path (three tracker updates per candidate per query). Once
    /// full the vector becomes a ring: `proposed_head` is the oldest
    /// entry, and eviction overwrites in place.
    proposed_flags: Vec<(f64, bool)>,
    /// Index of the oldest entry once `proposed_flags` is at capacity
    /// (0 while still filling, so insertion order equals slice order).
    proposed_head: usize,
    /// Window bound of `proposed_flags` (eviction keys on this, not on
    /// the vector's allocation, which grows lazily with the fill).
    proposed_capacity: usize,
    /// Running sum of the values in `proposed_flags`, maintained with the
    /// same subtract-then-add order the dedicated memory used, so
    /// adequation stays bit-identical.
    proposed_sum: f64,
    /// Shown values for performed queries only (Table 2 semantics).
    performed: InteractionMemory,
    initial: f64,
    proposed_total: u64,
    performed_total: u64,
}

impl ProviderTracker {
    /// Creates a tracker with a `k_proposed`-query adequation window and a
    /// `k_performed`-query satisfaction window, reporting `initial` until
    /// observations exist.
    pub fn new(k_proposed: usize, k_performed: usize, initial: f64) -> Self {
        assert!(k_proposed > 0, "proposed window capacity must be positive");
        ProviderTracker {
            // Grows with the actual fill, like the interaction memory:
            // eviction keys on `proposed_capacity`, so starting
            // unallocated changes nothing but the idle footprint.
            proposed_flags: Vec::new(),
            proposed_head: 0,
            proposed_capacity: k_proposed,
            proposed_sum: 0.0,
            performed: InteractionMemory::new(k_performed),
            initial,
            proposed_total: 0,
            performed_total: 0,
        }
    }

    /// Creates a tracker with the paper's default configuration
    /// (`proSatSize = 500`, initial satisfaction 0.5). The proposal window
    /// uses the same size.
    pub fn paper_default() -> Self {
        ProviderTracker::new(500, 500, 0.5)
    }

    /// Records a query that was proposed to the provider, together with the
    /// value the provider showed for it (its intention, or its preference
    /// for the private view) and whether the query was allocated to it.
    ///
    /// The value is mapped from `[-1, 1]` to `[0, 1]` via `(x + 1)/2` as in
    /// Definitions 4–5.
    pub fn record_proposal(&mut self, shown: Intention, performed: bool) {
        let mapped = shown.to_unit().value();
        self.record_mapped(mapped, performed);
    }

    /// Records a proposal with an already-mapped `[0, 1]` value. Used when
    /// the caller applies its own mapping (e.g. preference-based private
    /// tracking).
    pub fn record_mapped(&mut self, mapped: f64, performed: bool) {
        let mapped = mapped.clamp(0.0, 1.0);
        if self.proposed_flags.len() == self.proposed_capacity {
            // Steady state: overwrite the oldest entry in place. Same
            // subtract-then-add order as the evict-and-push it replaces,
            // so adequation stays bit-identical.
            let slot = &mut self.proposed_flags[self.proposed_head];
            self.proposed_sum -= slot.0;
            *slot = (mapped, performed);
            self.proposed_head += 1;
            if self.proposed_head == self.proposed_capacity {
                self.proposed_head = 0;
            }
        } else {
            self.proposed_flags.push((mapped, performed));
        }
        self.proposed_sum += mapped;
        self.proposed_total += 1;
        if performed {
            self.performed.push(mapped);
            self.performed_total += 1;
        }
    }

    /// Provider adequation `δa(p)` (Definition 4). Returns the configured
    /// initial value until the provider has been proposed at least one
    /// query.
    pub fn adequation(&self) -> f64 {
        if self.proposed_flags.is_empty() {
            self.initial
        } else {
            self.proposed_sum / self.proposed_flags.len() as f64
        }
    }

    /// Provider satisfaction `δs(p)` over the last `k_performed` performed
    /// queries (Table 2 semantics). Returns the configured initial value
    /// until the provider has performed at least one query.
    pub fn satisfaction(&self) -> f64 {
        self.performed.mean_or(self.initial)
    }

    /// Provider satisfaction computed strictly as Definition 5: the average
    /// over the performed subset of the *proposed* window, and 0 when that
    /// subset is empty. A provider that has not been proposed anything yet
    /// reports the configured initial value (Table 2's
    /// `iniSatisfaction = 0.5`).
    ///
    /// This is the value the SQLB feedback loop relies on: a provider whose
    /// strict satisfaction collapses to 0 immediately receives a large `ω`
    /// weight in Equation 6, which is what "reduces starvation" in the
    /// paper's words.
    pub fn satisfaction_strict(&self) -> f64 {
        if self.proposed_flags.is_empty() {
            return self.initial;
        }
        // One pass over the window, no intermediate vector: the additions
        // happen oldest-first ([head..] then [..head], which is insertion
        // order while filling since head stays 0), the same order as a
        // filter-then-sum, so the result is bit-identical while the
        // (sample- and assessment-path) callers stop allocating per read.
        let (wrapped, oldest) = self.proposed_flags.split_at(self.proposed_head);
        let mut sum = 0.0;
        let mut count = 0usize;
        for &(v, performed) in oldest.iter().chain(wrapped) {
            if performed {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Provider allocation satisfaction `δas(p)` (Definition 6).
    pub fn allocation_satisfaction(&self) -> f64 {
        allocation_satisfaction(self.satisfaction(), self.adequation())
    }

    /// Total number of proposals recorded over the tracker's lifetime.
    pub fn proposed_queries(&self) -> u64 {
        self.proposed_total
    }

    /// Total number of performed queries recorded over the tracker's
    /// lifetime.
    pub fn performed_queries(&self) -> u64 {
        self.performed_total
    }

    /// Number of proposals currently remembered.
    pub fn proposal_window_len(&self) -> usize {
        self.proposed_flags.len()
    }

    /// Number of performed queries currently remembered.
    pub fn performed_window_len(&self) -> usize {
        self.performed.len()
    }

    /// The configured initial (pre-observation) value.
    pub fn initial(&self) -> f64 {
        self.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reports_initial_before_observations() {
        let t = ProviderTracker::paper_default();
        assert_eq!(t.adequation(), 0.5);
        assert_eq!(t.satisfaction(), 0.5);
        assert_eq!(t.allocation_satisfaction(), 1.0);
        assert_eq!(
            t.satisfaction_strict(),
            0.5,
            "no proposals yet: the initial value applies"
        );
    }

    #[test]
    fn adequation_follows_proposed_queries() {
        let mut t = ProviderTracker::new(10, 10, 0.5);
        t.record_proposal(Intention::new(1.0), false);
        t.record_proposal(Intention::new(-1.0), false);
        // Mapped values 1.0 and 0.0 → adequation 0.5.
        assert!((t.adequation() - 0.5).abs() < 1e-12);
        // No performed query yet → satisfaction stays at the initial value.
        assert_eq!(t.satisfaction(), 0.5);
        assert_eq!(t.proposed_queries(), 2);
        assert_eq!(t.performed_queries(), 0);
    }

    #[test]
    fn satisfaction_follows_performed_queries_only() {
        let mut t = ProviderTracker::new(10, 10, 0.5);
        // The provider is proposed queries it likes but performs only the
        // ones it dislikes: satisfaction < adequation.
        for _ in 0..5 {
            t.record_proposal(Intention::new(0.9), false);
            t.record_proposal(Intention::new(-0.9), true);
        }
        assert!(t.satisfaction() < t.adequation());
        assert!(t.allocation_satisfaction() < 1.0);
        assert_eq!(t.performed_window_len(), 5);
        assert_eq!(t.proposal_window_len(), 10);
    }

    #[test]
    fn performing_desired_queries_raises_allocation_satisfaction() {
        let mut t = ProviderTracker::new(10, 10, 0.5);
        for _ in 0..5 {
            t.record_proposal(Intention::new(0.9), true);
            t.record_proposal(Intention::new(-0.9), false);
        }
        assert!(t.satisfaction() > t.adequation());
        assert!(t.allocation_satisfaction() > 1.0);
    }

    #[test]
    fn strict_satisfaction_matches_definition_5() {
        let mut t = ProviderTracker::new(3, 10, 0.5);
        t.record_proposal(Intention::new(1.0), true); // mapped 1.0
        t.record_proposal(Intention::new(0.0), false);
        t.record_proposal(Intention::new(-1.0), true); // mapped 0.0
        assert!((t.satisfaction_strict() - 0.5).abs() < 1e-12);
        // Pushing a fourth proposal evicts the first performed entry from
        // the proposed window; the strict value now only sees the third.
        t.record_proposal(Intention::new(0.5), false);
        assert!((t.satisfaction_strict() - 0.0).abs() < 1e-12);
        // The Table-2-style satisfaction still remembers both performed
        // queries.
        assert!((t.satisfaction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mapped_values_are_clamped() {
        let mut t = ProviderTracker::new(4, 4, 0.5);
        t.record_mapped(4.0, true);
        t.record_mapped(-2.0, true);
        assert!((t.satisfaction() - 0.5).abs() < 1e-12);
        assert_eq!(t.adequation(), 0.5);
    }

    proptest! {
        #[test]
        fn prop_outputs_in_unit_interval(
            entries in proptest::collection::vec((-1.0f64..=1.0, proptest::bool::ANY), 0..200),
        ) {
            let mut t = ProviderTracker::new(16, 16, 0.5);
            for (v, performed) in &entries {
                t.record_proposal(Intention::new(*v), *performed);
            }
            prop_assert!((0.0..=1.0).contains(&t.adequation()));
            prop_assert!((0.0..=1.0).contains(&t.satisfaction()));
            prop_assert!((0.0..=1.0).contains(&t.satisfaction_strict()));
            prop_assert!(t.allocation_satisfaction() >= 0.0);
        }

        #[test]
        fn prop_counters_are_consistent(
            entries in proptest::collection::vec((-1.0f64..=1.0, proptest::bool::ANY), 0..200),
        ) {
            let mut t = ProviderTracker::new(8, 8, 0.5);
            for (v, performed) in &entries {
                t.record_proposal(Intention::new(*v), *performed);
            }
            let performed_count = entries.iter().filter(|(_, p)| *p).count() as u64;
            prop_assert_eq!(t.proposed_queries(), entries.len() as u64);
            prop_assert_eq!(t.performed_queries(), performed_count);
            prop_assert!(t.performed_window_len() <= 8);
            prop_assert!(t.proposal_window_len() <= 8);
        }
    }
}
