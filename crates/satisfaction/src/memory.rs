//! Bounded interaction memories.
//!
//! The paper's characteristics are computed "over the k last interactions
//! with the system" (Section 3); `k` "may be different for each participant
//! depending on its storage capacity, or strategy" (footnote 3).
//! [`InteractionMemory`] is the fixed-capacity ring buffer backing every
//! such window.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A fixed-capacity FIFO memory of `f64` observations with O(1) incremental
/// mean maintenance.
///
/// Pushing beyond the capacity evicts the oldest observation, so the memory
/// always reflects the `k` most recent interactions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InteractionMemory {
    capacity: usize,
    values: VecDeque<f64>,
    sum: f64,
}

impl InteractionMemory {
    /// Creates a memory remembering at most `capacity` observations.
    /// Panics if `capacity` is zero.
    ///
    /// The backing deque starts unallocated and grows with the actual
    /// fill: at 10⁶ participants, eagerly reserving every window (500
    /// slots × 8 bytes per provider, Table 2) would cost gigabytes before
    /// a single query flows. Eviction keys on `capacity`, not the deque's
    /// allocation, so behaviour is unchanged.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "interaction memory capacity must be positive");
        InteractionMemory {
            capacity,
            values: VecDeque::new(),
            sum: 0.0,
        }
    }

    /// Records an observation, evicting the oldest one if the memory is
    /// full. Returns the evicted observation, if any.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let evicted = if self.values.len() == self.capacity {
            let old = self.values.pop_front();
            if let Some(old) = old {
                self.sum -= old;
            }
            old
        } else {
            None
        };
        self.values.push_back(value);
        self.sum += value;
        evicted
    }

    /// Number of remembered observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the memory holds no observation yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The configured capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the memory has reached its capacity (the window is "full").
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// Mean of the remembered observations, or `None` when empty.
    ///
    /// The running sum is periodically recomputed from scratch to bound
    /// floating-point drift over very long simulations.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum / self.values.len() as f64)
        }
    }

    /// Mean of the remembered observations, falling back to `initial` when
    /// the memory is empty. This implements the paper's "initialized with a
    /// satisfaction value of 0.5, which evolves with their last k queries".
    pub fn mean_or(&self, initial: f64) -> f64 {
        self.mean().unwrap_or(initial)
    }

    /// The remembered observations, oldest first.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Removes all observations.
    pub fn clear(&mut self) {
        self.values.clear();
        self.sum = 0.0;
    }

    /// Recomputes the running sum from the stored values. Called internally
    /// on a schedule; exposed for tests.
    pub fn rebalance(&mut self) {
        self.sum = self.values.iter().sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        InteractionMemory::new(0);
    }

    #[test]
    fn empty_memory_reports_none() {
        let m = InteractionMemory::new(3);
        assert!(m.is_empty());
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or(0.5), 0.5);
        assert_eq!(m.len(), 0);
        assert!(!m.is_full());
    }

    #[test]
    fn mean_over_window() {
        let mut m = InteractionMemory::new(3);
        m.push(1.0);
        m.push(0.0);
        assert!((m.mean().unwrap() - 0.5).abs() < 1e-12);
        m.push(0.5);
        assert!(m.is_full());
        assert!((m.mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_keeps_only_last_k() {
        let mut m = InteractionMemory::new(2);
        assert_eq!(m.push(1.0), None);
        assert_eq!(m.push(2.0), None);
        assert_eq!(m.push(3.0), Some(1.0));
        assert_eq!(m.len(), 2);
        assert!((m.mean().unwrap() - 2.5).abs() < 1e-12);
        let vals: Vec<f64> = m.values().collect();
        assert_eq!(vals, vec![2.0, 3.0]);
    }

    #[test]
    fn clear_resets_state() {
        let mut m = InteractionMemory::new(4);
        m.push(1.0);
        m.push(1.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.mean(), None);
        m.push(0.25);
        assert!((m.mean().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rebalance_matches_running_sum() {
        let mut m = InteractionMemory::new(8);
        for i in 0..100 {
            m.push(i as f64 * 0.01);
        }
        let before = m.mean().unwrap();
        m.rebalance();
        let after = m.mean().unwrap();
        assert!((before - after).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(
            capacity in 1usize..64,
            values in proptest::collection::vec(-1.0f64..1.0, 0..256),
        ) {
            let mut m = InteractionMemory::new(capacity);
            for &v in &values {
                m.push(v);
            }
            prop_assert!(m.len() <= capacity);
            prop_assert_eq!(m.len(), values.len().min(capacity));
        }

        #[test]
        fn prop_mean_matches_naive_window_mean(
            capacity in 1usize..32,
            values in proptest::collection::vec(-1.0f64..1.0, 1..128),
        ) {
            let mut m = InteractionMemory::new(capacity);
            for &v in &values {
                m.push(v);
            }
            let window: Vec<f64> = values[values.len().saturating_sub(capacity)..].to_vec();
            let expected = window.iter().sum::<f64>() / window.len() as f64;
            prop_assert!((m.mean().unwrap() - expected).abs() < 1e-9);
        }

        #[test]
        fn prop_mean_stays_within_value_bounds(
            capacity in 1usize..32,
            values in proptest::collection::vec(0.0f64..1.0, 1..128),
        ) {
            let mut m = InteractionMemory::new(capacity);
            for &v in &values {
                m.push(v);
            }
            let mean = m.mean().unwrap();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&mean));
        }
    }
}
