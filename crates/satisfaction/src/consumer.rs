//! Consumer characterization (Section 3.1).

use serde::{Deserialize, Serialize};
use sqlb_types::Intention;

use crate::allocation_satisfaction;
use crate::memory::InteractionMemory;

/// Per-query consumer adequation `δa(c, q)` (Equation 1): the average of the
/// consumer's shown intentions towards the whole candidate set `P_q`, mapped
/// from `[-1, 1]` to `[0, 1]`.
///
/// Returns `None` when the candidate set is empty (infeasible query), which
/// the framework filters out earlier.
pub fn consumer_query_adequation(intentions_over_pq: &[Intention]) -> Option<f64> {
    if intentions_over_pq.is_empty() {
        return None;
    }
    let mean =
        intentions_over_pq.iter().map(|i| i.value()).sum::<f64>() / intentions_over_pq.len() as f64;
    Some((mean + 1.0) / 2.0)
}

/// Per-query consumer satisfaction `δs(c, q)` (Equation 2): the sum of the
/// consumer's shown intentions towards the providers that were *selected*,
/// divided by the *desired* number of results `n = q.n`, then mapped to
/// `[0, 1]`.
///
/// Dividing by the desired `n` rather than the obtained number of providers
/// is what lets the notion account for consumers that wanted more results
/// than they received (Section 3.1.2).
pub fn consumer_query_satisfaction(selected_intentions: &[Intention], n: u32) -> f64 {
    satisfaction_from_sum(selected_intentions.iter().map(|i| i.value()).sum(), n)
}

/// The tail of Equation 2: maps the sum of the selected intentions and
/// the desired result count to `[0, 1]`. Single home of the formula so
/// the slice, iterator and tracker entry points cannot drift apart.
#[inline]
fn satisfaction_from_sum(selected_sum: f64, n: u32) -> f64 {
    ((selected_sum / n.max(1) as f64) + 1.0) / 2.0
}

/// Equations 1–2 evaluated together over raw shown values, without
/// materializing `Intention` slices: returns the per-query
/// `(adequation, satisfaction)` pair, or `None` for an empty candidate
/// set. `selected` holds indices into `shown`; out-of-range indices are
/// ignored (a provider that vanished between gathering and recording).
///
/// Values are clamped into `[-1, 1]` exactly as [`Intention::new`] does,
/// and the sums run in slice order — the result is bit-identical to
/// clamping into a vector first and calling [`consumer_query_adequation`]
/// and [`consumer_query_satisfaction`], which is pinned by a test. This
/// is the allocation-free entry point the per-arrival hot path uses.
pub fn consumer_query_outcome(shown: &[f64], selected: &[usize], n: u32) -> Option<(f64, f64)> {
    if shown.is_empty() {
        return None;
    }
    let clamped_sum: f64 = shown.iter().map(|&v| Intention::new(v).value()).sum();
    let adequation = (clamped_sum / shown.len() as f64 + 1.0) / 2.0;
    let selected_sum: f64 = selected
        .iter()
        .filter_map(|&i| shown.get(i))
        .map(|&v| Intention::new(v).value())
        .sum();
    Some((adequation, satisfaction_from_sum(selected_sum, n)))
}

/// Tracks a consumer's characteristics over its `k` last issued queries
/// (the set `IQ^k_c`).
///
/// The tracker is value-agnostic: feed it intention-derived per-query values
/// to obtain the public (mediator-observable) characterization, or
/// preference-derived values for the consumer's private view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsumerTracker {
    adequations: InteractionMemory,
    satisfactions: InteractionMemory,
    initial: f64,
    issued: u64,
}

impl ConsumerTracker {
    /// Creates a tracker remembering the last `k` issued queries and
    /// reporting `initial` until observations exist (Table 2 uses
    /// `k = 200`, `initial = 0.5`).
    pub fn new(k: usize, initial: f64) -> Self {
        ConsumerTracker {
            adequations: InteractionMemory::new(k),
            satisfactions: InteractionMemory::new(k),
            initial,
            issued: 0,
        }
    }

    /// Creates a tracker with the paper's default configuration
    /// (`k = 200`, initial satisfaction `0.5`).
    pub fn paper_default() -> Self {
        ConsumerTracker::new(200, 0.5)
    }

    /// Records the outcome of one query allocation.
    ///
    /// * `intentions_over_pq` — the consumer's shown values towards every
    ///   provider of `P_q` (the vector `CI_q`);
    /// * `selected` — indices into `intentions_over_pq` of the providers the
    ///   query was allocated to (`\hat{P}_q`);
    /// * `n` — the number of providers the consumer wished for (`q.n`).
    ///
    /// Returns the per-query `(adequation, satisfaction)` pair that was
    /// recorded, or `None` if the candidate set was empty.
    pub fn record_allocation(
        &mut self,
        intentions_over_pq: &[Intention],
        selected: &[usize],
        n: u32,
    ) -> Option<(f64, f64)> {
        let adequation = consumer_query_adequation(intentions_over_pq)?;
        // Sum the selected intentions directly (same order, same f64
        // additions as collecting them first — no per-query allocation).
        let sum: f64 = selected
            .iter()
            .filter_map(|&i| intentions_over_pq.get(i))
            .map(|i| i.value())
            .sum();
        let satisfaction = satisfaction_from_sum(sum, n);
        self.adequations.push(adequation);
        self.satisfactions.push(satisfaction);
        self.issued += 1;
        Some((adequation, satisfaction))
    }

    /// Records pre-computed per-query adequation and satisfaction values.
    /// Useful when the caller computes Equations 1–2 itself (e.g. from
    /// preference values it does not want to expose).
    pub fn record_values(&mut self, adequation: f64, satisfaction: f64) {
        self.adequations.push(adequation.clamp(0.0, 1.0));
        self.satisfactions.push(satisfaction.clamp(0.0, 1.0));
        self.issued += 1;
    }

    /// Consumer adequation `δa(c)` (Definition 1).
    pub fn adequation(&self) -> f64 {
        self.adequations.mean_or(self.initial)
    }

    /// Consumer satisfaction `δs(c)` (Definition 2).
    pub fn satisfaction(&self) -> f64 {
        self.satisfactions.mean_or(self.initial)
    }

    /// Consumer allocation satisfaction `δas(c)` (Definition 3).
    pub fn allocation_satisfaction(&self) -> f64 {
        allocation_satisfaction(self.satisfaction(), self.adequation())
    }

    /// Total number of queries recorded over the tracker's lifetime (not
    /// bounded by `k`).
    pub fn issued_queries(&self) -> u64 {
        self.issued
    }

    /// Number of queries currently remembered (at most `k`).
    pub fn window_len(&self) -> usize {
        self.adequations.len()
    }

    /// The configured window size `k`.
    pub fn window_capacity(&self) -> usize {
        self.adequations.capacity()
    }

    /// The configured initial (pre-observation) value.
    pub fn initial(&self) -> f64 {
        self.initial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn intentions(values: &[f64]) -> Vec<Intention> {
        values.iter().map(|&v| Intention::new(v)).collect()
    }

    #[test]
    fn query_adequation_matches_equation_1() {
        // eWine example: intentions 1, 0.9, 0.7 towards p2, p4, p5 and -1
        // towards p1, p3 → mean = 0.12 → adequation = 0.56.
        let ci = intentions(&[-1.0, 1.0, -1.0, 0.9, 0.7]);
        let a = consumer_query_adequation(&ci).unwrap();
        assert!((a - 0.56).abs() < 1e-12);
    }

    #[test]
    fn query_adequation_empty_candidate_set_is_none() {
        assert_eq!(consumer_query_adequation(&[]), None);
    }

    #[test]
    fn query_satisfaction_divides_by_desired_n() {
        // Section 3.1.2: the mediator allocates the query only to a provider
        // with intention 1 while the consumer desired n = 2 results.
        let selected = intentions(&[1.0]);
        let s = consumer_query_satisfaction(&selected, 2);
        assert!((s - 0.75).abs() < 1e-12);
        // With n = 1 the same allocation fully satisfies the consumer.
        let s = consumer_query_satisfaction(&selected, 1);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_satisfaction_of_disliked_provider_is_low() {
        let s = consumer_query_satisfaction(&intentions(&[-1.0]), 1);
        assert!((s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_reports_initial_before_observations() {
        let t = ConsumerTracker::paper_default();
        assert_eq!(t.adequation(), 0.5);
        assert_eq!(t.satisfaction(), 0.5);
        assert_eq!(t.allocation_satisfaction(), 1.0);
        assert_eq!(t.window_capacity(), 200);
        assert_eq!(t.initial(), 0.5);
    }

    #[test]
    fn tracker_records_allocations() {
        let mut t = ConsumerTracker::new(10, 0.5);
        // Candidate set of three providers; the one the consumer likes most
        // is selected.
        let ci = intentions(&[0.8, -0.2, 0.4]);
        let (a, s) = t.record_allocation(&ci, &[0], 1).unwrap();
        assert!((a - ((0.8 - 0.2 + 0.4) / 3.0 + 1.0) / 2.0).abs() < 1e-12);
        assert!((s - 0.9).abs() < 1e-12);
        assert!(t.allocation_satisfaction() > 1.0);
        assert_eq!(t.issued_queries(), 1);
        assert_eq!(t.window_len(), 1);
    }

    #[test]
    fn tracker_punishing_allocations_drop_delta_as_below_one() {
        let mut t = ConsumerTracker::new(10, 0.5);
        let ci = intentions(&[0.9, -0.9]);
        for _ in 0..5 {
            // Always allocate to the provider the consumer dislikes.
            t.record_allocation(&ci, &[1], 1);
        }
        assert!(t.satisfaction() < t.adequation());
        assert!(t.allocation_satisfaction() < 1.0);
    }

    #[test]
    fn tracker_window_eviction() {
        let mut t = ConsumerTracker::new(2, 0.5);
        t.record_values(1.0, 1.0);
        t.record_values(1.0, 1.0);
        t.record_values(0.0, 0.0);
        // Window keeps the last two entries: (1,1) and (0,0).
        assert!((t.adequation() - 0.5).abs() < 1e-12);
        assert!((t.satisfaction() - 0.5).abs() < 1e-12);
        assert_eq!(t.issued_queries(), 3);
        assert_eq!(t.window_len(), 2);
    }

    #[test]
    fn record_values_clamps_into_unit_interval() {
        let mut t = ConsumerTracker::new(4, 0.5);
        t.record_values(7.0, -3.0);
        assert_eq!(t.adequation(), 1.0);
        assert_eq!(t.satisfaction(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_query_outcome_is_bit_identical_to_slice_variants(
            shown in proptest::collection::vec(-2.5f64..=2.5, 0..40),
            selected in proptest::collection::vec(0usize..48, 0..8),
            n in 1u32..5,
        ) {
            let outcome = consumer_query_outcome(&shown, &selected, n);
            let ints = intentions(&shown);
            let reference = consumer_query_adequation(&ints).map(|adequation| {
                let selected_ints: Vec<Intention> = selected
                    .iter()
                    .filter_map(|&i| ints.get(i).copied())
                    .collect();
                (adequation, consumer_query_satisfaction(&selected_ints, n))
            });
            match (outcome, reference) {
                (None, None) => {}
                (Some((a1, s1)), Some((a2, s2))) => {
                    prop_assert_eq!(a1.to_bits(), a2.to_bits());
                    prop_assert_eq!(s1.to_bits(), s2.to_bits());
                }
                other => prop_assert!(false, "outcome/reference disagree: {:?}", other),
            }
        }

        #[test]
        fn prop_per_query_values_in_unit_interval(
            ci in proptest::collection::vec(-1.0f64..=1.0, 1..40),
            n in 1u32..5,
        ) {
            let ints = intentions(&ci);
            let a = consumer_query_adequation(&ints).unwrap();
            prop_assert!((0.0..=1.0).contains(&a));
            // Select an arbitrary prefix of at most n providers.
            let selected: Vec<Intention> = ints.iter().copied().take(n as usize).collect();
            let s = consumer_query_satisfaction(&selected, n);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_tracker_outputs_in_unit_interval(
            entries in proptest::collection::vec((-1.0f64..=1.0, -1.0f64..=1.0), 0..100),
        ) {
            let mut t = ConsumerTracker::new(16, 0.5);
            for (a, s) in &entries {
                t.record_values((*a + 1.0) / 2.0, (*s + 1.0) / 2.0);
            }
            prop_assert!((0.0..=1.0).contains(&t.adequation()));
            prop_assert!((0.0..=1.0).contains(&t.satisfaction()));
            prop_assert!(t.allocation_satisfaction() >= 0.0);
        }

        #[test]
        fn prop_selecting_best_provider_never_hurts(
            ci in proptest::collection::vec(-1.0f64..=1.0, 2..20),
        ) {
            // Allocating to the provider with the highest intention yields
            // at least the satisfaction of any other single allocation.
            let ints = intentions(&ci);
            let best = ci
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            let s_best = consumer_query_satisfaction(&[ints[best]], 1);
            for &intention in &ints {
                let s_i = consumer_query_satisfaction(&[intention], 1);
                prop_assert!(s_best >= s_i - 1e-12);
            }
        }
    }
}
