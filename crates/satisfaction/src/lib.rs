//! # sqlb-satisfaction
//!
//! The participant characterization model of Section 3 of the SQLB paper.
//!
//! The model defines, for both consumers and providers, three quantities
//! computed over the participant's `k` last interactions with the system:
//!
//! * **adequation** `δa` — how well the system *could* serve the
//!   participant ("How well do my expectations correspond to the providers
//!   that were able to deal with my last queries?" / "… to the last queries
//!   that have been proposed to me?");
//! * **satisfaction** `δs` — how well the system *actually* served it
//!   ("How far the providers that have dealt with my last queries meet my
//!   expectations?" / "How well the last queries I have treated meet my
//!   expectations?");
//! * **allocation satisfaction** `δas = δs / δa` — how well the query
//!   allocation *method* works for the participant, independently of whether
//!   the system contains interesting counterparts at all.
//!
//! The model is deliberately value-agnostic: the same trackers can be fed
//! with *intentions* (public — this is what the mediator can observe) or
//! with *preferences* (private — only the participant itself can do this),
//! which is exactly how the paper distinguishes Figure 4(a) from
//! Figure 4(b).
//!
//! ## Window semantics
//!
//! Section 3 defines provider satisfaction over `SQ^k_p ⊆ PQ^k_p`, the
//! performed subset of the `k` last *proposed* queries, and Definition 5
//! assigns satisfaction 0 when that subset is empty; Table 2 additionally
//! initializes every participant at 0.5 before it has any history.
//! [`provider::ProviderTracker`] therefore exposes two readings:
//!
//! * [`provider::ProviderTracker::satisfaction_strict`] — the literal
//!   Definition 5 (0 on an empty performed subset, the initial value before
//!   any proposal). This is the value SQLB's Equation 6 feedback and the
//!   departure rules operate on: a provider whose performed subset dries up
//!   is exactly the punished/starved provider the framework must react to.
//! * [`provider::ProviderTracker::satisfaction`] — a smoothed variant over
//!   a dedicated memory of the last `k` *performed* queries (Table 2's
//!   `proSatSize`, "k last treated queries"), useful when a long-run
//!   average is wanted rather than the instantaneous Definition 5 signal.

#![warn(missing_docs)]

pub mod consumer;
pub mod memory;
pub mod provider;

pub use consumer::{
    consumer_query_adequation, consumer_query_outcome, consumer_query_satisfaction, ConsumerTracker,
};
pub use memory::InteractionMemory;
pub use provider::ProviderTracker;

/// Computes an allocation satisfaction `δas = δs / δa` (Definitions 3
/// and 6), handling the degenerate `δa = 0` case.
///
/// The paper gives `δas` the range `[0, ∞]`: when the system is completely
/// inadequate to a participant (`δa = 0`) but the participant is
/// nevertheless satisfied, the method is doing infinitely well by it; when
/// both are zero the method is neutral (1).
pub fn allocation_satisfaction(satisfaction: f64, adequation: f64) -> f64 {
    if adequation > 0.0 {
        satisfaction / adequation
    } else if satisfaction > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_satisfaction_ratio() {
        assert!((allocation_satisfaction(0.8, 0.4) - 2.0).abs() < 1e-12);
        assert!((allocation_satisfaction(0.3, 0.6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn allocation_satisfaction_neutral_when_equal() {
        assert!((allocation_satisfaction(0.5, 0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_satisfaction_degenerate_cases() {
        assert_eq!(allocation_satisfaction(0.5, 0.0), f64::INFINITY);
        assert_eq!(allocation_satisfaction(0.0, 0.0), 1.0);
        assert_eq!(allocation_satisfaction(0.0, 0.5), 0.0);
    }
}
