//! The asynchronous mediation reactor.
//!
//! The thread-per-participant model of [`crate::runtime`] keeps one OS
//! thread alive per registered endpoint, which caps a mediation host at a
//! few thousand participants. The reactor replaces that model: participant
//! endpoints become *polled state machines* driven by a single event loop,
//! so one host can run tens of thousands of endpoints in one thread.
//!
//! # How a wave runs
//!
//! One mediation round ("wave") multiplexes one batched intention request
//! per distinct participant (Algorithm 1, lines 2–5, over a whole batch of
//! queries). Each endpoint touched by the wave enters a tiny state
//! machine:
//!
//! ```text
//!            deliver                 poll               reply
//!   Idle ──────────────▶ Pending ──────────▶ Ready ────────────▶ Answered
//!                           │ (readiness queue / timer heap)
//!                           │ deadline passes
//!                           ▼
//!                        TimedOut   →   reply read as indifference (0)
//! ```
//!
//! * endpoints whose reply is available immediately go straight onto the
//!   **readiness queue** and are polled by the event loop in FIFO order;
//! * endpoints with a modelled latency ([`Latency::After`]) are parked in
//!   a **timer heap** and re-queued when the reactor's clock reaches their
//!   readiness instant;
//! * endpoints that never answer ([`Latency::Never`]) stay `Pending` until
//!   the **per-wave deadline** (the configured timeout) passes, at which
//!   point every outstanding reply degrades to indifference — exactly the
//!   *waituntil / timeout* step of Algorithm 1, line 5.
//!
//! The reactor clock is **virtual**: it advances to the next timer (or to
//! the deadline) instead of sleeping, so a 50 000-endpoint wave with a
//! 200 ms timeout completes in microseconds of wall time and the
//! timeout-to-indifference transition happens at *exactly* the configured
//! deadline, reproducibly. Wall-clock latency modelling stays available
//! through the threaded backend ([`run_wave_threaded`]), which interprets
//! the same wave with real sleeps and a real deadline — the two backends
//! agree on every reply value, which is what keeps simulation report
//! digests bit-identical between them.
//!
//! # Entry points
//!
//! [`AsyncMediator`] is the owned-endpoint facade (the drop-in analogue of
//! [`crate::runtime::MediationRuntime`]): register endpoints, then call
//! [`AsyncMediator::gather_batch`] / [`AsyncMediator::mediate_batch`] —
//! the native entry points — or the single-query conveniences built on
//! them. Embedders that already own their participants (the simulator
//! engine) build an [`IntentionWave`] directly, borrowing their agents in
//! the wave's jobs, and hand it to [`Reactor::run_wave`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::time::Duration;

use sqlb_core::allocation::{Allocation, AllocationMethod, Bid, CandidateInfo};
use sqlb_core::{Mediator, MediatorState};
use sqlb_obs::{Counter, EventKind, Histogram, Obs};
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

use crate::runtime::{ConsumerEndpoint, ProviderEndpoint, RuntimeConfig};

/// Pre-resolved observability instruments of a [`Reactor`] — no-op
/// handles until [`Reactor::set_obs`] installs an enabled
/// [`sqlb_obs::Obs`], so the event loop pays one predictable branch per
/// wave when observability is off. Flight-recorder events are stamped
/// with the reactor's *virtual* clock, so a recorded trace lines up
/// with the deterministic simulation timeline rather than wall time.
#[derive(Debug, Default)]
struct ReactorMetrics {
    /// Waves the event loop has run.
    waves: Counter,
    /// Requests delivered to endpoint state machines.
    requests_delivered: Counter,
    /// Replies that arrived before (or exactly at) a deadline.
    replies_answered: Counter,
    /// Requests that degraded to indifference at a deadline.
    replies_timed_out: Counter,
    /// Per-wave virtual gather latency, seconds.
    wave_virtual_seconds: Histogram,
}

impl ReactorMetrics {
    /// Resolves every instrument from `obs` (no-ops when disabled).
    fn resolve(obs: &Obs) -> Self {
        ReactorMetrics {
            waves: obs.counter("reactor_waves"),
            requests_delivered: obs.counter("reactor_requests_delivered"),
            replies_answered: obs.counter("reactor_replies_answered"),
            replies_timed_out: obs.counter("reactor_replies_timed_out"),
            wave_virtual_seconds: obs.histogram("reactor_wave_virtual_seconds"),
        }
    }
}

/// When an endpoint's reply becomes available after a request is
/// delivered to it.
///
/// The reactor interprets delays in *virtual* time (its clock jumps, it
/// never sleeps); the threaded backend interprets the same values in real
/// time. Either way a reply that would land after the wave deadline is
/// read as indifference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Latency {
    /// The reply is available as soon as the event loop polls the
    /// endpoint (an in-process participant).
    #[default]
    Immediate,
    /// The reply becomes available after the given delay (a remote or
    /// busy participant). A delay at or under the wave timeout arrives; a
    /// longer one degrades to indifference.
    After(Duration),
    /// The endpoint never answers (crashed or partitioned participant);
    /// every reply expected from it degrades to indifference when the
    /// deadline passes.
    Never,
}

/// A consumer's reply to one wave: per query, its intention towards every
/// candidate provider of that query (the vector `CI_q`, Definition 7).
pub type ConsumerBatchAnswer = Vec<(QueryId, Vec<(ProviderId, f64)>)>;

/// A provider's reply to one wave: one [`ProviderAnswer`] per query of the
/// wave that listed it as a candidate.
pub type ProviderBatchAnswer = Vec<ProviderAnswer>;

/// One provider's answer for one query of a wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderAnswer {
    /// The query the answer is about.
    pub query: QueryId,
    /// The provider's intention `pi_p(q)` (Definition 8).
    pub intention: f64,
    /// The provider's current utilization, as shown to the mediator
    /// (methods that do not read it ignore it; the Capacity-based
    /// baseline relies on it).
    pub utilization: f64,
    /// The provider's bid, when the wave requested one (economic
    /// methods).
    pub bid: Option<Bid>,
}

type ConsumerJob<'a> = Box<dyn FnOnce() -> ConsumerBatchAnswer + Send + 'a>;
type ProviderJob<'a> = Box<dyn FnOnce() -> ProviderBatchAnswer + Send + 'a>;

/// A consumer endpoint temporarily detached from the facade for one wave,
/// together with its share of the wave's requests.
type DetachedConsumer = (
    ConsumerId,
    Box<dyn ConsumerEndpoint>,
    Vec<(Query, Vec<ProviderId>)>,
);
/// A provider endpoint temporarily detached from the facade for one wave.
type DetachedProvider = (ProviderId, Box<dyn ProviderEndpoint>, Vec<Query>);

struct ConsumerTask<'a> {
    id: ConsumerId,
    latency: Option<Latency>,
    job: ConsumerJob<'a>,
}

struct ProviderTask<'a> {
    id: ProviderId,
    latency: Option<Latency>,
    job: ProviderJob<'a>,
}

/// One wave of intention requests: at most one batched request per
/// distinct participant, each carried by a *job* (the closure that
/// computes the participant's reply when its state machine reaches
/// `Ready`).
///
/// Jobs may borrow the caller's participant state — the simulator builds
/// waves whose jobs borrow its agents directly — which is why the wave is
/// lifetime-parameterized and consumed by a single run.
#[derive(Default)]
pub struct IntentionWave<'a> {
    consumers: Vec<ConsumerTask<'a>>,
    providers: Vec<ProviderTask<'a>>,
}

impl<'a> IntentionWave<'a> {
    /// Creates an empty wave.
    pub fn new() -> Self {
        IntentionWave::default()
    }

    /// Adds a consumer's batched intention request. `latency` overrides
    /// the endpoint's latency for this wave; `None` means the reactor
    /// falls back to the endpoint's registered profile, while the
    /// threaded backend — which keeps no profiles — treats `None` as
    /// [`Latency::Immediate`]. Pass an explicit `Some` when a wave must
    /// behave identically on both backends with a non-immediate latency.
    pub fn consumer(
        &mut self,
        id: ConsumerId,
        latency: Option<Latency>,
        job: impl FnOnce() -> ConsumerBatchAnswer + Send + 'a,
    ) {
        self.consumers.push(ConsumerTask {
            id,
            latency,
            job: Box::new(job),
        });
    }

    /// Adds a provider's batched intention request. `latency` overrides
    /// the endpoint's latency for this wave; `None` resolves as described
    /// on [`IntentionWave::consumer`].
    pub fn provider(
        &mut self,
        id: ProviderId,
        latency: Option<Latency>,
        job: impl FnOnce() -> ProviderBatchAnswer + Send + 'a,
    ) {
        self.providers.push(ProviderTask {
            id,
            latency,
            job: Box::new(job),
        });
    }

    /// Number of participant requests in the wave.
    pub fn len(&self) -> usize {
        self.consumers.len() + self.providers.len()
    }

    /// Whether the wave carries no request at all.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty() && self.providers.is_empty()
    }
}

/// The replies of one wave, in the order the requests were added.
/// `None` marks a participant whose reply missed the deadline (or that
/// never answers): every value expected from it is read as indifference.
pub struct WaveReplies {
    /// Per consumer request: the consumer and its reply, if it arrived.
    pub consumers: Vec<(ConsumerId, Option<ConsumerBatchAnswer>)>,
    /// Per provider request: the provider and its reply, if it arrived.
    pub providers: Vec<(ProviderId, Option<ProviderBatchAnswer>)>,
}

impl WaveReplies {
    /// Assembles the candidate information of a batch of queries from the
    /// wave's replies — one [`CandidateInfo`] vector per input query, in
    /// input order, with indifference (`0`) filled in for every missing
    /// answer (Algorithm 1, line 5).
    pub fn into_candidate_infos(
        self,
        requests: &[(Query, Vec<ProviderId>)],
    ) -> Vec<Vec<CandidateInfo>> {
        let mut consumer_intentions: HashMap<(QueryId, ProviderId), f64> = HashMap::new();
        for (_, reply) in self.consumers {
            let Some(reply) = reply else { continue };
            for (query, per_provider) in reply {
                for (provider, intention) in per_provider {
                    consumer_intentions.insert((query, provider), intention);
                }
            }
        }
        let mut provider_answers: HashMap<(QueryId, ProviderId), ProviderAnswer> = HashMap::new();
        for (provider, reply) in self.providers {
            let Some(reply) = reply else { continue };
            for answer in reply {
                provider_answers.insert((answer.query, provider), answer);
            }
        }
        requests
            .iter()
            .map(|(query, candidates)| {
                candidates
                    .iter()
                    .map(|&p| {
                        let ci = consumer_intentions
                            .get(&(query.id, p))
                            .copied()
                            .unwrap_or(0.0);
                        let answer = provider_answers.get(&(query.id, p));
                        let mut info = CandidateInfo::new(p)
                            .with_consumer_intention(ci)
                            .with_provider_intention(answer.map_or(0.0, |a| a.intention))
                            .with_utilization(answer.map_or(0.0, |a| a.utilization));
                        if let Some(bid) = answer.and_then(|a| a.bid) {
                            info = info.with_bid(bid);
                        }
                        info
                    })
                    .collect()
            })
            .collect()
    }
}

/// What happened during one wave, in the reactor's virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundStats {
    /// Identifier of the wave (1-based, monotonically increasing).
    pub wave: u64,
    /// Requests delivered to endpoints.
    pub delivered: usize,
    /// Replies that arrived before (or exactly at) the deadline.
    pub answered: usize,
    /// Requests still outstanding when the deadline passed; their values
    /// were read as indifference.
    pub timed_out: usize,
    /// Virtual time the wave took: the arrival instant of the last reply,
    /// or exactly the configured timeout when any endpoint timed out.
    pub virtual_elapsed: Duration,
    /// Whether the wave ran into its deadline (`timed_out > 0`).
    pub hit_deadline: bool,
}

/// Per-endpoint bookkeeping the reactor keeps for registered endpoints.
#[derive(Debug, Clone, Copy, Default)]
struct EndpointProfile {
    latency: Latency,
    waves_served: u64,
    timeouts: u64,
}

/// The mediation reactor: a single-threaded event loop driving
/// participant-endpoint state machines over a virtual clock.
///
/// Registration is light (one small profile per endpoint, no thread, no
/// channel), which is what lets one reactor track tens of thousands of
/// endpoints. Waves reference endpoints by id; an id that was never
/// registered is served with the default profile (its reply is
/// [`Latency::Immediate`]).
pub struct Reactor {
    config: RuntimeConfig,
    consumers: HashMap<ConsumerId, EndpointProfile>,
    providers: HashMap<ProviderId, EndpointProfile>,
    /// Virtual clock, in nanoseconds. Advances monotonically across waves.
    now_nanos: u64,
    waves: u64,
    last_round: RoundStats,
    /// Observability sink (disabled by default).
    obs: Obs,
    /// Pre-resolved instruments (see [`ReactorMetrics`]).
    metrics: ReactorMetrics,
}

impl Reactor {
    /// Creates a reactor with the given timeout/bid configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Reactor {
            config,
            consumers: HashMap::new(),
            providers: HashMap::new(),
            now_nanos: 0,
            waves: 0,
            last_round: RoundStats::default(),
            obs: Obs::disabled(),
            metrics: ReactorMetrics::default(),
        }
    }

    /// The reactor's configuration.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// Installs an observability sink and resolves the reactor's
    /// instruments against it. Wave events recorded from here on are
    /// stamped with the reactor's virtual clock. With a disabled sink
    /// (the default) every instrument stays a no-op and the event loop
    /// is unchanged.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.metrics = ReactorMetrics::resolve(obs);
        self.obs = obs.clone();
    }

    /// Registers a consumer endpoint with a latency profile.
    pub fn register_consumer(&mut self, id: ConsumerId, latency: Latency) {
        self.consumers.insert(
            id,
            EndpointProfile {
                latency,
                ..EndpointProfile::default()
            },
        );
    }

    /// Registers a provider endpoint with a latency profile.
    pub fn register_provider(&mut self, id: ProviderId, latency: Latency) {
        self.providers.insert(
            id,
            EndpointProfile {
                latency,
                ..EndpointProfile::default()
            },
        );
    }

    /// Removes a consumer endpoint (e.g. on departure).
    pub fn deregister_consumer(&mut self, id: ConsumerId) {
        self.consumers.remove(&id);
    }

    /// Removes a provider endpoint (e.g. on departure).
    pub fn deregister_provider(&mut self, id: ProviderId) {
        self.providers.remove(&id);
    }

    /// Number of registered consumer endpoints.
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// Number of registered provider endpoints.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Number of waves the reactor has run.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// The reactor's virtual clock (total virtual time across all waves).
    pub fn virtual_now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos)
    }

    /// Statistics of the most recent wave.
    pub fn last_round(&self) -> RoundStats {
        self.last_round
    }

    /// How many waves a registered provider endpoint missed the deadline
    /// of (0 for unregistered ids).
    pub fn provider_timeouts(&self, id: ProviderId) -> u64 {
        self.providers.get(&id).map_or(0, |p| p.timeouts)
    }

    /// Runs one wave to completion on the event loop and returns its
    /// replies.
    ///
    /// The loop drains the readiness queue, advancing the virtual clock
    /// to the next parked timer whenever the queue runs dry, until every
    /// reply has arrived or the clock reaches the wave deadline — at
    /// which point every outstanding request is marked timed out and its
    /// values degrade to indifference.
    pub fn run_wave(&mut self, wave: IntentionWave<'_>) -> WaveReplies {
        self.waves += 1;
        let start = self.now_nanos;
        let timeout_nanos = duration_nanos(self.config.timeout);
        let deadline = start.saturating_add(timeout_nanos);

        let consumer_count = wave.consumers.len();
        let total = wave.consumers.len() + wave.providers.len();
        self.metrics.waves.inc();
        self.metrics.requests_delivered.add(total as u64);
        if self.obs.is_enabled() {
            self.obs.record(
                Duration::from_nanos(start).as_secs_f64(),
                EventKind::WaveBegun {
                    wave: self.waves,
                    delivered: total as u64,
                },
            );
        }

        // Per-task job + reply storage. Tokens < consumer_count index the
        // consumer tasks; the rest index the provider tasks.
        let mut consumer_jobs: Vec<Option<ConsumerJob<'_>>> = Vec::with_capacity(consumer_count);
        let mut consumer_replies: Vec<(ConsumerId, Option<ConsumerBatchAnswer>)> =
            Vec::with_capacity(consumer_count);
        let mut provider_jobs: Vec<Option<ProviderJob<'_>>> =
            Vec::with_capacity(wave.providers.len());
        let mut provider_replies: Vec<(ProviderId, Option<ProviderBatchAnswer>)> =
            Vec::with_capacity(wave.providers.len());

        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut timers: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut pending = vec![true; total];

        // Delivery: every task enters the state machine according to its
        // effective latency (wave override, else registered profile).
        for (token, task) in wave.consumers.into_iter().enumerate() {
            let profile = self.consumers.get(&task.id).copied().unwrap_or_default();
            Self::deliver(
                token,
                task.latency.unwrap_or(profile.latency),
                start,
                deadline,
                &mut ready,
                &mut timers,
            );
            consumer_jobs.push(Some(task.job));
            consumer_replies.push((task.id, None));
        }
        for (i, task) in wave.providers.into_iter().enumerate() {
            let token = consumer_count + i;
            let profile = self.providers.get(&task.id).copied().unwrap_or_default();
            Self::deliver(
                token,
                task.latency.unwrap_or(profile.latency),
                start,
                deadline,
                &mut ready,
                &mut timers,
            );
            provider_jobs.push(Some(task.job));
            provider_replies.push((task.id, None));
        }

        // The event loop.
        let mut answered = 0usize;
        let mut clock = start;
        loop {
            while let Some(token) = ready.pop_front() {
                if token < consumer_count {
                    let job = consumer_jobs[token].take().expect("job polled once");
                    consumer_replies[token].1 = Some(job());
                } else {
                    let job = provider_jobs[token - consumer_count]
                        .take()
                        .expect("job polled once");
                    provider_replies[token - consumer_count].1 = Some(job());
                }
                pending[token] = false;
                answered += 1;
            }
            if answered == total {
                break;
            }
            match timers.pop() {
                // A parked endpoint becomes ready: advance the clock to
                // its readiness instant and poll it on the next turn.
                Some(Reverse((at, token))) => {
                    clock = at;
                    ready.push_back(token);
                }
                // Nothing can become ready before the deadline: the wave
                // times out *exactly* at the deadline.
                None => {
                    clock = deadline;
                    break;
                }
            }
        }

        let timed_out = total - answered;
        self.now_nanos = clock;
        self.last_round = RoundStats {
            wave: self.waves,
            delivered: total,
            answered,
            timed_out,
            virtual_elapsed: Duration::from_nanos(clock - start),
            hit_deadline: timed_out > 0,
        };
        self.metrics.replies_answered.add(answered as u64);
        self.metrics
            .wave_virtual_seconds
            .record(self.last_round.virtual_elapsed.as_secs_f64());
        if timed_out > 0 {
            self.metrics.replies_timed_out.add(timed_out as u64);
            if self.obs.is_enabled() {
                self.obs.record(
                    Duration::from_nanos(clock).as_secs_f64(),
                    EventKind::TimeoutIndifference {
                        wave: self.waves,
                        count: timed_out as u64,
                    },
                );
            }
        }

        // Lifetime bookkeeping on the registered profiles.
        for (token, (id, reply)) in consumer_replies.iter().enumerate() {
            if let Some(profile) = self.consumers.get_mut(id) {
                profile.waves_served += 1;
                if pending[token] && reply.is_none() {
                    profile.timeouts += 1;
                }
            }
        }
        for (i, (id, reply)) in provider_replies.iter().enumerate() {
            if let Some(profile) = self.providers.get_mut(id) {
                profile.waves_served += 1;
                if pending[consumer_count + i] && reply.is_none() {
                    profile.timeouts += 1;
                }
            }
        }

        WaveReplies {
            consumers: consumer_replies,
            providers: provider_replies,
        }
    }

    /// Enters one task into the wave's scheduling structures.
    fn deliver(
        token: usize,
        latency: Latency,
        start: u64,
        deadline: u64,
        ready: &mut VecDeque<usize>,
        timers: &mut BinaryHeap<Reverse<(u64, usize)>>,
    ) {
        match latency {
            Latency::Immediate => ready.push_back(token),
            Latency::After(delay) => {
                let at = start.saturating_add(duration_nanos(delay));
                // A reply landing exactly at the deadline still counts as
                // arrived; anything later can never be polled in time.
                if at <= deadline {
                    timers.push(Reverse((at, token)));
                }
            }
            Latency::Never => {}
        }
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("consumers", &self.consumers.len())
            .field("providers", &self.providers.len())
            .field("waves", &self.waves)
            .field("virtual_now", &self.virtual_now())
            .finish()
    }
}

fn duration_nanos(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// Runs one wave on the legacy threaded backend: one scoped OS thread per
/// participant request, a real deadline, and real sleeps for modelled
/// latencies ([`Latency::After`] sleeps, [`Latency::Never`] never sends).
///
/// This is the thread-per-participant model the reactor replaces, kept as
/// the comparison backend: for any wave whose replies arrive *strictly
/// before* the deadline, it returns the same values as
/// [`Reactor::run_wave`], which is what the cross-backend digest tests
/// pin. The boundary differs by nature: the reactor's virtual clock makes
/// a reply at exactly the deadline arrive deterministically, while here
/// the deadline is real time, so a sleep of exactly `timeout` races the
/// receiver and (almost always) degrades to indifference — don't model
/// at-the-deadline latencies on this backend. Scoped threads are joined
/// before this function returns, so a sleeping straggler delays the
/// *return* (not the deadline: its reply is still discarded).
pub fn run_wave_threaded(wave: IntentionWave<'_>, timeout: Duration) -> WaveReplies {
    enum Answer {
        Consumer(usize, ConsumerBatchAnswer),
        Provider(usize, ProviderBatchAnswer),
    }

    let deadline = std::time::Instant::now() + timeout;
    let mut consumer_replies: Vec<(ConsumerId, Option<ConsumerBatchAnswer>)> =
        wave.consumers.iter().map(|t| (t.id, None)).collect();
    let mut provider_replies: Vec<(ProviderId, Option<ProviderBatchAnswer>)> =
        wave.providers.iter().map(|t| (t.id, None)).collect();

    std::thread::scope(|scope| {
        let (tx, rx) = crossbeam::channel::unbounded::<Answer>();
        let mut expected = 0usize;
        for (idx, task) in wave.consumers.into_iter().enumerate() {
            let latency = task.latency.unwrap_or_default();
            if matches!(latency, Latency::Never) {
                continue;
            }
            expected += 1;
            let tx = tx.clone();
            let job = task.job;
            scope.spawn(move || {
                if let Latency::After(delay) = latency {
                    std::thread::sleep(delay);
                }
                let _ = tx.send(Answer::Consumer(idx, job()));
            });
        }
        for (idx, task) in wave.providers.into_iter().enumerate() {
            let latency = task.latency.unwrap_or_default();
            if matches!(latency, Latency::Never) {
                continue;
            }
            expected += 1;
            let tx = tx.clone();
            let job = task.job;
            scope.spawn(move || {
                if let Latency::After(delay) = latency {
                    std::thread::sleep(delay);
                }
                let _ = tx.send(Answer::Provider(idx, job()));
            });
        }
        drop(tx);

        let mut received = 0usize;
        while received < expected {
            match rx.recv_deadline(deadline) {
                Ok(Answer::Consumer(idx, reply)) => {
                    consumer_replies[idx].1 = Some(reply);
                    received += 1;
                }
                Ok(Answer::Provider(idx, reply)) => {
                    provider_replies[idx].1 = Some(reply);
                    received += 1;
                }
                Err(_) => break, // deadline: the rest degrade to indifference
            }
        }
    });

    WaveReplies {
        consumers: consumer_replies,
        providers: provider_replies,
    }
}

/// The owned-endpoint facade over the reactor: the asynchronous
/// counterpart of [`crate::runtime::MediationRuntime`], with
/// [`AsyncMediator::gather_batch`] and [`AsyncMediator::mediate_batch`]
/// as the native entry points.
///
/// Endpoints implement the same [`ConsumerEndpoint`] / [`ProviderEndpoint`]
/// traits as the threaded runtime; their
/// [`ConsumerEndpoint::latency`] / [`ProviderEndpoint::latency`] hooks
/// (ignored by the threaded runtime, which models latency with real
/// blocking) tell the reactor when each reply becomes available.
///
/// ```
/// use sqlb_mediation::{AsyncMediator, ConsumerEndpoint, ProviderEndpoint, RuntimeConfig};
/// use sqlb_types::{ConsumerId, ProviderId, Query, QueryClass, QueryId, SimTime};
///
/// struct Eager(f64);
/// impl ConsumerEndpoint for Eager {
///     fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
///         candidates.iter().map(|&p| (p, self.0)).collect()
///     }
/// }
/// impl ProviderEndpoint for Eager {
///     fn intention(&mut self, _q: &Query) -> f64 {
///         self.0
///     }
/// }
///
/// let mut mediator = AsyncMediator::new(RuntimeConfig::default());
/// mediator.register_consumer(ConsumerId::new(0), Eager(0.5));
/// mediator.register_provider(ProviderId::new(0), Eager(0.8));
/// mediator.register_provider(ProviderId::new(1), Eager(-0.2));
///
/// let query = Query::single(QueryId::new(1), ConsumerId::new(0), QueryClass::Light, SimTime::ZERO);
/// let candidates = vec![ProviderId::new(0), ProviderId::new(1)];
/// let infos = mediator.gather_batch(&[(query, candidates)]);
/// assert_eq!(infos[0][0].provider_intention, 0.8);
/// assert_eq!(infos[0][1].provider_intention, -0.2);
/// assert_eq!(infos[0][0].consumer_intention, 0.5);
/// ```
pub struct AsyncMediator {
    reactor: Reactor,
    consumers: BTreeMap<ConsumerId, Box<dyn ConsumerEndpoint>>,
    providers: BTreeMap<ProviderId, Box<dyn ProviderEndpoint>>,
}

impl AsyncMediator {
    /// Creates an empty asynchronous mediator.
    pub fn new(config: RuntimeConfig) -> Self {
        AsyncMediator {
            reactor: Reactor::new(config),
            consumers: BTreeMap::new(),
            providers: BTreeMap::new(),
        }
    }

    /// Registers a consumer endpoint. Unlike the threaded runtime, no
    /// thread is spawned: the endpoint becomes a state machine polled by
    /// the reactor's event loop.
    pub fn register_consumer(&mut self, id: ConsumerId, endpoint: impl ConsumerEndpoint) {
        self.reactor.register_consumer(id, Latency::Immediate);
        self.consumers.insert(id, Box::new(endpoint));
    }

    /// Registers a provider endpoint.
    pub fn register_provider(&mut self, id: ProviderId, endpoint: impl ProviderEndpoint) {
        self.reactor.register_provider(id, Latency::Immediate);
        self.providers.insert(id, Box::new(endpoint));
    }

    /// Removes a provider endpoint (e.g. on departure).
    pub fn deregister_provider(&mut self, id: ProviderId) {
        self.reactor.deregister_provider(id);
        self.providers.remove(&id);
    }

    /// Removes a consumer endpoint.
    pub fn deregister_consumer(&mut self, id: ConsumerId) {
        self.reactor.deregister_consumer(id);
        self.consumers.remove(&id);
    }

    /// Number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Number of registered consumers.
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// The underlying reactor (wave statistics, virtual clock).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Gathers the candidate information for a batch of queries in one
    /// wave: one batched request per distinct consumer and per distinct
    /// candidate provider, multiplexed by the reactor, with per-endpoint
    /// deadline tracking. Missing answers (unregistered endpoints,
    /// replies past the deadline) are read as indifference (`0`).
    ///
    /// Returns one candidate-info vector per input query, in input order.
    pub fn gather_batch(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
    ) -> Vec<Vec<CandidateInfo>> {
        if requests.is_empty() {
            return Vec::new();
        }
        // One request per distinct participant (BTreeMaps keep delivery
        // order deterministic).
        let mut by_consumer: BTreeMap<ConsumerId, Vec<(Query, Vec<ProviderId>)>> = BTreeMap::new();
        let mut by_provider: BTreeMap<ProviderId, Vec<Query>> = BTreeMap::new();
        for (query, candidates) in requests {
            by_consumer
                .entry(query.consumer)
                .or_default()
                .push((query.clone(), candidates.clone()));
            for provider in candidates {
                by_provider
                    .entry(*provider)
                    .or_default()
                    .push(query.clone());
            }
        }

        // Detach exactly the endpoints the wave addresses, so a wave
        // costs O(participants · log registered) — a single-query gather
        // against 50 000 registered endpoints must not walk all 50 000.
        // Detached endpoints are reattached after the wave; an id with no
        // registered endpoint simply yields no job (→ indifference).
        let request_bids = self.reactor.config.request_bids;
        let mut consumer_tasks: Vec<DetachedConsumer> = by_consumer
            .into_iter()
            .filter_map(|(id, reqs)| self.consumers.remove(&id).map(|e| (id, e, reqs)))
            .collect();
        let mut provider_tasks: Vec<DetachedProvider> = by_provider
            .into_iter()
            .filter_map(|(id, queries)| self.providers.remove(&id).map(|e| (id, e, queries)))
            .collect();

        let mut wave = IntentionWave::new();
        for (id, endpoint, consumer_requests) in consumer_tasks.iter_mut() {
            let latency = endpoint.latency();
            wave.consumer(*id, Some(latency), move || {
                endpoint.intentions_batch(consumer_requests)
            });
        }
        for (id, endpoint, queries) in provider_tasks.iter_mut() {
            let latency = endpoint.latency();
            wave.provider(*id, Some(latency), move || {
                let utilization = endpoint.utilization();
                endpoint
                    .intention_batch(queries, request_bids)
                    .into_iter()
                    .map(|(query, intention, bid)| ProviderAnswer {
                        query,
                        intention,
                        utilization,
                        bid,
                    })
                    .collect()
            });
        }

        let replies = self.reactor.run_wave(wave);
        for (id, endpoint, _) in consumer_tasks {
            self.consumers.insert(id, endpoint);
        }
        for (id, endpoint, _) in provider_tasks {
            self.providers.insert(id, endpoint);
        }
        replies.into_candidate_infos(requests)
    }

    /// Single-query convenience over [`AsyncMediator::gather_batch`].
    pub fn gather(&mut self, query: &Query, candidates: &[ProviderId]) -> Vec<CandidateInfo> {
        let requests = [(query.clone(), candidates.to_vec())];
        self.gather_batch(&requests)
            .into_iter()
            .next()
            .unwrap_or_default()
    }

    /// Runs Algorithm 1 for a whole batch of queries: one gather wave,
    /// then an allocation decision per query (recorded in the mediator
    /// state) and the result notifications. Returns one allocation per
    /// input query, in input order.
    pub fn mediate_batch<M: AllocationMethod>(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
        method: &mut M,
        state: &mut MediatorState,
    ) -> Vec<Allocation> {
        let infos = self.gather_batch(requests);
        requests
            .iter()
            .zip(&infos)
            .map(|((query, candidates), query_infos)| {
                let allocation = method.allocate(query, query_infos, state);
                state.record_allocation(query, query_infos, &allocation);
                self.notify(query, candidates, &allocation);
                allocation
            })
            .collect()
    }

    /// Runs Algorithm 1 for a whole batch against a [`Mediator`] (the
    /// packaged method + satisfaction state of `sqlb-core`): one gather
    /// wave, then [`Mediator::allocate_batch`], then the notifications.
    pub fn mediate_batch_with(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
        mediator: &mut Mediator,
    ) -> Vec<Allocation> {
        let infos = self.gather_batch(requests);
        let queries: Vec<&Query> = requests.iter().map(|(query, _)| query).collect();
        let allocations = mediator.allocate_batch(&queries, &infos);
        for ((query, candidates), allocation) in requests.iter().zip(&allocations) {
            self.notify(query, candidates, allocation);
        }
        allocations
    }

    /// Single-query convenience over [`AsyncMediator::mediate_batch`].
    pub fn mediate<M: AllocationMethod>(
        &mut self,
        query: &Query,
        candidates: &[ProviderId],
        method: &mut M,
        state: &mut MediatorState,
    ) -> Allocation {
        let requests = [(query.clone(), candidates.to_vec())];
        self.mediate_batch(&requests, method, state)
            .into_iter()
            .next()
            .expect("one allocation per query")
    }

    /// Notifies every candidate of the mediation result and the consumer
    /// of its allocation (Algorithm 1, lines 9–10). Delivery is
    /// synchronous and in candidate order — the reactor has no detached
    /// threads for notices to trail behind on.
    pub fn notify(&mut self, query: &Query, candidates: &[ProviderId], allocation: &Allocation) {
        for provider in candidates {
            if let Some(endpoint) = self.providers.get_mut(provider) {
                endpoint.allocation_notice(query.id, allocation.is_selected(*provider));
            }
        }
        if let Some(endpoint) = self.consumers.get_mut(&query.consumer) {
            endpoint.allocation_result(query.id, &allocation.selected);
        }
    }
}

impl std::fmt::Debug for AsyncMediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncMediator")
            .field("consumers", &self.consumers.len())
            .field("providers", &self.providers.len())
            .field("reactor", &self.reactor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::mediator_state::MediatorStateConfig;
    use sqlb_core::SqlbAllocator;
    use sqlb_types::{MediatorId, QueryClass, SimTime};

    struct CannedConsumer {
        values: Vec<f64>,
        results: Vec<Vec<ProviderId>>,
    }

    impl ConsumerEndpoint for CannedConsumer {
        fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
            candidates
                .iter()
                .map(|&p| (p, self.values.get(p.index()).copied().unwrap_or(0.0)))
                .collect()
        }
        fn allocation_result(&mut self, _query: QueryId, providers: &[ProviderId]) {
            self.results.push(providers.to_vec());
        }
    }

    struct CannedProvider {
        value: f64,
        latency: Latency,
        bid: Option<Bid>,
        notices: Vec<(QueryId, bool)>,
    }

    impl ProviderEndpoint for CannedProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            self.value
        }
        fn bid(&mut self, _q: &Query) -> Option<Bid> {
            self.bid
        }
        fn latency(&mut self) -> Latency {
            self.latency
        }
        fn allocation_notice(&mut self, query: QueryId, selected: bool) {
            self.notices.push((query, selected));
        }
    }

    fn query(id: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    fn mediator_with(
        provider_values: &[(f64, Latency)],
        consumer_values: Vec<f64>,
        config: RuntimeConfig,
    ) -> AsyncMediator {
        let mut mediator = AsyncMediator::new(config);
        mediator.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: consumer_values,
                results: Vec::new(),
            },
        );
        for (i, &(value, latency)) in provider_values.iter().enumerate() {
            mediator.register_provider(
                ProviderId::new(i as u32),
                CannedProvider {
                    value,
                    latency,
                    bid: Some(Bid::new(100.0 * (i as f64 + 1.0), 1.0)),
                    notices: Vec::new(),
                },
            );
        }
        mediator
    }

    #[test]
    fn immediate_endpoints_answer_in_zero_virtual_time() {
        let mut mediator = mediator_with(
            &[(0.8, Latency::Immediate), (-0.2, Latency::Immediate)],
            vec![0.5, 0.9],
            RuntimeConfig::default(),
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[0].provider_intention, 0.8);
        assert_eq!(infos[1].provider_intention, -0.2);
        assert_eq!(infos[0].consumer_intention, 0.5);
        assert!(infos[0].bid.is_none(), "bids are not requested by default");
        let round = mediator.reactor().last_round();
        assert_eq!(round.answered, 3);
        assert_eq!(round.timed_out, 0);
        assert_eq!(round.virtual_elapsed, Duration::ZERO);
        assert!(!round.hit_deadline);
    }

    #[test]
    fn modelled_latency_below_the_timeout_arrives_at_its_instant() {
        let mut mediator = mediator_with(
            &[
                (0.7, Latency::Immediate),
                (1.0, Latency::After(Duration::from_millis(150))),
            ],
            vec![0.9, 0.9],
            RuntimeConfig::default(), // 200 ms timeout
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(
            infos[1].provider_intention, 1.0,
            "150 ms beats the 200 ms deadline"
        );
        let round = mediator.reactor().last_round();
        assert_eq!(round.virtual_elapsed, Duration::from_millis(150));
        assert!(!round.hit_deadline);
    }

    #[test]
    fn never_answering_endpoint_degrades_at_exactly_the_deadline() {
        let timeout = Duration::from_millis(80);
        let mut mediator = mediator_with(
            &[(0.7, Latency::Immediate), (1.0, Latency::Never)],
            vec![0.9, 0.9],
            RuntimeConfig {
                timeout,
                request_bids: false,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[0].provider_intention, 0.7);
        assert_eq!(
            infos[1].provider_intention, 0.0,
            "a silent endpoint is read as indifferent"
        );
        let round = mediator.reactor().last_round();
        assert_eq!(round.timed_out, 1);
        assert!(round.hit_deadline);
        assert_eq!(
            round.virtual_elapsed, timeout,
            "the degradation happens at exactly the configured deadline"
        );
        assert_eq!(mediator.reactor().provider_timeouts(ProviderId::new(1)), 1);
        assert_eq!(mediator.reactor().provider_timeouts(ProviderId::new(0)), 0);
    }

    #[test]
    fn latency_beyond_the_timeout_degrades_to_indifference() {
        let mut mediator = mediator_with(
            &[
                (0.7, Latency::Immediate),
                (1.0, Latency::After(Duration::from_millis(500))),
            ],
            vec![0.9, 0.9],
            RuntimeConfig {
                timeout: Duration::from_millis(50),
                request_bids: false,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[1].provider_intention, 0.0);
        assert_eq!(
            mediator.reactor().last_round().virtual_elapsed,
            Duration::from_millis(50)
        );
    }

    #[test]
    fn a_reply_landing_exactly_at_the_deadline_still_counts() {
        let timeout = Duration::from_millis(100);
        let mut mediator = mediator_with(
            &[(0.6, Latency::After(timeout))],
            vec![0.5],
            RuntimeConfig {
                timeout,
                request_bids: false,
            },
        );
        let infos = mediator.gather(&query(1), &[ProviderId::new(0)]);
        assert_eq!(infos[0].provider_intention, 0.6);
        assert!(!mediator.reactor().last_round().hit_deadline);
    }

    #[test]
    fn virtual_clock_accumulates_across_waves() {
        let mut mediator = mediator_with(
            &[(0.5, Latency::After(Duration::from_millis(30)))],
            vec![0.5],
            RuntimeConfig::default(),
        );
        for i in 0..3 {
            mediator.gather(&query(i), &[ProviderId::new(0)]);
        }
        assert_eq!(mediator.reactor().waves(), 3);
        assert_eq!(mediator.reactor().virtual_now(), Duration::from_millis(90));
    }

    /// A provider endpoint that counts batched requests, to pin the
    /// one-round-trip-per-participant property of a wave.
    struct CountingProvider {
        value: f64,
        requests: u32,
    }

    impl ProviderEndpoint for CountingProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            self.value
        }
        fn intention_batch(
            &mut self,
            queries: &[Query],
            request_bids: bool,
        ) -> Vec<(QueryId, f64, Option<Bid>)> {
            self.requests += 1;
            queries
                .iter()
                .map(|q| {
                    (
                        q.id,
                        self.value,
                        if request_bids { self.bid(q) } else { None },
                    )
                })
                .collect()
        }
    }

    #[test]
    fn gather_batch_multiplexes_one_request_per_participant() {
        let mut mediator = AsyncMediator::new(RuntimeConfig::default());
        mediator.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: vec![0.5, -0.25],
                results: Vec::new(),
            },
        );
        for (i, value) in [0.8, -0.2].into_iter().enumerate() {
            mediator.register_provider(
                ProviderId::new(i as u32),
                CountingProvider { value, requests: 0 },
            );
        }
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let batch: Vec<(Query, Vec<ProviderId>)> =
            (0..5).map(|i| (query(i), candidates.clone())).collect();
        let infos = mediator.gather_batch(&batch);
        assert_eq!(infos.len(), 5);
        for per_query in &infos {
            assert_eq!(per_query[0].provider_intention, 0.8);
            assert_eq!(per_query[1].provider_intention, -0.2);
            assert_eq!(per_query[0].consumer_intention, 0.5);
            assert_eq!(per_query[1].consumer_intention, -0.25);
        }
        // 5 queries, 2 candidate providers: exactly 3 requests delivered
        // (1 consumer + 2 providers), each answered in one reply.
        assert_eq!(mediator.reactor().last_round().delivered, 3);
        assert_eq!(mediator.reactor().last_round().answered, 3);
    }

    #[test]
    fn gather_batch_of_nothing_is_empty() {
        let mut mediator = mediator_with(
            &[(0.5, Latency::Immediate)],
            vec![0.5],
            RuntimeConfig::default(),
        );
        assert!(mediator.gather_batch(&[]).is_empty());
    }

    #[test]
    fn unknown_participants_default_to_indifference() {
        let mut mediator = mediator_with(
            &[(0.5, Latency::Immediate)],
            vec![0.5],
            RuntimeConfig::default(),
        );
        let candidates = vec![ProviderId::new(0), ProviderId::new(9)];
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[0].provider_intention, 0.5);
        assert_eq!(infos[1].provider_intention, 0.0);
        assert_eq!(infos[1].consumer_intention, 0.0);
    }

    #[test]
    fn mediate_batch_allocates_and_notifies_synchronously() {
        let mut mediator = mediator_with(
            &[(0.9, Latency::Immediate), (0.4, Latency::Immediate)],
            vec![0.8, 0.8],
            RuntimeConfig::default(),
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let batch: Vec<(Query, Vec<ProviderId>)> =
            (0..3).map(|i| (query(i), candidates.clone())).collect();
        let mut method = SqlbAllocator::new();
        let mut state = MediatorState::paper_default();
        let allocations = mediator.mediate_batch(&batch, &mut method, &mut state);
        assert_eq!(allocations.len(), 3);
        for allocation in &allocations {
            assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
        }
        assert_eq!(state.allocations(), 3);
        // Notices are delivered synchronously: no waiting, no threads.
        // (Endpoints are owned by the mediator; drop it to inspect them is
        // not needed — the counters live in the reactor.)
        assert_eq!(mediator.reactor().waves(), 1, "one wave serves the batch");
    }

    #[test]
    fn mediate_batch_with_a_core_mediator_uses_the_batched_seam() {
        let mut mediator = mediator_with(
            &[(0.9, Latency::Immediate), (0.4, Latency::Immediate)],
            vec![0.8, 0.8],
            RuntimeConfig::default(),
        );
        let mut core = Mediator::new(
            MediatorId::new(0),
            Box::new(SqlbAllocator::new()),
            MediatorStateConfig::default(),
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let batch: Vec<(Query, Vec<ProviderId>)> =
            (0..4).map(|i| (query(i), candidates.clone())).collect();
        let allocations = mediator.mediate_batch_with(&batch, &mut core);
        assert_eq!(allocations.len(), 4);
        assert_eq!(core.state().allocations(), 4);
    }

    /// A provider endpoint that reports a non-idle utilization.
    struct BusyProvider {
        value: f64,
        utilization: f64,
    }

    impl ProviderEndpoint for BusyProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            self.value
        }
        fn utilization(&mut self) -> f64 {
            self.utilization
        }
    }

    #[test]
    fn reported_utilization_reaches_the_candidate_info() {
        // Utilization-aware methods (the Capacity-based baseline) read
        // `CandidateInfo::utilization`; the facade must carry the
        // endpoint's reported value, not assume idle.
        let mut mediator = AsyncMediator::new(RuntimeConfig::default());
        mediator.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: vec![0.5, 0.5],
                results: Vec::new(),
            },
        );
        mediator.register_provider(
            ProviderId::new(0),
            BusyProvider {
                value: 0.5,
                utilization: 0.85,
            },
        );
        mediator.register_provider(
            ProviderId::new(1),
            BusyProvider {
                value: 0.5,
                utilization: 0.1,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[0].utilization, 0.85);
        assert_eq!(infos[1].utilization, 0.1);
    }

    #[test]
    fn bids_are_gathered_when_requested() {
        let mut mediator = mediator_with(
            &[(0.5, Latency::Immediate), (0.5, Latency::Immediate)],
            vec![0.5, 0.5],
            RuntimeConfig {
                timeout: Duration::from_millis(500),
                request_bids: true,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[0].bid.unwrap().price, 100.0);
        assert_eq!(infos[1].bid.unwrap().price, 200.0);
    }

    #[test]
    fn deregistering_silences_an_endpoint() {
        let mut mediator = mediator_with(
            &[(0.5, Latency::Immediate), (0.6, Latency::Immediate)],
            vec![0.5, 0.5],
            RuntimeConfig::default(),
        );
        assert_eq!(mediator.provider_count(), 2);
        assert_eq!(mediator.consumer_count(), 1);
        mediator.deregister_provider(ProviderId::new(1));
        assert_eq!(mediator.provider_count(), 1);
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = mediator.gather(&query(1), &candidates);
        assert_eq!(infos[1].provider_intention, 0.0);
    }

    #[test]
    fn threaded_and_reactor_backends_agree_on_wave_replies() {
        // The cross-backend contract in miniature: the same wave, run on
        // the event loop and on scoped threads, yields identical
        // candidate information.
        let requests: Vec<(Query, Vec<ProviderId>)> = (0..4)
            .map(|i| (query(i), (0..3).map(ProviderId::new).collect()))
            .collect();
        let build_wave = |values: &'static [f64]| {
            let mut wave = IntentionWave::new();
            let reqs = requests.clone();
            wave.consumer(ConsumerId::new(0), None, move || {
                reqs.iter()
                    .map(|(q, cands)| {
                        (
                            q.id,
                            cands.iter().map(|&p| (p, 0.1 * p.index() as f64)).collect(),
                        )
                    })
                    .collect()
            });
            for (i, &value) in values.iter().enumerate() {
                let queries: Vec<QueryId> = requests.iter().map(|(q, _)| q.id).collect();
                wave.provider(ProviderId::new(i as u32), None, move || {
                    queries
                        .iter()
                        .map(|&q| ProviderAnswer {
                            query: q,
                            intention: value,
                            utilization: value.abs(),
                            bid: None,
                        })
                        .collect()
                });
            }
            wave
        };
        static VALUES: [f64; 3] = [0.9, -0.3, 0.45];
        let mut reactor = Reactor::new(RuntimeConfig::default());
        let from_reactor = reactor
            .run_wave(build_wave(&VALUES))
            .into_candidate_infos(&requests);
        let from_threads = run_wave_threaded(build_wave(&VALUES), Duration::from_secs(5))
            .into_candidate_infos(&requests);
        assert_eq!(from_reactor, from_threads);
    }

    #[test]
    fn threaded_backend_honours_never_and_after_latencies() {
        let mut wave = IntentionWave::new();
        wave.provider(ProviderId::new(0), Some(Latency::Never), move || {
            vec![ProviderAnswer {
                query: QueryId::new(0),
                intention: 1.0,
                utilization: 0.0,
                bid: None,
            }]
        });
        wave.provider(
            ProviderId::new(1),
            Some(Latency::After(Duration::from_millis(1))),
            move || {
                vec![ProviderAnswer {
                    query: QueryId::new(0),
                    intention: 0.5,
                    utilization: 0.0,
                    bid: None,
                }]
            },
        );
        let replies = run_wave_threaded(wave, Duration::from_secs(2));
        assert!(replies.providers[0].1.is_none(), "Never sends no reply");
        assert!(replies.providers[1].1.is_some(), "1 ms beats the deadline");
    }

    #[test]
    fn wave_len_and_empty() {
        let mut wave = IntentionWave::new();
        assert!(wave.is_empty());
        wave.provider(ProviderId::new(0), None, Vec::new);
        assert_eq!(wave.len(), 1);
        assert!(!wave.is_empty());
    }
}
