//! The message protocol between the mediator and the participants, and
//! its wire framing.
//!
//! The protocol mirrors the steps of Algorithm 1 and the mediation
//! architecture of Lamarre et al. \[10\] that the paper builds on: the
//! mediator asks the issuing consumer for its intentions towards the
//! candidate providers, asks every candidate provider for its intention
//! (and, for economic methods, its bid), and finally "sends the mediation
//! result to the `P_q \ \hat{P}_q` providers", i.e. also tells the
//! candidates that were *not* selected.
//!
//! Two request shapes exist side by side:
//!
//! * the **single-query** requests of the original runtime (one message
//!   per query per participant);
//! * the **wave** requests the reactor and the socket transport natively
//!   speak ([`MediatorMessage::ConsumerWaveRequest`] /
//!   [`MediatorMessage::ProviderWaveRequest`]): one message per
//!   participant covering every query of a mediation batch, answered in
//!   one reply. Waves are numbered so a reply that arrives after its
//!   wave's deadline can be recognized as stale and discarded.
//!
//! # Multiplexed connections
//!
//! A networked deployment runs one socket per *participant host*, not per
//! endpoint (`sqlb-transport`): a single connection carries the traffic
//! of every consumer and provider that host serves. Three protocol
//! features exist for that topology:
//!
//! * wave requests and result notices carry their **addressee** (the
//!   `consumer` / `provider` field), so the host can dispatch them to the
//!   right endpoint;
//! * a connection opens with [`ParticipantReply::Hello`] declaring the
//!   endpoints the host serves, and closes with
//!   [`ParticipantReply::Goodbye`] (or a mediator-initiated
//!   [`MediatorMessage::Shutdown`]);
//! * [`MediatorMessage::WaveEnd`] brackets a wave on each connection: the
//!   host buffers requests until it sees the marker, then answers them
//!   all — which also keeps both sides' socket buffers drained (neither
//!   end ever blocks writing while the other is blocked writing too).
//!
//! Wave requests carry the **full query** `q = <c, d, n>` (not just its
//! id): a remote endpoint needs the class, description and cost to
//! compute its Definition 7/8 intention, and the engine's determinism
//! contract relies on the decoded query being bit-identical to the
//! encoded one (`f64`s travel as raw IEEE-754 bits).
//!
//! # Framing
//!
//! In-process backends pass these values directly, but a networked
//! deployment puts them on a byte stream. [`encode_mediator_message`] /
//! [`decode_mediator_message`] (and the `participant_reply` pair) define
//! that wire contract: each message is one *frame* —
//!
//! ```text
//! [u32 LE: payload length] [u8: variant tag] [payload…]
//! ```
//!
//! — with all integers little-endian, `f64`s as their IEEE-754 bits,
//! strings as a `u32` byte count followed by UTF-8 bytes, vectors as a
//! `u32` count followed by the elements, and options as a `0`/`1`
//! presence byte. Decoding never panics on malformed input: a short
//! buffer yields [`FrameError::Truncated`], an unknown tag
//! [`FrameError::UnknownTag`], a frame whose payload disagrees with its
//! declared length [`FrameError::TrailingBytes`], and a declared payload
//! beyond [`MAX_FRAME_PAYLOAD`] is rejected as [`FrameError::Oversized`]
//! *before* any allocation happens — a hostile 4 GiB length prefix
//! cannot OOM the mediator. Frames are self-delimiting, so a stream of
//! them can be decoded back-to-back; [`FrameAssembler`] reassembles them
//! from the arbitrary chunk boundaries a stream transport delivers.

use serde::{Deserialize, Serialize};
use sqlb_core::allocation::Bid;
use sqlb_obs::{HistogramSummary, ObsSnapshot};
use sqlb_types::{
    ConsumerId, ProviderId, Query, QueryClass, QueryDescription, QueryId, SimTime, WorkUnits,
};

/// Upper bound on a frame's declared payload length (16 MiB).
///
/// Real frames are a few hundred bytes; even a full 50 000-endpoint wave
/// reply stays well under a megabyte. The cap exists so a corrupted or
/// hostile length prefix is rejected with [`FrameError::Oversized`]
/// before the decoder (or a [`FrameAssembler`]) commits any memory to it.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024 * 1024;

/// Messages sent by the mediator to participants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MediatorMessage {
    /// Ask the consumer for its intentions towards the candidate providers
    /// of one of its queries (Algorithm 1, line 2).
    ConsumerIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// The candidate set `P_q`.
        candidates: Vec<ProviderId>,
    },
    /// Ask a provider for its intention to perform a query
    /// (Algorithm 1, lines 3–4).
    ProviderIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// Whether the provider should also return a bid (economic
        /// methods).
        request_bid: bool,
    },
    /// Ask the consumer for its intentions for *every* query of one
    /// mediation wave, in one round-trip (the shape the reactor and the
    /// socket transport natively speak).
    ConsumerWaveRequest {
        /// Identifier of the wave the replies belong to.
        wave: u64,
        /// The consumer this request is addressed to (a multiplexed host
        /// connection carries requests for many endpoints).
        consumer: ConsumerId,
        /// One entry per query of the consumer's in this wave: the full
        /// query and its candidate set.
        requests: Vec<(Query, Vec<ProviderId>)>,
    },
    /// Ask a provider for its intention (and optionally bid) for every
    /// query of one mediation wave that lists it as a candidate.
    ProviderWaveRequest {
        /// Identifier of the wave the replies belong to.
        wave: u64,
        /// The provider this request is addressed to.
        provider: ProviderId,
        /// The full queries the provider is a candidate for.
        queries: Vec<Query>,
        /// Whether the provider should also return bids.
        request_bids: bool,
    },
    /// Notify a candidate provider of the mediation result
    /// (Algorithm 1, lines 9–10).
    AllocationNotice {
        /// The query that was allocated.
        query: QueryId,
        /// The candidate provider this notice is addressed to.
        provider: ProviderId,
        /// Whether this provider was selected to perform the query.
        selected: bool,
    },
    /// Notify the consumer of the final allocation.
    AllocationResult {
        /// The query that was allocated.
        query: QueryId,
        /// The consumer this result is addressed to.
        consumer: ConsumerId,
        /// The providers the query was allocated to.
        providers: Vec<ProviderId>,
    },
    /// Ask the participant (host) to shut down (used when tearing the
    /// runtime or a transport connection down).
    Shutdown,
    /// Marks the end of a wave's requests on one connection: every
    /// request of `wave` addressed to this host has been sent, and the
    /// host should now compute and send its replies.
    WaveEnd {
        /// The wave whose requests are complete.
        wave: u64,
    },
    /// A point-in-time observability snapshot of the wave server,
    /// answering a [`ParticipantReply::StatsRequest`] on the same
    /// connection (the live-introspection endpoint).
    StatsReply {
        /// The server's instrument snapshot at the moment the request
        /// was serviced.
        snapshot: ObsSnapshot,
    },
}

/// Replies sent by participants to the mediator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParticipantReply {
    /// The consumer's intentions towards the candidate providers.
    ConsumerIntentions {
        /// The query the intentions are about.
        query: QueryId,
        /// The consumer that answered.
        consumer: ConsumerId,
        /// One `(provider, intention)` pair per candidate.
        intentions: Vec<(ProviderId, f64)>,
    },
    /// A provider's intention (and optional bid) for a query.
    ProviderIntention {
        /// The query the intention is about.
        query: QueryId,
        /// The provider that answered.
        provider: ProviderId,
        /// The provider's intention `pi_p(q)`.
        intention: f64,
        /// The provider's bid, when requested.
        bid: Option<Bid>,
    },
    /// A consumer's answer to a [`MediatorMessage::ConsumerWaveRequest`].
    ConsumerWaveReply {
        /// The wave this reply answers.
        wave: u64,
        /// The consumer that answered.
        consumer: ConsumerId,
        /// Per query of the wave, one `(provider, intention)` pair per
        /// candidate.
        intentions: Vec<(QueryId, Vec<(ProviderId, f64)>)>,
    },
    /// A provider's answer to a [`MediatorMessage::ProviderWaveRequest`].
    ProviderWaveReply {
        /// The wave this reply answers.
        wave: u64,
        /// The provider that answered.
        provider: ProviderId,
        /// The provider's current utilization `Ut(p)`, shown to the
        /// mediator alongside its intentions (utilization-aware methods
        /// such as the Capacity-based baseline rank by it).
        utilization: f64,
        /// One `(query, intention, bid)` triple per query of the wave.
        intentions: Vec<(QueryId, f64, Option<Bid>)>,
    },
    /// Opens a host connection: declares the consumer and provider
    /// endpoints this host serves, so the mediator can route their wave
    /// requests over this connection.
    Hello {
        /// The consumer endpoints the host multiplexes.
        consumers: Vec<ConsumerId>,
        /// The provider endpoints the host multiplexes.
        providers: Vec<ProviderId>,
    },
    /// Closes a host connection cleanly (sent by the host, either
    /// spontaneously on departure or in response to
    /// [`MediatorMessage::Shutdown`]).
    Goodbye,
    /// Asks the wave server for a point-in-time observability snapshot,
    /// answered with a [`MediatorMessage::StatsReply`] on this
    /// connection. Any connected host may send it at any moment —
    /// including mid-run, between or during waves.
    StatsRequest,
}

impl ParticipantReply {
    /// The query a single-query reply is about; `None` for wave replies,
    /// which cover several queries at once, and for connection-lifecycle
    /// messages.
    pub fn query(&self) -> Option<QueryId> {
        match self {
            ParticipantReply::ConsumerIntentions { query, .. } => Some(*query),
            ParticipantReply::ProviderIntention { query, .. } => Some(*query),
            _ => None,
        }
    }

    /// The wave a wave reply answers; `None` for single-query replies and
    /// connection-lifecycle messages.
    pub fn wave(&self) -> Option<u64> {
        match self {
            ParticipantReply::ConsumerWaveReply { wave, .. } => Some(*wave),
            ParticipantReply::ProviderWaveReply { wave, .. } => Some(*wave),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The frame's variant tag is not part of the protocol.
    UnknownTag(u8),
    /// The frame's content disagrees with its declared length: either a
    /// field ran past the end of the declared payload, or decoding
    /// finished with undeclared bytes left over. Both mean the frame
    /// lied about its size.
    TrailingBytes,
    /// The frame declared a payload longer than [`MAX_FRAME_PAYLOAD`].
    /// Rejected before any allocation is made for it, so a hostile
    /// length prefix cannot drive an out-of-memory condition.
    Oversized(u32),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            FrameError::TrailingBytes => {
                write!(f, "frame content disagrees with its declared length")
            }
            FrameError::Oversized(len) => write!(
                f,
                "frame declares a {len}-byte payload, over the {MAX_FRAME_PAYLOAD}-byte cap"
            ),
            FrameError::InvalidUtf8 => write!(f, "frame string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---- encoding ----------------------------------------------------------

/// Appends one frame to a caller-owned buffer, so encoders can reuse a
/// scratch buffer across messages instead of allocating a `Vec<u8>` per
/// frame (the send path of a 10k-endpoint wave encodes tens of
/// thousands of messages).
struct FrameWriter<'a> {
    buf: &'a mut Vec<u8>,
    /// Offset of this frame's length prefix in `buf`; patched in
    /// `finish()`.
    start: usize,
}

impl<'a> FrameWriter<'a> {
    fn over(buf: &'a mut Vec<u8>, tag: u8) -> Self {
        // Length placeholder first; patched in finish().
        let start = buf.len();
        buf.extend_from_slice(&[0, 0, 0, 0]);
        buf.push(tag);
        FrameWriter { buf, start }
    }

    fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn bool(&mut self, value: bool) {
        self.buf.push(value as u8);
    }

    fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    fn str(&mut self, value: &str) {
        self.count(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }

    fn bid(&mut self, bid: &Option<Bid>) {
        match bid {
            None => self.u8(0),
            Some(bid) => {
                self.u8(1);
                self.f64(bid.price);
                self.f64(bid.delay);
            }
        }
    }

    /// The full query `q = <c, d, n>` plus id and issue time. Wave
    /// requests carry it so a remote endpoint can compute its intention;
    /// `f64`s travel as raw bits, so the decoded query is bit-identical.
    fn query(&mut self, query: &Query) {
        self.u32(query.id.raw());
        self.u32(query.consumer.raw());
        self.str(&query.description.topic);
        self.count(query.description.attributes.len());
        for attribute in &query.description.attributes {
            self.str(attribute);
        }
        match query.description.class {
            QueryClass::Light => self.u8(0),
            QueryClass::Heavy => self.u8(1),
            QueryClass::Custom(tag) => {
                self.u8(2);
                self.u16(tag);
            }
        }
        self.f64(query.description.cost.value());
        self.u32(query.n);
        self.f64(query.issued_at.as_secs());
    }

    fn count(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("protocol vectors fit in u32"));
    }

    fn finish(self) {
        let payload = (self.buf.len() - self.start - 4) as u32;
        self.buf[self.start..self.start + 4].copy_from_slice(&payload.to_le_bytes());
    }
}

/// Encodes a mediator message as one self-delimiting frame.
pub fn encode_mediator_message(message: &MediatorMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_mediator_message_into(message, &mut out);
    out
}

/// Appends a mediator message's frame to `out`, which may already hold
/// other frames — the zero-allocation encode path: a caller framing a
/// whole wave reuses one scratch buffer for every message of the burst.
pub fn encode_mediator_message_into(message: &MediatorMessage, out: &mut Vec<u8>) {
    match message {
        MediatorMessage::ConsumerIntentionRequest { query, candidates } => {
            let mut w = FrameWriter::over(out, 1);
            w.u32(query.raw());
            w.count(candidates.len());
            for p in candidates {
                w.u32(p.raw());
            }
            w.finish()
        }
        MediatorMessage::ProviderIntentionRequest { query, request_bid } => {
            let mut w = FrameWriter::over(out, 2);
            w.u32(query.raw());
            w.bool(*request_bid);
            w.finish()
        }
        MediatorMessage::ConsumerWaveRequest {
            wave,
            consumer,
            requests,
        } => {
            let mut w = FrameWriter::over(out, 3);
            w.u64(*wave);
            w.u32(consumer.raw());
            w.count(requests.len());
            for (query, candidates) in requests {
                w.query(query);
                w.count(candidates.len());
                for p in candidates {
                    w.u32(p.raw());
                }
            }
            w.finish()
        }
        MediatorMessage::ProviderWaveRequest {
            wave,
            provider,
            queries,
            request_bids,
        } => {
            let mut w = FrameWriter::over(out, 4);
            w.u64(*wave);
            w.u32(provider.raw());
            w.count(queries.len());
            for query in queries {
                w.query(query);
            }
            w.bool(*request_bids);
            w.finish()
        }
        MediatorMessage::AllocationNotice {
            query,
            provider,
            selected,
        } => {
            let mut w = FrameWriter::over(out, 5);
            w.u32(query.raw());
            w.u32(provider.raw());
            w.bool(*selected);
            w.finish()
        }
        MediatorMessage::AllocationResult {
            query,
            consumer,
            providers,
        } => {
            let mut w = FrameWriter::over(out, 6);
            w.u32(query.raw());
            w.u32(consumer.raw());
            w.count(providers.len());
            for p in providers {
                w.u32(p.raw());
            }
            w.finish()
        }
        MediatorMessage::Shutdown => FrameWriter::over(out, 7).finish(),
        MediatorMessage::WaveEnd { wave } => {
            let mut w = FrameWriter::over(out, 8);
            w.u64(*wave);
            w.finish()
        }
        MediatorMessage::StatsReply { snapshot } => {
            let mut w = FrameWriter::over(out, 9);
            w.count(snapshot.counters.len());
            for (name, value) in &snapshot.counters {
                w.str(name);
                w.u64(*value);
            }
            w.count(snapshot.gauges.len());
            for (name, value) in &snapshot.gauges {
                w.str(name);
                // Gauges are signed; travel as two's-complement bits.
                w.u64(*value as u64);
            }
            w.count(snapshot.histograms.len());
            for (name, summary) in &snapshot.histograms {
                w.str(name);
                w.u64(summary.count);
                w.f64(summary.p50);
                w.f64(summary.p95);
                w.f64(summary.p99);
                w.f64(summary.max);
            }
            w.finish()
        }
    }
}

/// Encodes a participant reply as one self-delimiting frame.
pub fn encode_participant_reply(reply: &ParticipantReply) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_participant_reply_into(reply, &mut out);
    out
}

/// Appends a participant reply's frame to `out` (see
/// [`encode_mediator_message_into`]).
pub fn encode_participant_reply_into(reply: &ParticipantReply, out: &mut Vec<u8>) {
    match reply {
        ParticipantReply::ConsumerIntentions {
            query,
            consumer,
            intentions,
        } => {
            let mut w = FrameWriter::over(out, 1);
            w.u32(query.raw());
            w.u32(consumer.raw());
            w.count(intentions.len());
            for (p, intention) in intentions {
                w.u32(p.raw());
                w.f64(*intention);
            }
            w.finish()
        }
        ParticipantReply::ProviderIntention {
            query,
            provider,
            intention,
            bid,
        } => {
            let mut w = FrameWriter::over(out, 2);
            w.u32(query.raw());
            w.u32(provider.raw());
            w.f64(*intention);
            w.bid(bid);
            w.finish()
        }
        ParticipantReply::ConsumerWaveReply {
            wave,
            consumer,
            intentions,
        } => {
            let mut w = FrameWriter::over(out, 3);
            w.u64(*wave);
            w.u32(consumer.raw());
            w.count(intentions.len());
            for (query, per_provider) in intentions {
                w.u32(query.raw());
                w.count(per_provider.len());
                for (p, intention) in per_provider {
                    w.u32(p.raw());
                    w.f64(*intention);
                }
            }
            w.finish()
        }
        ParticipantReply::ProviderWaveReply {
            wave,
            provider,
            utilization,
            intentions,
        } => {
            let mut w = FrameWriter::over(out, 4);
            w.u64(*wave);
            w.u32(provider.raw());
            w.f64(*utilization);
            w.count(intentions.len());
            for (query, intention, bid) in intentions {
                w.u32(query.raw());
                w.f64(*intention);
                w.bid(bid);
            }
            w.finish()
        }
        ParticipantReply::Hello {
            consumers,
            providers,
        } => {
            let mut w = FrameWriter::over(out, 5);
            w.count(consumers.len());
            for c in consumers {
                w.u32(c.raw());
            }
            w.count(providers.len());
            for p in providers {
                w.u32(p.raw());
            }
            w.finish()
        }
        ParticipantReply::Goodbye => FrameWriter::over(out, 6).finish(),
        ParticipantReply::StatsRequest => FrameWriter::over(out, 7).finish(),
    }
}

// ---- decoding ----------------------------------------------------------

/// An in-place reader over one frame's bytes: every scalar accessor
/// reads directly from the borrowed slice, so a consumer that only
/// needs scalars (ids, intentions, wave numbers) decodes a frame
/// without allocating anything.
///
/// Public so zero-copy consumers (the wave server's reply hot path) can
/// decode the frames [`FrameAssembler::next_frame`] hands out without
/// first materializing an owned [`ParticipantReply`]; the general
/// decoders ([`decode_mediator_message`] / [`decode_participant_reply`])
/// are built on the same reader.
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    at: usize,
    end: usize,
}

impl<'a> FrameReader<'a> {
    /// Opens the frame at the start of `bytes`: reads the length prefix
    /// and bounds the reader to the declared payload. A declared payload
    /// over [`MAX_FRAME_PAYLOAD`] is rejected before anything else.
    pub fn open(bytes: &'a [u8]) -> Result<Self, FrameError> {
        if bytes.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let declared = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let payload = declared as usize;
        if payload > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversized(declared));
        }
        let end = 4 + payload;
        if bytes.len() < end {
            return Err(FrameError::Truncated);
        }
        Ok(FrameReader { bytes, at: 4, end })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let next = self.at.checked_add(n).ok_or(FrameError::TrailingBytes)?;
        if next > self.end {
            return Err(FrameError::TrailingBytes);
        }
        let slice = &self.bytes[self.at..next];
        self.at = next;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a presence/flag byte.
    pub fn bool(&mut self) -> Result<bool, FrameError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32` in place.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64` in place.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its raw IEEE-754 bits (the bit-identity
    /// contract: no parse, no rounding).
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| FrameError::InvalidUtf8)
    }

    /// Reads an optional bid (presence byte, then price and delay).
    pub fn bid(&mut self) -> Result<Option<Bid>, FrameError> {
        if self.bool()? {
            Ok(Some(Bid::new(self.f64()?, self.f64()?)))
        } else {
            Ok(None)
        }
    }

    /// Mirror of [`FrameWriter::query`].
    fn query(&mut self) -> Result<Query, FrameError> {
        let id = QueryId::new(self.u32()?);
        let consumer = ConsumerId::new(self.u32()?);
        let topic = self.str()?;
        let attribute_count = self.count()?;
        let mut attributes = Vec::with_capacity(attribute_count);
        for _ in 0..attribute_count {
            attributes.push(self.str()?);
        }
        let class = match self.u8()? {
            0 => QueryClass::Light,
            1 => QueryClass::Heavy,
            2 => QueryClass::Custom(self.u16()?),
            _ => return Err(FrameError::TrailingBytes),
        };
        let cost = WorkUnits::new(self.f64()?);
        let n = self.u32()?;
        let issued_at = SimTime::from_secs(self.f64()?);
        Ok(Query {
            id,
            consumer,
            description: QueryDescription {
                topic,
                attributes,
                class,
                cost,
            },
            n,
            issued_at,
        })
    }

    /// A vector count, sanity-bounded by the bytes remaining in the frame
    /// (every element occupies at least one byte), so a corrupted count
    /// cannot drive a huge allocation.
    pub fn count(&mut self) -> Result<usize, FrameError> {
        let count = self.u32()? as usize;
        if count > self.end - self.at {
            return Err(FrameError::TrailingBytes);
        }
        Ok(count)
    }

    /// Total frame length, once fully consumed.
    pub fn close(self) -> Result<usize, FrameError> {
        if self.at != self.end {
            return Err(FrameError::TrailingBytes);
        }
        Ok(self.end)
    }
}

/// Decodes the mediator-message frame at the start of `bytes`, returning
/// the message and the number of bytes the frame occupied (so frames can
/// be decoded back-to-back from one stream).
pub fn decode_mediator_message(bytes: &[u8]) -> Result<(MediatorMessage, usize), FrameError> {
    let mut r = FrameReader::open(bytes)?;
    let tag = r.u8()?;
    let message = match tag {
        1 => {
            let query = QueryId::new(r.u32()?);
            let n = r.count()?;
            let mut candidates = Vec::with_capacity(n);
            for _ in 0..n {
                candidates.push(ProviderId::new(r.u32()?));
            }
            MediatorMessage::ConsumerIntentionRequest { query, candidates }
        }
        2 => MediatorMessage::ProviderIntentionRequest {
            query: QueryId::new(r.u32()?),
            request_bid: r.bool()?,
        },
        3 => {
            let wave = r.u64()?;
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                let query = r.query()?;
                let c = r.count()?;
                let mut candidates = Vec::with_capacity(c);
                for _ in 0..c {
                    candidates.push(ProviderId::new(r.u32()?));
                }
                requests.push((query, candidates));
            }
            MediatorMessage::ConsumerWaveRequest {
                wave,
                consumer,
                requests,
            }
        }
        4 => {
            let wave = r.u64()?;
            let provider = ProviderId::new(r.u32()?);
            let n = r.count()?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(r.query()?);
            }
            MediatorMessage::ProviderWaveRequest {
                wave,
                provider,
                queries,
                request_bids: r.bool()?,
            }
        }
        5 => MediatorMessage::AllocationNotice {
            query: QueryId::new(r.u32()?),
            provider: ProviderId::new(r.u32()?),
            selected: r.bool()?,
        },
        6 => {
            let query = QueryId::new(r.u32()?);
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut providers = Vec::with_capacity(n);
            for _ in 0..n {
                providers.push(ProviderId::new(r.u32()?));
            }
            MediatorMessage::AllocationResult {
                query,
                consumer,
                providers,
            }
        }
        7 => MediatorMessage::Shutdown,
        8 => MediatorMessage::WaveEnd { wave: r.u64()? },
        9 => {
            let n = r.count()?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                counters.push((r.str()?, r.u64()?));
            }
            let n = r.count()?;
            let mut gauges = Vec::with_capacity(n);
            for _ in 0..n {
                gauges.push((r.str()?, r.u64()? as i64));
            }
            let n = r.count()?;
            let mut histograms = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str()?;
                histograms.push((
                    name,
                    HistogramSummary {
                        count: r.u64()?,
                        p50: r.f64()?,
                        p95: r.f64()?,
                        p99: r.f64()?,
                        max: r.f64()?,
                    },
                ));
            }
            MediatorMessage::StatsReply {
                snapshot: ObsSnapshot {
                    counters,
                    gauges,
                    histograms,
                },
            }
        }
        tag => return Err(FrameError::UnknownTag(tag)),
    };
    Ok((message, r.close()?))
}

/// Decodes the participant-reply frame at the start of `bytes`, returning
/// the reply and the number of bytes the frame occupied.
pub fn decode_participant_reply(bytes: &[u8]) -> Result<(ParticipantReply, usize), FrameError> {
    let mut r = FrameReader::open(bytes)?;
    let tag = r.u8()?;
    let reply = match tag {
        1 => {
            let query = QueryId::new(r.u32()?);
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                intentions.push((ProviderId::new(r.u32()?), r.f64()?));
            }
            ParticipantReply::ConsumerIntentions {
                query,
                consumer,
                intentions,
            }
        }
        2 => ParticipantReply::ProviderIntention {
            query: QueryId::new(r.u32()?),
            provider: ProviderId::new(r.u32()?),
            intention: r.f64()?,
            bid: r.bid()?,
        },
        3 => {
            let wave = r.u64()?;
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                let query = QueryId::new(r.u32()?);
                let c = r.count()?;
                let mut per_provider = Vec::with_capacity(c);
                for _ in 0..c {
                    per_provider.push((ProviderId::new(r.u32()?), r.f64()?));
                }
                intentions.push((query, per_provider));
            }
            ParticipantReply::ConsumerWaveReply {
                wave,
                consumer,
                intentions,
            }
        }
        4 => {
            let wave = r.u64()?;
            let provider = ProviderId::new(r.u32()?);
            let utilization = r.f64()?;
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                intentions.push((QueryId::new(r.u32()?), r.f64()?, r.bid()?));
            }
            ParticipantReply::ProviderWaveReply {
                wave,
                provider,
                utilization,
                intentions,
            }
        }
        5 => {
            let n = r.count()?;
            let mut consumers = Vec::with_capacity(n);
            for _ in 0..n {
                consumers.push(ConsumerId::new(r.u32()?));
            }
            let n = r.count()?;
            let mut providers = Vec::with_capacity(n);
            for _ in 0..n {
                providers.push(ProviderId::new(r.u32()?));
            }
            ParticipantReply::Hello {
                consumers,
                providers,
            }
        }
        6 => ParticipantReply::Goodbye,
        7 => ParticipantReply::StatsRequest,
        tag => return Err(FrameError::UnknownTag(tag)),
    };
    Ok((reply, r.close()?))
}

// ---- stream reassembly -------------------------------------------------

/// Reassembles self-delimiting frames from the arbitrary chunk boundaries
/// a stream transport delivers.
///
/// A TCP or Unix-domain read can return any byte count: half a length
/// prefix, one and a half frames, three frames at once. The assembler
/// buffers whatever arrives ([`FrameAssembler::extend`]) and hands back
/// complete messages one at a time
/// ([`FrameAssembler::next_mediator_message`] /
/// [`FrameAssembler::next_participant_reply`]).
///
/// Hardening: the assembler never sizes an allocation from a declared
/// length — it only stores bytes actually received — and a length prefix
/// over [`MAX_FRAME_PAYLOAD`] fails with [`FrameError::Oversized`] as
/// soon as the four prefix bytes are in, so a hostile peer cannot make
/// it buffer without bound. After an error the stream offset is poisoned
/// (frame boundaries are lost); callers should drop the connection.
///
/// ```
/// use sqlb_mediation::{encode_mediator_message, FrameAssembler, MediatorMessage};
///
/// let frame = encode_mediator_message(&MediatorMessage::Shutdown);
/// let mut assembler = FrameAssembler::new();
/// // Feed the frame one byte at a time, as a slow socket might.
/// for &byte in &frame {
///     assembler.extend(&[byte]);
/// }
/// let decoded = assembler.next_mediator_message().unwrap().unwrap();
/// assert_eq!(decoded, MediatorMessage::Shutdown);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    at: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Buffers bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact consumed bytes away before growing, so the buffer's
        // footprint tracks the unconsumed tail, not the stream history.
        if self.at > 0 && (self.at == self.buf.len() || self.at >= 4096) {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Reads from `reader` directly into the assembler's buffer — the
    /// zero-copy fill path: bytes land where the decoder will read them,
    /// with no intermediate stack chunk to copy out of. Consumed frames
    /// are compacted away first (a `memmove` of at most one partial
    /// trailing frame), so the buffer's footprint stays bounded by the
    /// unconsumed tail plus one read chunk. Returns what `reader.read`
    /// returned: the byte count, `Ok(0)` on EOF, or the I/O error.
    pub fn fill_from(&mut self, reader: &mut impl std::io::Read) -> std::io::Result<usize> {
        /// Target read size: large enough to drain a burst of wave
        /// frames per syscall, small enough not to balloon idle
        /// connections.
        const READ_CHUNK: usize = 64 * 1024;
        if self.at > 0 {
            // Everything consumed: drop it all (no copy). Otherwise a
            // partial trailing frame moves to the front — the only copy
            // this path ever performs.
            if self.at == self.buf.len() {
                self.buf.clear();
            } else {
                self.buf.drain(..self.at);
            }
            self.at = 0;
        }
        let filled = self.buf.len();
        self.buf.resize(filled + READ_CHUNK, 0);
        let result = reader.read(&mut self.buf[filled..]);
        self.buf
            .truncate(filled + result.as_ref().copied().unwrap_or(0));
        result
    }

    /// Pops the complete frame at the head of the buffer — length prefix
    /// included — as a slice borrowed from the receive buffer: the
    /// zero-copy consume path ([`decode_mediator_message`] /
    /// [`decode_participant_reply`] and [`FrameReader`] all read scalars
    /// in place from such a slice). `Ok(None)` means "keep reading".
    /// The slice stays valid until the next `extend` / `fill_from` call.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let available = &self.buf[self.at..];
        if available.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes([available[0], available[1], available[2], available[3]]);
        let payload = declared as usize;
        if payload > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Oversized(declared));
        }
        let frame_len = 4 + payload;
        if available.len() < frame_len {
            return Ok(None);
        }
        let start = self.at;
        self.at += frame_len;
        Ok(Some(&self.buf[start..start + frame_len]))
    }

    /// Pops the next complete mediator message, or `Ok(None)` when more
    /// bytes are needed.
    pub fn next_mediator_message(&mut self) -> Result<Option<MediatorMessage>, FrameError> {
        match self.next_frame()? {
            None => Ok(None),
            Some(frame) => decode_mediator_message(frame).map(|(message, _)| Some(message)),
        }
    }

    /// Pops the next complete participant reply, or `Ok(None)` when more
    /// bytes are needed.
    pub fn next_participant_reply(&mut self) -> Result<Option<ParticipantReply>, FrameError> {
        match self.next_frame()? {
            None => Ok(None),
            Some(frame) => decode_participant_reply(frame).map(|(reply, _)| Some(reply)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_types::QueryClass;

    fn wave_query(id: u32) -> Query {
        let mut query = Query::single(
            QueryId::new(id),
            ConsumerId::new(1),
            QueryClass::Heavy,
            SimTime::from_secs(12.625),
        );
        query.n = 2;
        query
    }

    fn rich_query() -> Query {
        Query {
            id: QueryId::new(77),
            consumer: ConsumerId::new(3),
            description: QueryDescription::with_topic("shipping/international", QueryClass::Light)
                .attribute("origin:FR")
                .attribute("destination:US")
                .with_cost(WorkUnits::new(137.5)),
            n: 3,
            issued_at: SimTime::from_secs(0.1),
        }
    }

    fn all_messages() -> Vec<MediatorMessage> {
        vec![
            MediatorMessage::ConsumerIntentionRequest {
                query: QueryId::new(3),
                candidates: vec![ProviderId::new(0), ProviderId::new(7)],
            },
            MediatorMessage::ProviderIntentionRequest {
                query: QueryId::new(1),
                request_bid: true,
            },
            MediatorMessage::ConsumerWaveRequest {
                wave: 42,
                consumer: ConsumerId::new(1),
                requests: vec![
                    (wave_query(1), vec![ProviderId::new(2)]),
                    (rich_query(), vec![ProviderId::new(3), ProviderId::new(4)]),
                ],
            },
            MediatorMessage::ProviderWaveRequest {
                wave: 42,
                provider: ProviderId::new(9),
                queries: vec![wave_query(1), rich_query()],
                request_bids: false,
            },
            MediatorMessage::AllocationNotice {
                query: QueryId::new(9),
                provider: ProviderId::new(4),
                selected: false,
            },
            MediatorMessage::AllocationResult {
                query: QueryId::new(9),
                consumer: ConsumerId::new(2),
                providers: vec![ProviderId::new(5)],
            },
            MediatorMessage::Shutdown,
            MediatorMessage::WaveEnd { wave: 42 },
            MediatorMessage::StatsReply {
                snapshot: ObsSnapshot::default(),
            },
            MediatorMessage::StatsReply {
                snapshot: ObsSnapshot {
                    counters: vec![("replies_credited".into(), 192), ("waves_begun".into(), 3)],
                    gauges: vec![("pipeline_depth".into(), -2)],
                    histograms: vec![(
                        "wave_gather_seconds".into(),
                        HistogramSummary {
                            count: 3,
                            p50: 0.001,
                            p95: 0.0025,
                            p99: 0.0025,
                            max: 0.00273,
                        },
                    )],
                },
            },
        ]
    }

    fn all_replies() -> Vec<ParticipantReply> {
        vec![
            ParticipantReply::ConsumerIntentions {
                query: QueryId::new(3),
                consumer: ConsumerId::new(1),
                intentions: vec![(ProviderId::new(0), 0.5), (ProviderId::new(7), -0.25)],
            },
            ParticipantReply::ProviderIntention {
                query: QueryId::new(9),
                provider: ProviderId::new(2),
                intention: -0.25,
                bid: Some(Bid::new(10.0, 1.0)),
            },
            ParticipantReply::ConsumerWaveReply {
                wave: 42,
                consumer: ConsumerId::new(1),
                intentions: vec![
                    (QueryId::new(1), vec![(ProviderId::new(2), 0.75)]),
                    (QueryId::new(2), vec![]),
                ],
            },
            ParticipantReply::ProviderWaveReply {
                wave: 42,
                provider: ProviderId::new(2),
                utilization: 0.625,
                intentions: vec![
                    (QueryId::new(1), 0.5, None),
                    (QueryId::new(2), -1.0, Some(Bid::new(7.5, 2.0))),
                ],
            },
            ParticipantReply::Hello {
                consumers: vec![ConsumerId::new(0), ConsumerId::new(2)],
                providers: vec![ProviderId::new(1)],
            },
            ParticipantReply::Goodbye,
            ParticipantReply::StatsRequest,
        ]
    }

    #[test]
    fn every_message_round_trips_through_its_frame() {
        for message in all_messages() {
            let frame = encode_mediator_message(&message);
            let (decoded, consumed) = decode_mediator_message(&frame).unwrap();
            assert_eq!(decoded, message);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_reply_round_trips_through_its_frame() {
        for reply in all_replies() {
            let frame = encode_participant_reply(&reply);
            let (decoded, consumed) = decode_participant_reply(&frame).unwrap();
            assert_eq!(decoded, reply);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn queries_round_trip_bit_identically() {
        // The socket backend's determinism contract: the decoded query
        // must be *bit*-identical to the encoded one, f64s included.
        let message = MediatorMessage::ProviderWaveRequest {
            wave: 1,
            provider: ProviderId::new(0),
            queries: vec![rich_query()],
            request_bids: true,
        };
        let frame = encode_mediator_message(&message);
        let (decoded, _) = decode_mediator_message(&frame).unwrap();
        let MediatorMessage::ProviderWaveRequest { queries, .. } = decoded else {
            panic!("wrong variant");
        };
        let original = rich_query();
        assert_eq!(queries[0], original);
        assert_eq!(
            queries[0].issued_at.as_secs().to_bits(),
            original.issued_at.as_secs().to_bits()
        );
        assert_eq!(
            queries[0].cost().value().to_bits(),
            original.cost().value().to_bits()
        );
    }

    #[test]
    fn frames_decode_back_to_back_from_one_stream() {
        let mut stream = Vec::new();
        for message in all_messages() {
            stream.extend_from_slice(&encode_mediator_message(&message));
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < stream.len() {
            let (message, consumed) = decode_mediator_message(&stream[at..]).unwrap();
            decoded.push(message);
            at += consumed;
        }
        assert_eq!(decoded, all_messages());
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked_on() {
        for message in all_messages() {
            let frame = encode_mediator_message(&message);
            for cut in 0..frame.len() {
                let err = decode_mediator_message(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(err, FrameError::Truncated | FrameError::TrailingBytes),
                    "cut at {cut}: {err:?}"
                );
            }
        }
        for reply in all_replies() {
            let frame = encode_participant_reply(&reply);
            for cut in 0..frame.len() {
                assert!(decode_participant_reply(&frame[..cut]).is_err());
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let frame = vec![1, 0, 0, 0, 200];
        assert_eq!(
            decode_mediator_message(&frame).unwrap_err(),
            FrameError::UnknownTag(200)
        );
        assert_eq!(
            decode_participant_reply(&frame).unwrap_err(),
            FrameError::UnknownTag(200)
        );
    }

    #[test]
    fn corrupted_counts_cannot_drive_huge_allocations() {
        // A ConsumerIntentionRequest whose candidate count claims u32::MAX
        // with no bytes behind it must fail cleanly.
        let mut bytes = Vec::new();
        let mut frame = FrameWriter::over(&mut bytes, 1);
        frame.u32(1);
        frame.u32(u32::MAX);
        frame.finish();
        assert_eq!(
            decode_mediator_message(&bytes).unwrap_err(),
            FrameError::TrailingBytes
        );
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation() {
        // A hostile peer declaring a ~4 GiB payload must be refused from
        // the four prefix bytes alone — by the slice decoder and by the
        // stream assembler — without any buffer being sized to it.
        let hostile = u32::MAX.to_le_bytes();
        assert_eq!(
            decode_mediator_message(&hostile).unwrap_err(),
            FrameError::Oversized(u32::MAX)
        );
        assert_eq!(
            decode_participant_reply(&hostile).unwrap_err(),
            FrameError::Oversized(u32::MAX)
        );

        let mut assembler = FrameAssembler::new();
        assembler.extend(&hostile);
        assert_eq!(
            assembler.next_mediator_message().unwrap_err(),
            FrameError::Oversized(u32::MAX)
        );
        assert_eq!(
            assembler.pending_bytes(),
            4,
            "the assembler must not have buffered anything for the declared length"
        );

        // One byte past the cap also trips; the cap itself would not.
        let declared = (MAX_FRAME_PAYLOAD as u32) + 1;
        let mut assembler = FrameAssembler::new();
        assembler.extend(&declared.to_le_bytes());
        assert_eq!(
            assembler.next_participant_reply().unwrap_err(),
            FrameError::Oversized(declared)
        );
    }

    #[test]
    fn assembler_reassembles_frames_split_at_every_boundary() {
        // The exact failure mode a stream transport introduces: reads
        // that split a frame anywhere, including inside the length
        // prefix. Feed the whole message stream in two chunks cut at
        // every possible position and require the identical sequence out.
        let mut stream = Vec::new();
        for message in all_messages() {
            stream.extend_from_slice(&encode_mediator_message(&message));
        }
        for cut in 0..=stream.len() {
            let mut assembler = FrameAssembler::new();
            let mut decoded = Vec::new();
            for chunk in [&stream[..cut], &stream[cut..]] {
                assembler.extend(chunk);
                while let Some(message) = assembler.next_mediator_message().unwrap() {
                    decoded.push(message);
                }
            }
            assert_eq!(decoded, all_messages(), "cut at {cut}");
            assert_eq!(assembler.pending_bytes(), 0);
        }
    }

    #[test]
    fn borrowed_frames_survive_fill_from_at_every_split_position() {
        // The zero-copy receive path end to end: bytes arrive through
        // `fill_from` (two reads cut at every possible position), frames
        // come out of `next_frame` as borrowed slices — length prefix
        // included — and in-place decoding must recover the identical
        // message sequence at every cut.
        let mut stream = Vec::new();
        for message in all_messages() {
            stream.extend_from_slice(&encode_mediator_message(&message));
        }
        for cut in 0..=stream.len() {
            let mut assembler = FrameAssembler::new();
            let mut decoded = Vec::new();
            for mut chunk in [&stream[..cut], &stream[cut..]] {
                while !chunk.is_empty() {
                    assert!(assembler.fill_from(&mut chunk).unwrap() > 0);
                    while let Some(frame) = assembler.next_frame().unwrap() {
                        let declared = u32::from_le_bytes(frame[..4].try_into().unwrap());
                        assert_eq!(frame.len(), 4 + declared as usize, "cut at {cut}");
                        let (message, consumed) = decode_mediator_message(frame).unwrap();
                        assert_eq!(consumed, frame.len(), "cut at {cut}");
                        decoded.push(message);
                    }
                }
            }
            assert_eq!(decoded, all_messages(), "cut at {cut}");
            assert_eq!(assembler.pending_bytes(), 0);
        }
    }

    #[test]
    fn borrowed_frames_survive_fill_from_one_byte_reads() {
        // A pathological reader that yields one byte per `read` call
        // exercises `fill_from`'s resize/compact bookkeeping on every
        // frame boundary of the reply stream.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((&byte, rest)) => {
                        buf[0] = byte;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let mut stream = Vec::new();
        for reply in all_replies() {
            stream.extend_from_slice(&encode_participant_reply(&reply));
        }
        let mut reader = OneByte(&stream);
        let mut assembler = FrameAssembler::new();
        let mut decoded = Vec::new();
        while assembler.fill_from(&mut reader).unwrap() > 0 {
            while let Some(frame) = assembler.next_frame().unwrap() {
                decoded.push(decode_participant_reply(frame).unwrap().0);
            }
        }
        assert_eq!(decoded, all_replies());
        assert_eq!(assembler.pending_bytes(), 0);
    }

    #[test]
    fn assembler_survives_byte_at_a_time_delivery() {
        let mut stream = Vec::new();
        for reply in all_replies() {
            stream.extend_from_slice(&encode_participant_reply(&reply));
        }
        let mut assembler = FrameAssembler::new();
        let mut decoded = Vec::new();
        for &byte in &stream {
            assembler.extend(&[byte]);
            while let Some(reply) = assembler.next_participant_reply().unwrap() {
                decoded.push(reply);
            }
        }
        assert_eq!(decoded, all_replies());
    }

    #[test]
    fn assembler_pops_concatenated_frames_from_one_chunk() {
        let mut stream = Vec::new();
        for message in all_messages() {
            stream.extend_from_slice(&encode_mediator_message(&message));
        }
        let mut assembler = FrameAssembler::new();
        assembler.extend(&stream);
        let mut decoded = Vec::new();
        while let Some(message) = assembler.next_mediator_message().unwrap() {
            decoded.push(message);
        }
        assert_eq!(decoded, all_messages());
    }

    #[test]
    fn assembler_waits_on_truncated_length_prefixes() {
        let frame = encode_mediator_message(&MediatorMessage::WaveEnd { wave: 7 });
        let mut assembler = FrameAssembler::new();
        for cut in 1..4 {
            assembler.extend(&frame[..cut]);
            assert!(
                assembler.next_mediator_message().unwrap().is_none(),
                "a {cut}-byte prefix is not an error, just incomplete"
            );
            assembler = FrameAssembler::new();
        }
        // Completing the prefix and payload later succeeds.
        assembler.extend(&frame[..2]);
        assert!(assembler.next_mediator_message().unwrap().is_none());
        assembler.extend(&frame[2..]);
        assert_eq!(
            assembler.next_mediator_message().unwrap().unwrap(),
            MediatorMessage::WaveEnd { wave: 7 }
        );
    }

    #[test]
    fn assembler_compacts_consumed_bytes() {
        // Long-lived connections must not accumulate the stream history.
        let frame = encode_participant_reply(&ParticipantReply::Goodbye);
        let mut assembler = FrameAssembler::new();
        for _ in 0..10_000 {
            assembler.extend(&frame);
            assembler.next_participant_reply().unwrap().unwrap();
        }
        assert_eq!(assembler.pending_bytes(), 0);
        assert!(
            assembler.buf.len() < 8192,
            "buffer should stay near the unconsumed tail, got {}",
            assembler.buf.len()
        );
    }

    #[test]
    fn invalid_utf8_in_strings_is_rejected() {
        let mut message = encode_mediator_message(&MediatorMessage::ProviderWaveRequest {
            wave: 1,
            provider: ProviderId::new(0),
            queries: vec![Query {
                description: QueryDescription::with_topic("ab", QueryClass::Light),
                ..wave_query(1)
            }],
            request_bids: false,
        });
        // The topic's two bytes sit right after the fixed prefix:
        // frame(4) + tag(1) + wave(8) + provider(4) + count(4) + id(4) +
        // consumer(4) + topic length(4) = offset 33.
        message[33] = 0xFF;
        message[34] = 0xFE;
        assert_eq!(
            decode_mediator_message(&message).unwrap_err(),
            FrameError::InvalidUtf8
        );
    }

    #[test]
    fn replies_expose_their_query_or_wave() {
        let single = ParticipantReply::ConsumerIntentions {
            query: QueryId::new(3),
            consumer: ConsumerId::new(1),
            intentions: vec![(ProviderId::new(0), 0.5)],
        };
        assert_eq!(single.query(), Some(QueryId::new(3)));
        assert_eq!(single.wave(), None);
        let wave = ParticipantReply::ProviderWaveReply {
            wave: 9,
            provider: ProviderId::new(2),
            utilization: 0.0,
            intentions: vec![],
        };
        assert_eq!(wave.query(), None);
        assert_eq!(wave.wave(), Some(9));
        assert_eq!(ParticipantReply::Goodbye.query(), None);
        assert_eq!(ParticipantReply::Goodbye.wave(), None);
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = MediatorMessage::ProviderIntentionRequest {
            query: QueryId::new(1),
            request_bid: true,
        };
        assert_eq!(m.clone(), m);
        let n = MediatorMessage::AllocationNotice {
            query: QueryId::new(1),
            provider: ProviderId::new(0),
            selected: false,
        };
        assert_ne!(m, n);
    }
}
