//! The message protocol between the mediator and the participants.
//!
//! The protocol mirrors the steps of Algorithm 1 and the mediation
//! architecture of Lamarre et al. \[10\] that the paper builds on: the
//! mediator asks the issuing consumer for its intentions towards the
//! candidate providers, asks every candidate provider for its intention
//! (and, for economic methods, its bid), and finally "sends the mediation
//! result to the `P_q \ \hat{P}_q` providers", i.e. also tells the
//! candidates that were *not* selected.

use serde::{Deserialize, Serialize};
use sqlb_core::allocation::Bid;
use sqlb_types::{ConsumerId, ProviderId, QueryId};

/// Messages sent by the mediator to participants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MediatorMessage {
    /// Ask the consumer for its intentions towards the candidate providers
    /// of one of its queries (Algorithm 1, line 2).
    ConsumerIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// The candidate set `P_q`.
        candidates: Vec<ProviderId>,
    },
    /// Ask a provider for its intention to perform a query
    /// (Algorithm 1, lines 3–4).
    ProviderIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// Whether the provider should also return a bid (economic
        /// methods).
        request_bid: bool,
    },
    /// Notify a candidate provider of the mediation result
    /// (Algorithm 1, lines 9–10).
    AllocationNotice {
        /// The query that was allocated.
        query: QueryId,
        /// Whether this provider was selected to perform the query.
        selected: bool,
    },
    /// Notify the consumer of the final allocation.
    AllocationResult {
        /// The query that was allocated.
        query: QueryId,
        /// The providers the query was allocated to.
        providers: Vec<ProviderId>,
    },
    /// Ask the participant to shut down (used when tearing the runtime
    /// down).
    Shutdown,
}

/// Replies sent by participants to the mediator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParticipantReply {
    /// The consumer's intentions towards the candidate providers.
    ConsumerIntentions {
        /// The query the intentions are about.
        query: QueryId,
        /// The consumer that answered.
        consumer: ConsumerId,
        /// One `(provider, intention)` pair per candidate.
        intentions: Vec<(ProviderId, f64)>,
    },
    /// A provider's intention (and optional bid) for a query.
    ProviderIntention {
        /// The query the intention is about.
        query: QueryId,
        /// The provider that answered.
        provider: ProviderId,
        /// The provider's intention `pi_p(q)`.
        intention: f64,
        /// The provider's bid, when requested.
        bid: Option<Bid>,
    },
}

impl ParticipantReply {
    /// The query this reply is about.
    pub fn query(&self) -> QueryId {
        match self {
            ParticipantReply::ConsumerIntentions { query, .. } => *query,
            ParticipantReply::ProviderIntention { query, .. } => *query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_expose_their_query() {
        let r = ParticipantReply::ConsumerIntentions {
            query: QueryId::new(3),
            consumer: ConsumerId::new(1),
            intentions: vec![(ProviderId::new(0), 0.5)],
        };
        assert_eq!(r.query(), QueryId::new(3));
        let r = ParticipantReply::ProviderIntention {
            query: QueryId::new(9),
            provider: ProviderId::new(2),
            intention: -0.25,
            bid: Some(Bid::new(10.0, 1.0)),
        };
        assert_eq!(r.query(), QueryId::new(9));
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = MediatorMessage::ProviderIntentionRequest {
            query: QueryId::new(1),
            request_bid: true,
        };
        assert_eq!(m.clone(), m);
        let n = MediatorMessage::AllocationNotice {
            query: QueryId::new(1),
            selected: false,
        };
        assert_ne!(m, n);
    }
}
