//! The message protocol between the mediator and the participants, and
//! its wire framing.
//!
//! The protocol mirrors the steps of Algorithm 1 and the mediation
//! architecture of Lamarre et al. \[10\] that the paper builds on: the
//! mediator asks the issuing consumer for its intentions towards the
//! candidate providers, asks every candidate provider for its intention
//! (and, for economic methods, its bid), and finally "sends the mediation
//! result to the `P_q \ \hat{P}_q` providers", i.e. also tells the
//! candidates that were *not* selected.
//!
//! Two request shapes exist side by side:
//!
//! * the **single-query** requests of the original runtime (one message
//!   per query per participant);
//! * the **wave** requests the reactor natively speaks
//!   ([`MediatorMessage::ConsumerWaveRequest`] /
//!   [`MediatorMessage::ProviderWaveRequest`]): one message per
//!   participant covering every query of a mediation batch, answered in
//!   one reply. Waves are numbered so a reply that arrives after its
//!   wave's deadline can be recognized as stale and discarded.
//!
//! # Framing
//!
//! In-process backends pass these values directly, but a networked
//! deployment puts them on a byte stream. [`encode_mediator_message`] /
//! [`decode_mediator_message`] (and the `participant_reply` pair) define
//! that wire contract: each message is one *frame* —
//!
//! ```text
//! [u32 LE: payload length] [u8: variant tag] [payload…]
//! ```
//!
//! — with all integers little-endian, `f64`s as their IEEE-754 bits,
//! vectors as a `u32` count followed by the elements, and options as a
//! `0`/`1` presence byte. Decoding never panics on malformed input: a
//! short buffer yields [`FrameError::Truncated`], an unknown tag
//! [`FrameError::UnknownTag`], and a frame whose payload disagrees with
//! its declared length [`FrameError::TrailingBytes`]. Frames are
//! self-delimiting, so a stream of them can be decoded back-to-back.

use serde::{Deserialize, Serialize};
use sqlb_core::allocation::Bid;
use sqlb_types::{ConsumerId, ProviderId, QueryId};

/// Messages sent by the mediator to participants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MediatorMessage {
    /// Ask the consumer for its intentions towards the candidate providers
    /// of one of its queries (Algorithm 1, line 2).
    ConsumerIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// The candidate set `P_q`.
        candidates: Vec<ProviderId>,
    },
    /// Ask a provider for its intention to perform a query
    /// (Algorithm 1, lines 3–4).
    ProviderIntentionRequest {
        /// The query being allocated.
        query: QueryId,
        /// Whether the provider should also return a bid (economic
        /// methods).
        request_bid: bool,
    },
    /// Ask the consumer for its intentions for *every* query of one
    /// mediation wave, in one round-trip (the reactor's native shape).
    ConsumerWaveRequest {
        /// Identifier of the wave the replies belong to.
        wave: u64,
        /// One entry per query of the consumer's in this wave: the query
        /// and its candidate set.
        requests: Vec<(QueryId, Vec<ProviderId>)>,
    },
    /// Ask a provider for its intention (and optionally bid) for every
    /// query of one mediation wave that lists it as a candidate.
    ProviderWaveRequest {
        /// Identifier of the wave the replies belong to.
        wave: u64,
        /// The queries the provider is a candidate for.
        queries: Vec<QueryId>,
        /// Whether the provider should also return bids.
        request_bids: bool,
    },
    /// Notify a candidate provider of the mediation result
    /// (Algorithm 1, lines 9–10).
    AllocationNotice {
        /// The query that was allocated.
        query: QueryId,
        /// Whether this provider was selected to perform the query.
        selected: bool,
    },
    /// Notify the consumer of the final allocation.
    AllocationResult {
        /// The query that was allocated.
        query: QueryId,
        /// The providers the query was allocated to.
        providers: Vec<ProviderId>,
    },
    /// Ask the participant to shut down (used when tearing the runtime
    /// down).
    Shutdown,
}

/// Replies sent by participants to the mediator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParticipantReply {
    /// The consumer's intentions towards the candidate providers.
    ConsumerIntentions {
        /// The query the intentions are about.
        query: QueryId,
        /// The consumer that answered.
        consumer: ConsumerId,
        /// One `(provider, intention)` pair per candidate.
        intentions: Vec<(ProviderId, f64)>,
    },
    /// A provider's intention (and optional bid) for a query.
    ProviderIntention {
        /// The query the intention is about.
        query: QueryId,
        /// The provider that answered.
        provider: ProviderId,
        /// The provider's intention `pi_p(q)`.
        intention: f64,
        /// The provider's bid, when requested.
        bid: Option<Bid>,
    },
    /// A consumer's answer to a [`MediatorMessage::ConsumerWaveRequest`].
    ConsumerWaveReply {
        /// The wave this reply answers.
        wave: u64,
        /// The consumer that answered.
        consumer: ConsumerId,
        /// Per query of the wave, one `(provider, intention)` pair per
        /// candidate.
        intentions: Vec<(QueryId, Vec<(ProviderId, f64)>)>,
    },
    /// A provider's answer to a [`MediatorMessage::ProviderWaveRequest`].
    ProviderWaveReply {
        /// The wave this reply answers.
        wave: u64,
        /// The provider that answered.
        provider: ProviderId,
        /// The provider's current utilization `Ut(p)`, shown to the
        /// mediator alongside its intentions (utilization-aware methods
        /// such as the Capacity-based baseline rank by it).
        utilization: f64,
        /// One `(query, intention, bid)` triple per query of the wave.
        intentions: Vec<(QueryId, f64, Option<Bid>)>,
    },
}

impl ParticipantReply {
    /// The query a single-query reply is about; `None` for wave replies,
    /// which cover several queries at once.
    pub fn query(&self) -> Option<QueryId> {
        match self {
            ParticipantReply::ConsumerIntentions { query, .. } => Some(*query),
            ParticipantReply::ProviderIntention { query, .. } => Some(*query),
            ParticipantReply::ConsumerWaveReply { .. } => None,
            ParticipantReply::ProviderWaveReply { .. } => None,
        }
    }

    /// The wave a wave reply answers; `None` for single-query replies.
    pub fn wave(&self) -> Option<u64> {
        match self {
            ParticipantReply::ConsumerWaveReply { wave, .. } => Some(*wave),
            ParticipantReply::ProviderWaveReply { wave, .. } => Some(*wave),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame did.
    Truncated,
    /// The frame's variant tag is not part of the protocol.
    UnknownTag(u8),
    /// The frame's content disagrees with its declared length: either a
    /// field ran past the end of the declared payload, or decoding
    /// finished with undeclared bytes left over. Both mean the frame
    /// lied about its size.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            FrameError::TrailingBytes => {
                write!(f, "frame content disagrees with its declared length")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ---- encoding ----------------------------------------------------------

struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    fn new(tag: u8) -> Self {
        // Length placeholder first; patched in finish().
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        buf.push(tag);
        FrameWriter { buf }
    }

    fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn bool(&mut self, value: bool) {
        self.buf.push(value as u8);
    }

    fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    fn bid(&mut self, bid: &Option<Bid>) {
        match bid {
            None => self.u8(0),
            Some(bid) => {
                self.u8(1);
                self.f64(bid.price);
                self.f64(bid.delay);
            }
        }
    }

    fn count(&mut self, len: usize) {
        self.u32(u32::try_from(len).expect("protocol vectors fit in u32"));
    }

    fn finish(mut self) -> Vec<u8> {
        let payload = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&payload.to_le_bytes());
        self.buf
    }
}

/// Encodes a mediator message as one self-delimiting frame.
pub fn encode_mediator_message(message: &MediatorMessage) -> Vec<u8> {
    match message {
        MediatorMessage::ConsumerIntentionRequest { query, candidates } => {
            let mut w = FrameWriter::new(1);
            w.u32(query.raw());
            w.count(candidates.len());
            for p in candidates {
                w.u32(p.raw());
            }
            w.finish()
        }
        MediatorMessage::ProviderIntentionRequest { query, request_bid } => {
            let mut w = FrameWriter::new(2);
            w.u32(query.raw());
            w.bool(*request_bid);
            w.finish()
        }
        MediatorMessage::ConsumerWaveRequest { wave, requests } => {
            let mut w = FrameWriter::new(3);
            w.u64(*wave);
            w.count(requests.len());
            for (query, candidates) in requests {
                w.u32(query.raw());
                w.count(candidates.len());
                for p in candidates {
                    w.u32(p.raw());
                }
            }
            w.finish()
        }
        MediatorMessage::ProviderWaveRequest {
            wave,
            queries,
            request_bids,
        } => {
            let mut w = FrameWriter::new(4);
            w.u64(*wave);
            w.count(queries.len());
            for query in queries {
                w.u32(query.raw());
            }
            w.bool(*request_bids);
            w.finish()
        }
        MediatorMessage::AllocationNotice { query, selected } => {
            let mut w = FrameWriter::new(5);
            w.u32(query.raw());
            w.bool(*selected);
            w.finish()
        }
        MediatorMessage::AllocationResult { query, providers } => {
            let mut w = FrameWriter::new(6);
            w.u32(query.raw());
            w.count(providers.len());
            for p in providers {
                w.u32(p.raw());
            }
            w.finish()
        }
        MediatorMessage::Shutdown => FrameWriter::new(7).finish(),
    }
}

/// Encodes a participant reply as one self-delimiting frame.
pub fn encode_participant_reply(reply: &ParticipantReply) -> Vec<u8> {
    match reply {
        ParticipantReply::ConsumerIntentions {
            query,
            consumer,
            intentions,
        } => {
            let mut w = FrameWriter::new(1);
            w.u32(query.raw());
            w.u32(consumer.raw());
            w.count(intentions.len());
            for (p, intention) in intentions {
                w.u32(p.raw());
                w.f64(*intention);
            }
            w.finish()
        }
        ParticipantReply::ProviderIntention {
            query,
            provider,
            intention,
            bid,
        } => {
            let mut w = FrameWriter::new(2);
            w.u32(query.raw());
            w.u32(provider.raw());
            w.f64(*intention);
            w.bid(bid);
            w.finish()
        }
        ParticipantReply::ConsumerWaveReply {
            wave,
            consumer,
            intentions,
        } => {
            let mut w = FrameWriter::new(3);
            w.u64(*wave);
            w.u32(consumer.raw());
            w.count(intentions.len());
            for (query, per_provider) in intentions {
                w.u32(query.raw());
                w.count(per_provider.len());
                for (p, intention) in per_provider {
                    w.u32(p.raw());
                    w.f64(*intention);
                }
            }
            w.finish()
        }
        ParticipantReply::ProviderWaveReply {
            wave,
            provider,
            utilization,
            intentions,
        } => {
            let mut w = FrameWriter::new(4);
            w.u64(*wave);
            w.u32(provider.raw());
            w.f64(*utilization);
            w.count(intentions.len());
            for (query, intention, bid) in intentions {
                w.u32(query.raw());
                w.f64(*intention);
                w.bid(bid);
            }
            w.finish()
        }
    }
}

// ---- decoding ----------------------------------------------------------

struct FrameReader<'a> {
    bytes: &'a [u8],
    at: usize,
    end: usize,
}

impl<'a> FrameReader<'a> {
    /// Opens the frame at the start of `bytes`: reads the length prefix
    /// and bounds the reader to the declared payload.
    fn open(bytes: &'a [u8]) -> Result<Self, FrameError> {
        if bytes.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let payload = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let end = 4usize.checked_add(payload).ok_or(FrameError::Truncated)?;
        if bytes.len() < end {
            return Err(FrameError::Truncated);
        }
        Ok(FrameReader { bytes, at: 4, end })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let next = self.at.checked_add(n).ok_or(FrameError::TrailingBytes)?;
        if next > self.end {
            return Err(FrameError::TrailingBytes);
        }
        let slice = &self.bytes[self.at..next];
        self.at = next;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bid(&mut self) -> Result<Option<Bid>, FrameError> {
        if self.bool()? {
            Ok(Some(Bid::new(self.f64()?, self.f64()?)))
        } else {
            Ok(None)
        }
    }

    /// A vector count, sanity-bounded by the bytes remaining in the frame
    /// (every element occupies at least one byte), so a corrupted count
    /// cannot drive a huge allocation.
    fn count(&mut self) -> Result<usize, FrameError> {
        let count = self.u32()? as usize;
        if count > self.end - self.at {
            return Err(FrameError::TrailingBytes);
        }
        Ok(count)
    }

    /// Total frame length, once fully consumed.
    fn close(self) -> Result<usize, FrameError> {
        if self.at != self.end {
            return Err(FrameError::TrailingBytes);
        }
        Ok(self.end)
    }
}

/// Decodes the mediator-message frame at the start of `bytes`, returning
/// the message and the number of bytes the frame occupied (so frames can
/// be decoded back-to-back from one stream).
pub fn decode_mediator_message(bytes: &[u8]) -> Result<(MediatorMessage, usize), FrameError> {
    let mut r = FrameReader::open(bytes)?;
    let tag = r.u8()?;
    let message = match tag {
        1 => {
            let query = QueryId::new(r.u32()?);
            let n = r.count()?;
            let mut candidates = Vec::with_capacity(n);
            for _ in 0..n {
                candidates.push(ProviderId::new(r.u32()?));
            }
            MediatorMessage::ConsumerIntentionRequest { query, candidates }
        }
        2 => MediatorMessage::ProviderIntentionRequest {
            query: QueryId::new(r.u32()?),
            request_bid: r.bool()?,
        },
        3 => {
            let wave = r.u64()?;
            let n = r.count()?;
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                let query = QueryId::new(r.u32()?);
                let c = r.count()?;
                let mut candidates = Vec::with_capacity(c);
                for _ in 0..c {
                    candidates.push(ProviderId::new(r.u32()?));
                }
                requests.push((query, candidates));
            }
            MediatorMessage::ConsumerWaveRequest { wave, requests }
        }
        4 => {
            let wave = r.u64()?;
            let n = r.count()?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(QueryId::new(r.u32()?));
            }
            MediatorMessage::ProviderWaveRequest {
                wave,
                queries,
                request_bids: r.bool()?,
            }
        }
        5 => MediatorMessage::AllocationNotice {
            query: QueryId::new(r.u32()?),
            selected: r.bool()?,
        },
        6 => {
            let query = QueryId::new(r.u32()?);
            let n = r.count()?;
            let mut providers = Vec::with_capacity(n);
            for _ in 0..n {
                providers.push(ProviderId::new(r.u32()?));
            }
            MediatorMessage::AllocationResult { query, providers }
        }
        7 => MediatorMessage::Shutdown,
        tag => return Err(FrameError::UnknownTag(tag)),
    };
    Ok((message, r.close()?))
}

/// Decodes the participant-reply frame at the start of `bytes`, returning
/// the reply and the number of bytes the frame occupied.
pub fn decode_participant_reply(bytes: &[u8]) -> Result<(ParticipantReply, usize), FrameError> {
    let mut r = FrameReader::open(bytes)?;
    let tag = r.u8()?;
    let reply = match tag {
        1 => {
            let query = QueryId::new(r.u32()?);
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                intentions.push((ProviderId::new(r.u32()?), r.f64()?));
            }
            ParticipantReply::ConsumerIntentions {
                query,
                consumer,
                intentions,
            }
        }
        2 => ParticipantReply::ProviderIntention {
            query: QueryId::new(r.u32()?),
            provider: ProviderId::new(r.u32()?),
            intention: r.f64()?,
            bid: r.bid()?,
        },
        3 => {
            let wave = r.u64()?;
            let consumer = ConsumerId::new(r.u32()?);
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                let query = QueryId::new(r.u32()?);
                let c = r.count()?;
                let mut per_provider = Vec::with_capacity(c);
                for _ in 0..c {
                    per_provider.push((ProviderId::new(r.u32()?), r.f64()?));
                }
                intentions.push((query, per_provider));
            }
            ParticipantReply::ConsumerWaveReply {
                wave,
                consumer,
                intentions,
            }
        }
        4 => {
            let wave = r.u64()?;
            let provider = ProviderId::new(r.u32()?);
            let utilization = r.f64()?;
            let n = r.count()?;
            let mut intentions = Vec::with_capacity(n);
            for _ in 0..n {
                intentions.push((QueryId::new(r.u32()?), r.f64()?, r.bid()?));
            }
            ParticipantReply::ProviderWaveReply {
                wave,
                provider,
                utilization,
                intentions,
            }
        }
        tag => return Err(FrameError::UnknownTag(tag)),
    };
    Ok((reply, r.close()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<MediatorMessage> {
        vec![
            MediatorMessage::ConsumerIntentionRequest {
                query: QueryId::new(3),
                candidates: vec![ProviderId::new(0), ProviderId::new(7)],
            },
            MediatorMessage::ProviderIntentionRequest {
                query: QueryId::new(1),
                request_bid: true,
            },
            MediatorMessage::ConsumerWaveRequest {
                wave: 42,
                requests: vec![
                    (QueryId::new(1), vec![ProviderId::new(2)]),
                    (
                        QueryId::new(2),
                        vec![ProviderId::new(3), ProviderId::new(4)],
                    ),
                ],
            },
            MediatorMessage::ProviderWaveRequest {
                wave: 42,
                queries: vec![QueryId::new(1), QueryId::new(2)],
                request_bids: false,
            },
            MediatorMessage::AllocationNotice {
                query: QueryId::new(9),
                selected: false,
            },
            MediatorMessage::AllocationResult {
                query: QueryId::new(9),
                providers: vec![ProviderId::new(5)],
            },
            MediatorMessage::Shutdown,
        ]
    }

    fn all_replies() -> Vec<ParticipantReply> {
        vec![
            ParticipantReply::ConsumerIntentions {
                query: QueryId::new(3),
                consumer: ConsumerId::new(1),
                intentions: vec![(ProviderId::new(0), 0.5), (ProviderId::new(7), -0.25)],
            },
            ParticipantReply::ProviderIntention {
                query: QueryId::new(9),
                provider: ProviderId::new(2),
                intention: -0.25,
                bid: Some(Bid::new(10.0, 1.0)),
            },
            ParticipantReply::ConsumerWaveReply {
                wave: 42,
                consumer: ConsumerId::new(1),
                intentions: vec![
                    (QueryId::new(1), vec![(ProviderId::new(2), 0.75)]),
                    (QueryId::new(2), vec![]),
                ],
            },
            ParticipantReply::ProviderWaveReply {
                wave: 42,
                provider: ProviderId::new(2),
                utilization: 0.625,
                intentions: vec![
                    (QueryId::new(1), 0.5, None),
                    (QueryId::new(2), -1.0, Some(Bid::new(7.5, 2.0))),
                ],
            },
        ]
    }

    #[test]
    fn every_message_round_trips_through_its_frame() {
        for message in all_messages() {
            let frame = encode_mediator_message(&message);
            let (decoded, consumed) = decode_mediator_message(&frame).unwrap();
            assert_eq!(decoded, message);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_reply_round_trips_through_its_frame() {
        for reply in all_replies() {
            let frame = encode_participant_reply(&reply);
            let (decoded, consumed) = decode_participant_reply(&frame).unwrap();
            assert_eq!(decoded, reply);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn frames_decode_back_to_back_from_one_stream() {
        let mut stream = Vec::new();
        for message in all_messages() {
            stream.extend_from_slice(&encode_mediator_message(&message));
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < stream.len() {
            let (message, consumed) = decode_mediator_message(&stream[at..]).unwrap();
            decoded.push(message);
            at += consumed;
        }
        assert_eq!(decoded, all_messages());
    }

    #[test]
    fn truncated_frames_are_rejected_not_panicked_on() {
        for message in all_messages() {
            let frame = encode_mediator_message(&message);
            for cut in 0..frame.len() {
                let err = decode_mediator_message(&frame[..cut]).unwrap_err();
                assert!(
                    matches!(err, FrameError::Truncated | FrameError::TrailingBytes),
                    "cut at {cut}: {err:?}"
                );
            }
        }
        for reply in all_replies() {
            let frame = encode_participant_reply(&reply);
            for cut in 0..frame.len() {
                assert!(decode_participant_reply(&frame[..cut]).is_err());
            }
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let frame = vec![1, 0, 0, 0, 200];
        assert_eq!(
            decode_mediator_message(&frame).unwrap_err(),
            FrameError::UnknownTag(200)
        );
        assert_eq!(
            decode_participant_reply(&frame).unwrap_err(),
            FrameError::UnknownTag(200)
        );
    }

    #[test]
    fn corrupted_counts_cannot_drive_huge_allocations() {
        // A ConsumerIntentionRequest whose candidate count claims u32::MAX
        // with no bytes behind it must fail cleanly.
        let mut frame = FrameWriter::new(1);
        frame.u32(1);
        frame.u32(u32::MAX);
        let bytes = frame.finish();
        assert_eq!(
            decode_mediator_message(&bytes).unwrap_err(),
            FrameError::TrailingBytes
        );
    }

    #[test]
    fn replies_expose_their_query_or_wave() {
        let single = ParticipantReply::ConsumerIntentions {
            query: QueryId::new(3),
            consumer: ConsumerId::new(1),
            intentions: vec![(ProviderId::new(0), 0.5)],
        };
        assert_eq!(single.query(), Some(QueryId::new(3)));
        assert_eq!(single.wave(), None);
        let wave = ParticipantReply::ProviderWaveReply {
            wave: 9,
            provider: ProviderId::new(2),
            utilization: 0.0,
            intentions: vec![],
        };
        assert_eq!(wave.query(), None);
        assert_eq!(wave.wave(), Some(9));
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let m = MediatorMessage::ProviderIntentionRequest {
            query: QueryId::new(1),
            request_bid: true,
        };
        assert_eq!(m.clone(), m);
        let n = MediatorMessage::AllocationNotice {
            query: QueryId::new(1),
            selected: false,
        };
        assert_ne!(m, n);
    }
}
