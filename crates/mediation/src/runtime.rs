//! Thread-per-participant mediation runtime.
//!
//! The runtime realizes the concurrent part of Algorithm 1: for each query
//! it *forks* an intention request to the issuing consumer and to every
//! candidate provider (each participant runs on its own thread), *waits
//! until* all answers have arrived *or a timeout* elapses, and treats
//! missing answers as indifference (`0`). After the allocation decision it
//! notifies every candidate of the mediation result, selected or not.

use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use sqlb_core::allocation::{Allocation, AllocationMethod, Bid, CandidateInfo};
use sqlb_core::MediatorState;
use sqlb_types::{ConsumerId, ProviderId, Query, QueryId};

/// Behaviour of a consumer participant reachable through the runtime.
pub trait ConsumerEndpoint: Send + 'static {
    /// The consumer's intentions towards the candidate providers of its
    /// query (the vector `CI_q`).
    fn intentions(&mut self, query: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)>;

    /// Batched form of [`ConsumerEndpoint::intentions`]: one request
    /// covering several of the consumer's queries, answered in one reply.
    /// The default implementation loops over the single-query method;
    /// endpoints can override it to amortize per-request work.
    fn intentions_batch(
        &mut self,
        requests: &[(Query, Vec<ProviderId>)],
    ) -> Vec<(QueryId, Vec<(ProviderId, f64)>)> {
        requests
            .iter()
            .map(|(query, candidates)| (query.id, self.intentions(query, candidates)))
            .collect()
    }

    /// Notification of the final allocation of one of the consumer's
    /// queries.
    fn allocation_result(&mut self, _query: QueryId, _providers: &[ProviderId]) {}

    /// When this endpoint's replies become available, as modelled by the
    /// asynchronous reactor ([`crate::reactor`]). The threaded runtime
    /// ignores this hook — its endpoints model latency by actually
    /// blocking on their own thread — while the reactor uses it to park
    /// the endpoint's state machine on its timer heap instead of
    /// sleeping. Queried once per wave the endpoint takes part in.
    fn latency(&mut self) -> crate::reactor::Latency {
        crate::reactor::Latency::Immediate
    }
}

/// Behaviour of a provider participant reachable through the runtime.
pub trait ProviderEndpoint: Send + 'static {
    /// The provider's intention `pi_p(q)` for performing the query.
    fn intention(&mut self, query: &Query) -> f64;

    /// The provider's bid, when the allocation method runs an economic
    /// protocol.
    fn bid(&mut self, _query: &Query) -> Option<Bid> {
        None
    }

    /// Batched form of [`ProviderEndpoint::intention`]: one request
    /// covering every query of a mediation batch that lists this provider
    /// as a candidate, answered in one reply (with bids when the protocol
    /// asks for them). The default implementation loops over the
    /// single-query methods.
    fn intention_batch(
        &mut self,
        queries: &[Query],
        request_bids: bool,
    ) -> Vec<(QueryId, f64, Option<Bid>)> {
        queries
            .iter()
            .map(|query| {
                let intention = self.intention(query);
                let bid = if request_bids { self.bid(query) } else { None };
                (query.id, intention, bid)
            })
            .collect()
    }

    /// Notification of the mediation result (selected or not).
    fn allocation_notice(&mut self, _query: QueryId, _selected: bool) {}

    /// When this endpoint's replies become available, as modelled by the
    /// asynchronous reactor ([`crate::reactor`]). Ignored by the threaded
    /// runtime (see [`ConsumerEndpoint::latency`]).
    fn latency(&mut self) -> crate::reactor::Latency {
        crate::reactor::Latency::Immediate
    }

    /// The provider's current utilization `Ut(p)`, shown to the mediator
    /// alongside its intentions. Methods that do not read utilization
    /// (SQLB proper) ignore it, but the Capacity-based baseline ranks by
    /// it — endpoints serving such a method should override the `0.0`
    /// (idle) default. Queried once per wave by the reactor facade;
    /// the legacy threaded runtime does not gather utilization at all.
    fn utilization(&mut self) -> f64 {
        0.0
    }
}

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// How long the mediator waits for intention replies before falling
    /// back to indifference (Algorithm 1, line 5).
    pub timeout: Duration,
    /// Whether provider intention requests also ask for a bid.
    pub request_bids: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            timeout: Duration::from_millis(200),
            request_bids: false,
        }
    }
}

enum ConsumerRequest {
    Intentions {
        query: Query,
        candidates: Vec<ProviderId>,
    },
    IntentionsBatch {
        batch: u64,
        requests: Vec<(Query, Vec<ProviderId>)>,
    },
    Result {
        query: QueryId,
        providers: Vec<ProviderId>,
    },
    Shutdown,
}

enum ProviderRequest {
    Intention {
        query: Query,
        request_bid: bool,
    },
    IntentionBatch {
        batch: u64,
        queries: Vec<Query>,
        request_bids: bool,
    },
    Notice {
        query: QueryId,
        selected: bool,
    },
    Shutdown,
}

enum Reply {
    Consumer {
        query: QueryId,
        intentions: Vec<(ProviderId, f64)>,
    },
    Provider {
        query: QueryId,
        provider: ProviderId,
        intention: f64,
        bid: Option<Bid>,
    },
    ConsumerBatch {
        batch: u64,
        intentions: Vec<(QueryId, Vec<(ProviderId, f64)>)>,
    },
    ProviderBatch {
        batch: u64,
        provider: ProviderId,
        intentions: Vec<(QueryId, f64, Option<Bid>)>,
    },
}

/// The mediation runtime: owns one worker thread per registered
/// participant and drives the fork / waituntil / timeout protocol.
pub struct MediationRuntime {
    config: RuntimeConfig,
    consumers: HashMap<ConsumerId, Sender<ConsumerRequest>>,
    providers: HashMap<ProviderId, Sender<ProviderRequest>>,
    reply_tx: Sender<Reply>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    /// Identifier of the next mediation batch, so late batch replies can
    /// be told apart from the current round's.
    next_batch: std::sync::atomic::AtomicU64,
}

impl MediationRuntime {
    /// Creates an empty runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        let (reply_tx, reply_rx) = unbounded();
        MediationRuntime {
            config,
            consumers: HashMap::new(),
            providers: HashMap::new(),
            reply_tx,
            reply_rx,
            handles: Vec::new(),
            next_batch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Registers a consumer endpoint; a dedicated worker thread starts
    /// serving its intention requests.
    pub fn register_consumer(&mut self, id: ConsumerId, mut endpoint: impl ConsumerEndpoint) {
        let (tx, rx) = unbounded::<ConsumerRequest>();
        let reply_tx = self.reply_tx.clone();
        let handle = std::thread::spawn(move || {
            while let Ok(request) = rx.recv() {
                match request {
                    ConsumerRequest::Intentions { query, candidates } => {
                        let intentions = endpoint.intentions(&query, &candidates);
                        let _ = reply_tx.send(Reply::Consumer {
                            query: query.id,
                            intentions,
                        });
                    }
                    ConsumerRequest::IntentionsBatch { batch, requests } => {
                        let intentions = endpoint.intentions_batch(&requests);
                        let _ = reply_tx.send(Reply::ConsumerBatch { batch, intentions });
                    }
                    ConsumerRequest::Result { query, providers } => {
                        endpoint.allocation_result(query, &providers);
                    }
                    ConsumerRequest::Shutdown => break,
                }
            }
        });
        self.consumers.insert(id, tx);
        self.handles.push(handle);
    }

    /// Registers a provider endpoint.
    pub fn register_provider(&mut self, id: ProviderId, mut endpoint: impl ProviderEndpoint) {
        let (tx, rx) = unbounded::<ProviderRequest>();
        let reply_tx = self.reply_tx.clone();
        let handle = std::thread::spawn(move || {
            while let Ok(request) = rx.recv() {
                match request {
                    ProviderRequest::Intention { query, request_bid } => {
                        let intention = endpoint.intention(&query);
                        let bid = if request_bid {
                            endpoint.bid(&query)
                        } else {
                            None
                        };
                        let _ = reply_tx.send(Reply::Provider {
                            query: query.id,
                            provider: id,
                            intention,
                            bid,
                        });
                    }
                    ProviderRequest::IntentionBatch {
                        batch,
                        queries,
                        request_bids,
                    } => {
                        let intentions = endpoint.intention_batch(&queries, request_bids);
                        let _ = reply_tx.send(Reply::ProviderBatch {
                            batch,
                            provider: id,
                            intentions,
                        });
                    }
                    ProviderRequest::Notice { query, selected } => {
                        endpoint.allocation_notice(query, selected);
                    }
                    ProviderRequest::Shutdown => break,
                }
            }
        });
        self.providers.insert(id, tx);
        self.handles.push(handle);
    }

    /// Removes a participant (e.g. on departure). Its worker thread shuts
    /// down once it drains its queue.
    pub fn deregister_provider(&mut self, id: ProviderId) {
        if let Some(tx) = self.providers.remove(&id) {
            let _ = tx.send(ProviderRequest::Shutdown);
        }
    }

    /// Number of registered providers.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Number of registered consumers.
    pub fn consumer_count(&self) -> usize {
        self.consumers.len()
    }

    /// Gathers the candidate information for one query: forks the intention
    /// requests, waits for the replies until the configured timeout and
    /// fills in indifference (`0`) for missing answers (Algorithm 1,
    /// lines 2–5).
    pub fn gather(&self, query: &Query, candidates: &[ProviderId]) -> Vec<CandidateInfo> {
        // Drain any stale reply left over from a previous, timed-out
        // mediation round.
        while self.reply_rx.try_recv().is_ok() {}

        let mut expected = 0usize;
        if let Some(tx) = self.consumers.get(&query.consumer) {
            let _ = tx.send(ConsumerRequest::Intentions {
                query: query.clone(),
                candidates: candidates.to_vec(),
            });
            expected += 1;
        }
        for provider in candidates {
            if let Some(tx) = self.providers.get(provider) {
                let _ = tx.send(ProviderRequest::Intention {
                    query: query.clone(),
                    request_bid: self.config.request_bids,
                });
                expected += 1;
            }
        }

        let mut consumer_intentions: HashMap<ProviderId, f64> = HashMap::new();
        let mut provider_intentions: HashMap<ProviderId, (f64, Option<Bid>)> = HashMap::new();
        let deadline = Instant::now() + self.config.timeout;
        let mut received = 0usize;
        while received < expected {
            match self.reply_rx.recv_deadline(deadline) {
                Ok(Reply::Consumer {
                    query: replied,
                    intentions,
                }) if replied == query.id => {
                    received += 1;
                    consumer_intentions.extend(intentions);
                }
                Ok(Reply::Provider {
                    query: replied,
                    provider,
                    intention,
                    bid,
                }) if replied == query.id => {
                    received += 1;
                    provider_intentions.insert(provider, (intention, bid));
                }
                Ok(_) => continue, // stale reply for an older query or batch
                Err(_) => break,   // timeout: remaining answers default to 0
            }
        }

        candidates
            .iter()
            .map(|&p| {
                let ci = consumer_intentions.get(&p).copied().unwrap_or(0.0);
                let (pi, bid) = provider_intentions.get(&p).copied().unwrap_or((0.0, None));
                let mut info = CandidateInfo::new(p)
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi);
                if let Some(bid) = bid {
                    info = info.with_bid(bid);
                }
                info
            })
            .collect()
    }

    /// Gathers the candidate information for a *batch* of queries with one
    /// round-trip per participant: every distinct consumer receives a
    /// single request covering all of its queries in the batch, and every
    /// distinct candidate provider a single request covering all the
    /// queries that list it. Replies are awaited until the configured
    /// timeout; whatever is missing then falls back to indifference (`0`),
    /// exactly as in the single-query path (Algorithm 1, line 5).
    ///
    /// Returns one candidate-info vector per input query, in input order.
    pub fn gather_batch(&self, requests: &[(Query, Vec<ProviderId>)]) -> Vec<Vec<CandidateInfo>> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Drain stale replies from previous, timed-out rounds.
        while self.reply_rx.try_recv().is_ok() {}
        let batch = self
            .next_batch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        // One message per distinct consumer (BTreeMaps keep the send order
        // deterministic).
        let mut by_consumer: BTreeMap<ConsumerId, Vec<(Query, Vec<ProviderId>)>> = BTreeMap::new();
        let mut by_provider: BTreeMap<ProviderId, Vec<Query>> = BTreeMap::new();
        for (query, candidates) in requests {
            by_consumer
                .entry(query.consumer)
                .or_default()
                .push((query.clone(), candidates.clone()));
            for provider in candidates {
                by_provider
                    .entry(*provider)
                    .or_default()
                    .push(query.clone());
            }
        }

        let mut expected = 0usize;
        for (consumer, consumer_requests) in by_consumer {
            if let Some(tx) = self.consumers.get(&consumer) {
                let _ = tx.send(ConsumerRequest::IntentionsBatch {
                    batch,
                    requests: consumer_requests,
                });
                expected += 1;
            }
        }
        for (provider, queries) in by_provider {
            if let Some(tx) = self.providers.get(&provider) {
                let _ = tx.send(ProviderRequest::IntentionBatch {
                    batch,
                    queries,
                    request_bids: self.config.request_bids,
                });
                expected += 1;
            }
        }

        let mut consumer_intentions: HashMap<(QueryId, ProviderId), f64> = HashMap::new();
        let mut provider_intentions: HashMap<(QueryId, ProviderId), (f64, Option<Bid>)> =
            HashMap::new();
        let deadline = Instant::now() + self.config.timeout;
        let mut received = 0usize;
        while received < expected {
            match self.reply_rx.recv_deadline(deadline) {
                Ok(Reply::ConsumerBatch {
                    batch: replied,
                    intentions,
                }) if replied == batch => {
                    received += 1;
                    for (query, per_provider) in intentions {
                        for (provider, intention) in per_provider {
                            consumer_intentions.insert((query, provider), intention);
                        }
                    }
                }
                Ok(Reply::ProviderBatch {
                    batch: replied,
                    provider,
                    intentions,
                }) if replied == batch => {
                    received += 1;
                    for (query, intention, bid) in intentions {
                        provider_intentions.insert((query, provider), (intention, bid));
                    }
                }
                Ok(_) => continue, // stale single reply or an older batch
                Err(_) => break,   // timeout: remaining answers default to 0
            }
        }

        requests
            .iter()
            .map(|(query, candidates)| {
                candidates
                    .iter()
                    .map(|&p| {
                        let ci = consumer_intentions
                            .get(&(query.id, p))
                            .copied()
                            .unwrap_or(0.0);
                        let (pi, bid) = provider_intentions
                            .get(&(query.id, p))
                            .copied()
                            .unwrap_or((0.0, None));
                        let mut info = CandidateInfo::new(p)
                            .with_consumer_intention(ci)
                            .with_provider_intention(pi);
                        if let Some(bid) = bid {
                            info = info.with_bid(bid);
                        }
                        info
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs Algorithm 1 for a whole batch of queries: one batched gather
    /// round-trip per participant, then an allocation decision per query
    /// (recorded in the mediator state) and the result notifications.
    /// Returns one allocation per input query, in input order.
    pub fn mediate_batch<M: AllocationMethod>(
        &self,
        requests: &[(Query, Vec<ProviderId>)],
        method: &mut M,
        state: &mut MediatorState,
    ) -> Vec<Allocation> {
        let infos = self.gather_batch(requests);
        requests
            .iter()
            .zip(&infos)
            .map(|((query, candidates), query_infos)| {
                let allocation = method.allocate(query, query_infos, state);
                state.record_allocation(query, query_infos, &allocation);
                self.notify(query, candidates, &allocation);
                allocation
            })
            .collect()
    }

    /// Notifies every candidate of the mediation result and the consumer of
    /// its allocation (Algorithm 1, lines 9–10).
    pub fn notify(&self, query: &Query, candidates: &[ProviderId], allocation: &Allocation) {
        for provider in candidates {
            if let Some(tx) = self.providers.get(provider) {
                let _ = tx.send(ProviderRequest::Notice {
                    query: query.id,
                    selected: allocation.is_selected(*provider),
                });
            }
        }
        if let Some(tx) = self.consumers.get(&query.consumer) {
            let _ = tx.send(ConsumerRequest::Result {
                query: query.id,
                providers: allocation.selected.clone(),
            });
        }
    }

    /// Runs the full Algorithm 1 for one query: gather → allocate → record
    /// in the mediator state → notify.
    pub fn mediate<M: AllocationMethod>(
        &self,
        query: &Query,
        candidates: &[ProviderId],
        method: &mut M,
        state: &mut MediatorState,
    ) -> Allocation {
        let infos = self.gather(query, candidates);
        let allocation = method.allocate(query, &infos, state);
        state.record_allocation(query, &infos, &allocation);
        self.notify(query, candidates, &allocation);
        allocation
    }
}

impl Drop for MediationRuntime {
    fn drop(&mut self) {
        for tx in self.consumers.values() {
            let _ = tx.send(ConsumerRequest::Shutdown);
        }
        for tx in self.providers.values() {
            let _ = tx.send(ProviderRequest::Shutdown);
        }
        self.consumers.clear();
        self.providers.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sqlb_baselines::MariposaLike;
    use sqlb_core::SqlbAllocator;
    use sqlb_types::{QueryClass, SimTime};
    use std::sync::Arc;

    struct CannedConsumer {
        values: Vec<f64>,
        results: Arc<Mutex<Vec<Vec<ProviderId>>>>,
    }

    impl ConsumerEndpoint for CannedConsumer {
        fn intentions(&mut self, _q: &Query, candidates: &[ProviderId]) -> Vec<(ProviderId, f64)> {
            candidates
                .iter()
                .map(|&p| (p, self.values.get(p.index()).copied().unwrap_or(0.0)))
                .collect()
        }
        fn allocation_result(&mut self, _query: QueryId, providers: &[ProviderId]) {
            self.results.lock().push(providers.to_vec());
        }
    }

    struct CannedProvider {
        value: f64,
        delay: Option<Duration>,
        bid: Option<Bid>,
        notices: Arc<Mutex<Vec<(QueryId, bool)>>>,
    }

    impl ProviderEndpoint for CannedProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            if let Some(delay) = self.delay {
                std::thread::sleep(delay);
            }
            self.value
        }
        fn bid(&mut self, _q: &Query) -> Option<Bid> {
            self.bid
        }
        fn allocation_notice(&mut self, query: QueryId, selected: bool) {
            self.notices.lock().push((query, selected));
        }
    }

    fn query(id: u32) -> Query {
        Query::single(
            QueryId::new(id),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        )
    }

    type Notices = Arc<Mutex<Vec<(QueryId, bool)>>>;
    type Results = Arc<Mutex<Vec<Vec<ProviderId>>>>;

    fn build_runtime(
        provider_values: &[f64],
        consumer_values: Vec<f64>,
        config: RuntimeConfig,
    ) -> (MediationRuntime, Notices, Results) {
        let notices = Arc::new(Mutex::new(Vec::new()));
        let results = Arc::new(Mutex::new(Vec::new()));
        let mut runtime = MediationRuntime::new(config);
        runtime.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: consumer_values,
                results: results.clone(),
            },
        );
        for (i, &value) in provider_values.iter().enumerate() {
            runtime.register_provider(
                ProviderId::new(i as u32),
                CannedProvider {
                    value,
                    delay: None,
                    bid: Some(Bid::new(100.0 * (i as f64 + 1.0), 1.0)),
                    notices: notices.clone(),
                },
            );
        }
        (runtime, notices, results)
    }

    #[test]
    fn gather_collects_all_intentions() {
        let (runtime, _, _) = build_runtime(
            &[0.8, -0.2, 0.4],
            vec![0.5, 0.9, -0.1],
            RuntimeConfig::default(),
        );
        let candidates: Vec<ProviderId> = (0..3).map(ProviderId::new).collect();
        let infos = runtime.gather(&query(1), &candidates);
        assert_eq!(infos.len(), 3);
        assert_eq!(infos[0].provider_intention, 0.8);
        assert_eq!(infos[1].provider_intention, -0.2);
        assert_eq!(infos[0].consumer_intention, 0.5);
        assert_eq!(infos[2].consumer_intention, -0.1);
        assert!(infos[0].bid.is_none(), "bids are not requested by default");
    }

    #[test]
    fn slow_provider_times_out_to_indifference() {
        let notices = Arc::new(Mutex::new(Vec::new()));
        let results = Arc::new(Mutex::new(Vec::new()));
        let mut runtime = MediationRuntime::new(RuntimeConfig {
            timeout: Duration::from_millis(50),
            request_bids: false,
        });
        runtime.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: vec![0.9, 0.9],
                results,
            },
        );
        runtime.register_provider(
            ProviderId::new(0),
            CannedProvider {
                value: 0.7,
                delay: None,
                bid: None,
                notices: notices.clone(),
            },
        );
        runtime.register_provider(
            ProviderId::new(1),
            CannedProvider {
                value: 1.0,
                delay: Some(Duration::from_millis(500)),
                bid: None,
                notices,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = runtime.gather(&query(1), &candidates);
        assert_eq!(infos[0].provider_intention, 0.7);
        assert_eq!(
            infos[1].provider_intention, 0.0,
            "the slow provider's answer missed the deadline"
        );
    }

    #[test]
    fn mediate_allocates_and_notifies_everyone() {
        let (runtime, notices, results) =
            build_runtime(&[0.9, 0.4], vec![0.8, 0.8], RuntimeConfig::default());
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let mut method = SqlbAllocator::new();
        let mut state = MediatorState::paper_default();
        let allocation = runtime.mediate(&query(7), &candidates, &mut method, &mut state);
        assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
        assert_eq!(state.allocations(), 1);

        // Notifications are asynchronous; wait briefly for the workers.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let n = notices.lock().len();
            let r = results.lock().len();
            if (n == 2 && r == 1) || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let notices = notices.lock();
        assert_eq!(notices.len(), 2, "both candidates are told the outcome");
        assert!(notices.contains(&(QueryId::new(7), true)));
        assert!(notices.contains(&(QueryId::new(7), false)));
        assert_eq!(results.lock().len(), 1);
    }

    #[test]
    fn bids_are_gathered_when_requested() {
        let (runtime, _, _) = build_runtime(
            &[0.5, 0.5],
            vec![0.5, 0.5],
            RuntimeConfig {
                timeout: Duration::from_millis(500),
                request_bids: true,
            },
        );
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = runtime.gather(&query(1), &candidates);
        assert_eq!(infos[0].bid.unwrap().price, 100.0);
        assert_eq!(infos[1].bid.unwrap().price, 200.0);

        // And the Mariposa-like broker can consume them directly.
        let mut broker = MariposaLike::new();
        let mut state = MediatorState::paper_default();
        let allocation = runtime.mediate(&query(2), &candidates, &mut broker, &mut state);
        assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
    }

    #[test]
    fn unknown_participants_default_to_indifference() {
        let (runtime, _, _) = build_runtime(&[0.5], vec![0.5], RuntimeConfig::default());
        // Candidate 9 is not registered with the runtime at all.
        let candidates = vec![ProviderId::new(0), ProviderId::new(9)];
        let infos = runtime.gather(&query(1), &candidates);
        assert_eq!(infos[0].provider_intention, 0.5);
        assert_eq!(infos[0].consumer_intention, 0.5);
        assert_eq!(infos[1].provider_intention, 0.0);
        assert_eq!(
            infos[1].consumer_intention, 0.0,
            "the consumer has no opinion on a provider it does not know"
        );
    }

    /// A provider endpoint that counts how many requests (not queries) it
    /// receives, to pin down the one-round-trip-per-participant property.
    struct CountingProvider {
        value: f64,
        requests: Arc<Mutex<u32>>,
    }

    impl ProviderEndpoint for CountingProvider {
        fn intention(&mut self, _q: &Query) -> f64 {
            self.value
        }
        fn intention_batch(
            &mut self,
            queries: &[Query],
            request_bids: bool,
        ) -> Vec<(QueryId, f64, Option<Bid>)> {
            *self.requests.lock() += 1;
            queries
                .iter()
                .map(|q| {
                    (
                        q.id,
                        self.value,
                        if request_bids { self.bid(q) } else { None },
                    )
                })
                .collect()
        }
    }

    #[test]
    fn gather_batch_serves_many_queries_with_one_request_per_participant() {
        let requests_seen = Arc::new(Mutex::new(0u32));
        let results = Arc::new(Mutex::new(Vec::new()));
        let mut runtime = MediationRuntime::new(RuntimeConfig::default());
        runtime.register_consumer(
            ConsumerId::new(0),
            CannedConsumer {
                values: vec![0.5, -0.25],
                results,
            },
        );
        for (i, value) in [0.8, -0.2].into_iter().enumerate() {
            runtime.register_provider(
                ProviderId::new(i as u32),
                CountingProvider {
                    value,
                    requests: requests_seen.clone(),
                },
            );
        }

        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let batch: Vec<(Query, Vec<ProviderId>)> =
            (0..5).map(|i| (query(i), candidates.clone())).collect();
        let infos = runtime.gather_batch(&batch);

        assert_eq!(infos.len(), 5);
        for per_query in &infos {
            assert_eq!(per_query.len(), 2);
            assert_eq!(per_query[0].provider_intention, 0.8);
            assert_eq!(per_query[1].provider_intention, -0.2);
            assert_eq!(per_query[0].consumer_intention, 0.5);
            assert_eq!(per_query[1].consumer_intention, -0.25);
        }
        assert_eq!(
            *requests_seen.lock(),
            2,
            "five queries must cost each provider exactly one round-trip"
        );
    }

    #[test]
    fn gather_batch_of_nothing_is_empty() {
        let (runtime, _, _) = build_runtime(&[0.5], vec![0.5], RuntimeConfig::default());
        assert!(runtime.gather_batch(&[]).is_empty());
    }

    #[test]
    fn mediate_batch_allocates_and_notifies_per_query() {
        let (runtime, notices, results) =
            build_runtime(&[0.9, 0.4], vec![0.8, 0.8], RuntimeConfig::default());
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let batch: Vec<(Query, Vec<ProviderId>)> =
            (0..3).map(|i| (query(i), candidates.clone())).collect();
        let mut method = SqlbAllocator::new();
        let mut state = MediatorState::paper_default();
        let allocations = runtime.mediate_batch(&batch, &mut method, &mut state);
        assert_eq!(allocations.len(), 3);
        for allocation in &allocations {
            assert_eq!(allocation.selected, vec![ProviderId::new(0)]);
        }
        assert_eq!(state.allocations(), 3);

        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let n = notices.lock().len();
            let r = results.lock().len();
            if (n == 6 && r == 3) || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(notices.lock().len(), 6, "2 candidates × 3 queries");
        assert_eq!(results.lock().len(), 3);
    }

    #[test]
    fn deregistering_a_provider_silences_it() {
        let (mut runtime, _, _) =
            build_runtime(&[0.5, 0.6], vec![0.5, 0.5], RuntimeConfig::default());
        assert_eq!(runtime.provider_count(), 2);
        assert_eq!(runtime.consumer_count(), 1);
        runtime.deregister_provider(ProviderId::new(1));
        assert_eq!(runtime.provider_count(), 1);
        let candidates: Vec<ProviderId> = (0..2).map(ProviderId::new).collect();
        let infos = runtime.gather(&query(1), &candidates);
        assert_eq!(infos[1].provider_intention, 0.0);
    }
}
