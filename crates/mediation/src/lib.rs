//! # sqlb-mediation
//!
//! The mediation/communication substrate on which Algorithm 1 runs.
//!
//! The paper's query allocation algorithm *forks* a request for the
//! consumer's intentions and, in parallel, a request to every candidate
//! provider for its intention, then *waits until* the intention vectors are
//! computed *or a timeout* elapses (Algorithm 1, lines 2–5). The
//! deterministic, in-process realization of that algorithm lives in
//! `sqlb-core::module`; this crate provides the concurrent realization used
//! when consumers and providers are real, independently-running agents:
//!
//! * [`protocol`] — the message types exchanged between the mediator and
//!   the participants (intention requests/replies, bid requests, allocation
//!   notices);
//! * [`runtime`] — a thread-per-participant runtime built on crossbeam
//!   channels: the mediator broadcasts requests, gathers replies until the
//!   deadline, treats missing replies as indifference, and notifies every
//!   candidate of the mediation result.

#![warn(missing_docs)]

pub mod protocol;
pub mod runtime;

pub use protocol::{MediatorMessage, ParticipantReply};
pub use runtime::{ConsumerEndpoint, MediationRuntime, ProviderEndpoint, RuntimeConfig};
