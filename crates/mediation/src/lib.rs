//! # sqlb-mediation
//!
//! The mediation/communication substrate on which Algorithm 1 runs.
//!
//! The paper's query allocation algorithm *forks* a request for the
//! consumer's intentions and, in parallel, a request to every candidate
//! provider for its intention, then *waits until* the intention vectors are
//! computed *or a timeout* elapses (Algorithm 1, lines 2–5). The
//! deterministic, in-process realization of that algorithm lives in
//! `sqlb-core::module`; this crate provides the concurrent realization used
//! when consumers and providers are real, independently-running agents:
//!
//! * [`protocol`] — the message types exchanged between the mediator and
//!   the participants (intention requests/replies, bid requests, allocation
//!   notices, connection hello/goodbye), their length-prefixed wire framing
//!   (hardened against hostile length prefixes) and the [`FrameAssembler`]
//!   that reassembles frames from stream chunk boundaries — the contract
//!   the socket transport (`sqlb-transport`) speaks on real connections;
//! * [`reactor`] — the asynchronous mediation reactor: participant
//!   endpoints as polled state machines driven by a single event loop with
//!   a readiness queue, a timer heap and per-endpoint deadline tracking,
//!   scaling one host to tens of thousands of endpoints. Its batched
//!   [`AsyncMediator::gather_batch`] / [`AsyncMediator::mediate_batch`]
//!   are the native entry points;
//! * [`runtime`] — the legacy thread-per-participant runtime built on
//!   crossbeam channels, kept as the comparison backend: the mediator
//!   broadcasts requests, gathers replies until the deadline, treats
//!   missing replies as indifference, and notifies every candidate of the
//!   mediation result.

#![deny(missing_docs)]

pub mod protocol;
pub mod reactor;
pub mod runtime;

pub use protocol::{
    decode_mediator_message, decode_participant_reply, encode_mediator_message,
    encode_mediator_message_into, encode_participant_reply, encode_participant_reply_into,
    FrameAssembler, FrameError, FrameReader, MediatorMessage, ParticipantReply, MAX_FRAME_PAYLOAD,
};
pub use reactor::{
    run_wave_threaded, AsyncMediator, IntentionWave, Latency, ProviderAnswer, Reactor, RoundStats,
    WaveReplies,
};
pub use runtime::{ConsumerEndpoint, MediationRuntime, ProviderEndpoint, RuntimeConfig};
