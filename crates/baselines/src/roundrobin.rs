//! A round-robin allocator, used as an ablation reference.

use sqlb_core::{
    allocation::{Allocation, AllocationMethod, CandidateInfo, MediatorView},
    scoring::RankedProvider,
};
use sqlb_types::Query;

/// Allocates queries to candidates in strict rotation, ignoring intentions,
/// utilization and bids.
///
/// Like [`crate::RandomAllocator`], this is not part of the paper's
/// evaluation; it provides a "perfectly even spread by count" reference for
/// ablation benchmarks (note that an even spread by *count* is not an even
/// spread by *load* when provider capacities are heterogeneous).
#[derive(Debug, Clone)]
pub struct RoundRobinAllocator {
    next: u64,
    record_ranking: bool,
}

impl Default for RoundRobinAllocator {
    fn default() -> Self {
        RoundRobinAllocator {
            next: 0,
            record_ranking: true,
        }
    }
}

impl RoundRobinAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        RoundRobinAllocator::default()
    }
}

impl AllocationMethod for RoundRobinAllocator {
    fn name(&self) -> &'static str {
        "Round-robin"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        _view: &dyn MediatorView,
    ) -> Allocation {
        if candidates.is_empty() {
            return Allocation {
                query: query.id,
                selected: Vec::new(),
                ranking: Vec::new(),
            };
        }
        let start = (self.next % candidates.len() as u64) as usize;
        self.next = self.next.wrapping_add(1);
        let n = (query.n as usize).min(candidates.len());
        let ranking: Vec<RankedProvider> = if self.record_ranking {
            (0..candidates.len())
                .map(|offset| {
                    let idx = (start + offset) % candidates.len();
                    RankedProvider {
                        provider: candidates[idx].provider,
                        score: -(offset as f64),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        Allocation {
            query: query.id,
            selected: (0..n)
                .map(|offset| candidates[(start + offset) % candidates.len()].provider)
                .collect(),
            ranking,
        }
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::UniformView;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidates(n: u32) -> Vec<CandidateInfo> {
        (0..n)
            .map(|i| CandidateInfo::new(ProviderId::new(i)))
            .collect()
    }

    #[test]
    fn rotates_over_candidates() {
        let mut method = RoundRobinAllocator::new();
        let cands = candidates(3);
        let picks: Vec<u32> = (0..6)
            .map(|_| {
                method
                    .allocate(&query(1), &cands, &UniformView(0.5))
                    .selected[0]
                    .raw()
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn multi_provider_queries_wrap_around() {
        let mut method = RoundRobinAllocator::new();
        let cands = candidates(3);
        let alloc = method.allocate(&query(2), &cands, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(0), ProviderId::new(1)]);
        let alloc = method.allocate(&query(2), &cands, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1), ProviderId::new(2)]);
        let alloc = method.allocate(&query(2), &cands, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(2), ProviderId::new(0)]);
    }

    #[test]
    fn handles_empty_candidate_set() {
        let mut method = RoundRobinAllocator::new();
        let alloc = method.allocate(&query(1), &[], &UniformView(0.5));
        assert!(alloc.is_empty());
    }

    #[test]
    fn even_spread_by_count() {
        let mut method = RoundRobinAllocator::new();
        let cands = candidates(4);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            let alloc = method.allocate(&query(1), &cands, &UniformView(0.5));
            counts[alloc.selected[0].index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn name_is_round_robin() {
        assert_eq!(RoundRobinAllocator::new().name(), "Round-robin");
    }
}
