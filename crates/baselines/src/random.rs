//! A seeded random allocator, used as an ablation reference.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sqlb_core::{
    allocation::{Allocation, AllocationMethod, CandidateInfo, MediatorView},
    scoring::RankedProvider,
};
use sqlb_types::Query;

/// Allocates every query to `min(q.n, N)` providers drawn uniformly at
/// random from the candidate set. Deterministic for a given seed.
///
/// Not part of the paper's evaluation; used by the ablation benchmarks to
/// show how much of SQLB's behaviour comes from its scoring as opposed to
/// mere spreading of the load.
#[derive(Debug, Clone)]
pub struct RandomAllocator {
    rng: StdRng,
    record_ranking: bool,
    order: Vec<usize>,
}

impl RandomAllocator {
    /// Creates an allocator with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomAllocator {
            rng: StdRng::seed_from_u64(seed),
            record_ranking: true,
            order: Vec::new(),
        }
    }
}

impl Default for RandomAllocator {
    fn default() -> Self {
        RandomAllocator::new(0)
    }
}

impl AllocationMethod for RandomAllocator {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        _view: &dyn MediatorView,
    ) -> Allocation {
        // The shuffle consumes the same random stream whether or not the
        // ranking diagnostic is materialized, so runs stay reproducible
        // across both modes.
        self.order.clear();
        self.order.extend(0..candidates.len());
        self.order.shuffle(&mut self.rng);
        let n = (query.n as usize).min(candidates.len());
        let ranking: Vec<RankedProvider> = if self.record_ranking {
            self.order
                .iter()
                .enumerate()
                .map(|(rank, &idx)| RankedProvider {
                    provider: candidates[idx].provider,
                    score: -(rank as f64),
                })
                .collect()
        } else {
            Vec::new()
        };
        Allocation {
            query: query.id,
            selected: self.order[..n]
                .iter()
                .map(|&idx| candidates[idx].provider)
                .collect(),
            ranking,
        }
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::UniformView;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};
    use std::collections::HashSet;

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidates(n: u32) -> Vec<CandidateInfo> {
        (0..n)
            .map(|i| CandidateInfo::new(ProviderId::new(i)))
            .collect()
    }

    #[test]
    fn selects_the_requested_number_without_duplicates() {
        let mut method = RandomAllocator::new(42);
        let cands = candidates(10);
        for n in 1..=5 {
            let alloc = method.allocate(&query(n), &cands, &UniformView(0.5));
            assert_eq!(alloc.len(), n as usize);
            let unique: HashSet<_> = alloc.selected.iter().collect();
            assert_eq!(unique.len(), n as usize);
        }
    }

    #[test]
    fn same_seed_gives_same_sequence() {
        let cands = candidates(8);
        let mut a = RandomAllocator::new(7);
        let mut b = RandomAllocator::new(7);
        for i in 0..20 {
            let mut q = query(2);
            q.id = QueryId::new(i);
            assert_eq!(
                a.allocate(&q, &cands, &UniformView(0.5)).selected,
                b.allocate(&q, &cands, &UniformView(0.5)).selected
            );
        }
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let cands = candidates(8);
        let mut a = RandomAllocator::new(1);
        let mut b = RandomAllocator::new(2);
        let q = query(1);
        let differs = (0..50).any(|_| {
            a.allocate(&q, &cands, &UniformView(0.5)).selected
                != b.allocate(&q, &cands, &UniformView(0.5)).selected
        });
        assert!(differs);
    }

    #[test]
    fn covers_all_providers_over_time() {
        let mut method = RandomAllocator::new(3);
        let cands = candidates(5);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            let alloc = method.allocate(&query(1), &cands, &UniformView(0.5));
            seen.insert(alloc.selected[0]);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn name_is_random() {
        assert_eq!(RandomAllocator::default().name(), "Random");
    }
}
