//! The Mariposa-like economic baseline (Section 6.2.2).

use serde::{Deserialize, Serialize};
use sqlb_core::{
    allocation::{select_best, Allocation, AllocationMethod, Bid, CandidateInfo, MediatorView},
    scoring::RankedProvider,
};
use sqlb_types::Query;

/// A consumer bid curve: the maximum aggregate price the consumer accepts
/// as a function of the delivery delay.
///
/// Mariposa's broker "selects the set of bids that has an aggregate price
/// and delay under a bid curve provided by the consumer". We model the
/// curve as a line `max_price(delay) = price_at_zero_delay − slope × delay`
/// (never below zero): the consumer is willing to pay more for faster
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BidCurve {
    /// Price accepted for an immediate answer.
    pub price_at_zero_delay: f64,
    /// How quickly the accepted price drops per second of delay.
    pub slope: f64,
}

impl BidCurve {
    /// Creates a bid curve.
    pub fn new(price_at_zero_delay: f64, slope: f64) -> Self {
        BidCurve {
            price_at_zero_delay: price_at_zero_delay.max(0.0),
            slope: slope.max(0.0),
        }
    }

    /// Maximum price acceptable at the given delay.
    pub fn max_price(&self, delay: f64) -> f64 {
        (self.price_at_zero_delay - self.slope * delay.max(0.0)).max(0.0)
    }

    /// Whether a bid falls under the curve.
    pub fn accepts(&self, bid: &Bid) -> bool {
        bid.price <= self.max_price(bid.delay)
    }
}

impl Default for BidCurve {
    fn default() -> Self {
        // Generous default: accepts list-price bids for all but extreme
        // delays. A shallow slope keeps the Mariposa-like broker focused on
        // prices, which is what lets it overutilize the cheapest (most
        // adapted) providers as the paper observes.
        BidCurve::new(300.0, 1.0)
    }
}

/// Configuration of the Mariposa-like broker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MariposaConfig {
    /// The consumer bid curve used when the consumer does not provide one.
    pub default_curve: BidCurve,
    /// Weight of the advertised delay when comparing otherwise-acceptable
    /// bids (effective cost = adjusted price + `delay_weight` × delay).
    pub delay_weight: f64,
    /// Load-adjustment exponent: the broker ranks by
    /// `price × (1 + load)^load_adjustment`. The paper's description
    /// ("providers modify their bids with their current load, bid × load")
    /// corresponds to `1.0`.
    pub load_adjustment: f64,
}

impl Default for MariposaConfig {
    fn default() -> Self {
        MariposaConfig {
            default_curve: BidCurve::default(),
            // The broker mostly compares load-adjusted prices; delays only
            // break near-ties. Mariposa's "crude form of load balancing"
            // (bid × load) is the load_adjustment factor.
            delay_weight: 0.1,
            load_adjustment: 1.0,
        }
    }
}

/// The Mariposa-like broker.
///
/// For each query the broker collects provider bids (price, delay); when a
/// candidate did not bid, a list-price bid is synthesized from the query
/// cost so that the query can still be treated. Bids are adjusted by the
/// provider's current load, bids above the consumer's bid curve are
/// penalized (they are only used when no acceptable bid exists, since
/// queries must be treated whenever a provider exists), and the `q.n`
/// cheapest effective bids win.
///
/// The crucial behavioural property reproduced here is the one the paper's
/// evaluation exposes: the most *adapted* providers bid lowest, keep
/// winning queries, and end up overutilized, while QLB is only enforced
/// "crudely" through the load adjustment.
#[derive(Debug, Clone)]
pub struct MariposaLike {
    config: MariposaConfig,
    record_ranking: bool,
    scratch: Vec<RankedProvider>,
}

impl Default for MariposaLike {
    fn default() -> Self {
        MariposaLike {
            config: MariposaConfig::default(),
            record_ranking: true,
            scratch: Vec::new(),
        }
    }
}

impl MariposaLike {
    /// Creates a broker with the default configuration.
    pub fn new() -> Self {
        MariposaLike::default()
    }

    /// Creates a broker with an explicit configuration.
    pub fn with_config(config: MariposaConfig) -> Self {
        MariposaLike {
            config,
            ..MariposaLike::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> MariposaConfig {
        self.config
    }

    /// Effective cost of a candidate's bid: load-adjusted price plus
    /// weighted delay, plus a large penalty if the bid is not under the
    /// consumer's bid curve.
    fn effective_cost(&self, candidate: &CandidateInfo, bid: &Bid) -> f64 {
        let load_factor = (1.0 + candidate.utilization.max(0.0)).powf(self.config.load_adjustment);
        let adjusted_price = bid.price * load_factor;
        let mut cost = adjusted_price + self.config.delay_weight * bid.delay;
        if !self
            .config
            .default_curve
            .accepts(&Bid::new(adjusted_price, bid.delay))
        {
            // Rejected bids are only used as a last resort: queries must be
            // treated if a provider exists (Section 2), so instead of
            // dropping the query we push these bids to the back of the
            // ranking.
            cost += REJECTED_BID_PENALTY;
        }
        cost
    }
}

/// Penalty added to bids that fall above the consumer's bid curve.
const REJECTED_BID_PENALTY: f64 = 1.0e9;

impl AllocationMethod for MariposaLike {
    fn name(&self) -> &'static str {
        "Mariposa-like"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        _view: &dyn MediatorView,
    ) -> Allocation {
        let mut scored = std::mem::take(&mut self.scratch);
        scored.clear();
        scored.extend(candidates.iter().map(|c| {
            let bid = c
                .bid
                .unwrap_or_else(|| Bid::new(query.cost().value(), query.cost().value() / 100.0));
            RankedProvider {
                provider: c.provider,
                score: -self.effective_cost(c, &bid),
            }
        }));
        let allocation = select_best(query, &mut scored, self.record_ranking);
        self.scratch = scored;
        allocation
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::UniformView;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidate(id: u32, price: f64, delay: f64, utilization: f64) -> CandidateInfo {
        CandidateInfo::new(ProviderId::new(id))
            .with_utilization(utilization)
            .with_bid(Bid::new(price, delay))
    }

    #[test]
    fn bid_curve_accepts_cheap_fast_bids() {
        let curve = BidCurve::new(100.0, 10.0);
        assert!(curve.accepts(&Bid::new(50.0, 2.0)));
        assert!(!curve.accepts(&Bid::new(90.0, 2.0)));
        assert!(!curve.accepts(&Bid::new(1.0, 20.0)));
        assert_eq!(curve.max_price(20.0), 0.0);
        assert_eq!(curve.max_price(-5.0), 100.0);
    }

    #[test]
    fn cheapest_acceptable_bid_wins() {
        let mut broker = MariposaLike::new();
        let candidates = vec![
            candidate(0, 100.0, 1.0, 0.0),
            candidate(1, 60.0, 1.0, 0.0),
            candidate(2, 80.0, 1.0, 0.0),
        ];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
        let alloc = broker.allocate(&query(2), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1), ProviderId::new(2)]);
    }

    #[test]
    fn load_adjustment_redirects_queries_away_from_loaded_providers() {
        let mut broker = MariposaLike::new();
        // Provider 0 bids lower but is heavily loaded; bid × load pushes
        // its effective price above provider 1's.
        let candidates = vec![candidate(0, 60.0, 1.0, 1.5), candidate(1, 100.0, 1.0, 0.0)];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn rejected_bids_used_only_as_last_resort() {
        let mut broker = MariposaLike::with_config(MariposaConfig {
            default_curve: BidCurve::new(100.0, 10.0),
            ..MariposaConfig::default()
        });
        // Provider 0's bid is over the curve; provider 1's is acceptable
        // but nominally more expensive in raw price + delay terms.
        let candidates = vec![candidate(0, 200.0, 0.0, 0.0), candidate(1, 90.0, 0.5, 0.0)];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
        // If every bid is over the curve, the query is still treated.
        let candidates = vec![candidate(0, 200.0, 0.0, 0.0), candidate(1, 300.0, 0.0, 0.0)];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(0)]);
    }

    #[test]
    fn missing_bids_are_synthesized_so_queries_are_treated() {
        let mut broker = MariposaLike::new();
        let candidates = vec![CandidateInfo::new(ProviderId::new(0))];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(0)]);
    }

    #[test]
    fn delay_breaks_price_ties() {
        let mut broker = MariposaLike::new();
        let candidates = vec![candidate(0, 50.0, 5.0, 0.0), candidate(1, 50.0, 1.0, 0.0)];
        let alloc = broker.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(MariposaLike::new().name(), "Mariposa-like");
    }
}
