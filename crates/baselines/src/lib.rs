//! # sqlb-baselines
//!
//! The baseline query allocation methods the SQLB paper compares against
//! (Section 6.2), plus two simple reference allocators used in ablations.
//!
//! * [`CapacityBased`] — allocates each query to the providers with the
//!   highest available capacity (i.e. the least utilized), the classic
//!   query-load-balancing approach of \[13, 18, 21\]. It ignores both
//!   consumers' and providers' intentions.
//! * [`MariposaLike`] — an economic method modelled on Mariposa \[22\]:
//!   providers bid for queries, bids are adjusted by the provider's current
//!   load ("bid × load") to ensure a crude form of load balancing, and the
//!   broker selects the bids that fall under the consumer's bid curve.
//! * [`RandomAllocator`] and [`RoundRobinAllocator`] — intentionally naive
//!   references used to sanity-check the experiment harness and for
//!   ablation benchmarks.
//!
//! All methods implement [`sqlb_core::AllocationMethod`] and therefore plug
//! into the same query allocation module and simulator as SQLB itself.

#![warn(missing_docs)]

pub mod capacity;
pub mod mariposa;
pub mod random;
pub mod roundrobin;

pub use capacity::CapacityBased;
pub use mariposa::{BidCurve, MariposaConfig, MariposaLike};
pub use random::RandomAllocator;
pub use roundrobin::RoundRobinAllocator;
