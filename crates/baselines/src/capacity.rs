//! The Capacity based baseline (Section 6.2.1).

use sqlb_core::{
    allocation::{select_best, Allocation, AllocationMethod, CandidateInfo, MediatorView},
    scoring::RankedProvider,
};
use sqlb_types::Query;

/// Allocates each incoming query to the providers with the highest
/// available capacity among `P_q`, i.e. the least utilized ones.
///
/// "Capacity based has been shown to operate well in heterogeneous
/// distributed information systems. Hence, we use it as baseline method in
/// our simulations. Note that Capacity based does not take into account the
/// consumers nor providers' intentions." (Section 6.2.1.)
///
/// The candidate's score is `−Ut(p)`, so ranking by decreasing score yields
/// the least-utilized providers first; ties are broken by provider
/// identifier.
#[derive(Debug, Clone)]
pub struct CapacityBased {
    record_ranking: bool,
    scratch: Vec<RankedProvider>,
}

impl Default for CapacityBased {
    fn default() -> Self {
        CapacityBased {
            record_ranking: true,
            scratch: Vec::new(),
        }
    }
}

impl CapacityBased {
    /// Creates the allocator.
    pub fn new() -> Self {
        CapacityBased::default()
    }
}

impl AllocationMethod for CapacityBased {
    fn name(&self) -> &'static str {
        "Capacity based"
    }

    fn allocate(
        &mut self,
        query: &Query,
        candidates: &[CandidateInfo],
        _view: &dyn MediatorView,
    ) -> Allocation {
        let mut scored = std::mem::take(&mut self.scratch);
        scored.clear();
        scored.extend(candidates.iter().map(|c| RankedProvider {
            provider: c.provider,
            score: -c.utilization,
        }));
        let allocation = select_best(query, &mut scored, self.record_ranking);
        self.scratch = scored;
        allocation
    }

    fn set_record_ranking(&mut self, record: bool) {
        self.record_ranking = record;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlb_core::allocation::UniformView;
    use sqlb_types::{ConsumerId, ProviderId, QueryClass, QueryId, SimTime};

    fn query(n: u32) -> Query {
        let mut q = Query::single(
            QueryId::new(1),
            ConsumerId::new(0),
            QueryClass::Light,
            SimTime::ZERO,
        );
        q.n = n;
        q
    }

    fn candidate(id: u32, utilization: f64, ci: f64, pi: f64) -> CandidateInfo {
        CandidateInfo::new(ProviderId::new(id))
            .with_utilization(utilization)
            .with_consumer_intention(ci)
            .with_provider_intention(pi)
    }

    #[test]
    fn selects_least_utilized_provider() {
        let mut method = CapacityBased::new();
        // Table 1: p1 has the most available capacity (0.85) and p5 none.
        let candidates = vec![
            candidate(1, 0.15, -1.0, 1.0),
            candidate(2, 0.43, 1.0, -1.0),
            candidate(3, 0.78, -1.0, 1.0),
            candidate(4, 0.85, 1.0, -1.0),
            candidate(5, 1.0, 1.0, 1.0),
        ];
        let alloc = method.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
        // With q.n = 2 the two least utilized are selected regardless of
        // anyone's intentions — exactly the failure mode the paper's
        // motivating example points out.
        let alloc = method.allocate(&query(2), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1), ProviderId::new(2)]);
    }

    #[test]
    fn ignores_intentions_entirely() {
        let mut method = CapacityBased::new();
        let favourable = vec![candidate(0, 0.5, 1.0, 1.0), candidate(1, 0.4, -1.0, -1.0)];
        let alloc = method.allocate(&query(1), &favourable, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn ties_broken_by_identifier() {
        let mut method = CapacityBased::new();
        let candidates = vec![candidate(3, 0.2, 0.0, 0.0), candidate(1, 0.2, 0.0, 0.0)];
        let alloc = method.allocate(&query(1), &candidates, &UniformView(0.5));
        assert_eq!(alloc.selected, vec![ProviderId::new(1)]);
    }

    #[test]
    fn empty_candidate_set_yields_empty_allocation() {
        let mut method = CapacityBased::new();
        let alloc = method.allocate(&query(1), &[], &UniformView(0.5));
        assert!(alloc.is_empty());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(CapacityBased::new().name(), "Capacity based");
    }
}
