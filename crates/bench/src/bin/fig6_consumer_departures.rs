//! Regenerates Figure 6: consumers' departures (by dissatisfaction) versus
//! workload, for SQLB, Capacity based and Mariposa-like.

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::{workload_sweep, AutonomySetting, PAPER_WORKLOADS};

fn main() {
    let args = parse_env_args();
    let workloads = args.workloads.unwrap_or_else(|| PAPER_WORKLOADS.to_vec());
    match workload_sweep(args.scale, &workloads, AutonomySetting::AllReasons) {
        Ok(result) => {
            println!("# Figure 6: consumers' departures");
            print!("{}", result.consumer_departures_to_text());
        }
        Err(err) => {
            eprintln!("fig6_consumer_departures failed: {err}");
            std::process::exit(1);
        }
    }
}
