//! Internal diagnostic: prints where SQLB sends queries (by consumer
//! interest class) and the resulting consumer satisfaction margin, at a
//! fixed workload. Useful when calibrating the simulator against the
//! paper's reported shapes.

use sqlb_agents::InterestClass;
use sqlb_core::allocation::CandidateInfo;
use sqlb_core::MediatorState;
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.7);
    let method = match args.get(2).map(|s| s.as_str()) {
        Some("capacity") => Method::CapacityBased,
        Some("mariposa") => Method::MariposaLike,
        _ => Method::Sqlb,
    };

    // Full-engine mode: run the real simulator with departures enabled and
    // dump the consumer/provider satisfaction trajectories and departures.
    if args.get(3).map(|s| s.as_str()) == Some("engine") {
        use sqlb_agents::{ConsumerDepartureRule, EnabledReasons, ProviderDepartureRule};
        use sqlb_sim::engine::run_simulation;
        let config = SimulationConfig::scaled(24, 48, 900.0, 17)
            .with_workload(WorkloadPattern::Fixed(workload))
            .with_provider_departures(ProviderDepartureRule::with_enabled(EnabledReasons::ALL))
            .with_consumer_departures(ConsumerDepartureRule::default());
        let report = run_simulation(config, method).unwrap();
        println!("engine mode: {} at {workload}", report.method);
        println!(
            "consumer sat mean series: {:?}",
            report
                .series
                .consumer_satisfaction_mean
                .points()
                .iter()
                .step_by(2)
                .map(|p| (p.time as i64, (p.value * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>()
        );
        println!(
            "consumer alloc sat series: {:?}",
            report
                .series
                .consumer_allocation_satisfaction_mean
                .points()
                .iter()
                .step_by(2)
                .map(|p| (p.time as i64, (p.value * 1000.0).round() / 1000.0))
                .collect::<Vec<_>>()
        );
        println!(
            "active providers: {:?}",
            report
                .series
                .active_providers
                .points()
                .iter()
                .step_by(2)
                .map(|p| (p.time as i64, p.value as i64))
                .collect::<Vec<_>>()
        );
        println!(
            "active consumers: {:?}",
            report
                .series
                .active_consumers
                .points()
                .iter()
                .step_by(2)
                .map(|p| (p.time as i64, p.value as i64))
                .collect::<Vec<_>>()
        );
        let mut reasons = std::collections::BTreeMap::new();
        for d in &report.provider_departures {
            *reasons.entry(format!("{}", d.reason)).or_insert(0u32) += 1;
        }
        println!(
            "provider departures: {} {:?}",
            report.provider_departures.len(),
            reasons
        );
        println!("consumer departures: {}", report.consumer_departures.len());
        println!(
            "first provider departures: {:?}",
            report
                .provider_departures
                .iter()
                .take(10)
                .map(|d| (
                    d.time_secs as i64,
                    format!("{}", d.reason),
                    d.profile.interest.label()
                ))
                .collect::<Vec<_>>()
        );
        return;
    }

    // Re-implement a tiny slice of the engine loop with instrumentation: we
    // use the library's own population + allocation pieces directly.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqlb_agents::Population;
    use sqlb_types::{Query, QueryClass, QueryId, SimTime};

    let config =
        SimulationConfig::scaled(24, 48, 600.0, 11).with_workload(WorkloadPattern::Fixed(workload));
    let population = Population::generate(&config.population).unwrap();
    let mut providers: Vec<_> = population.providers.values().cloned().collect();
    let consumers: Vec<_> = population.consumers.values().cloned().collect();
    let profiles = population.profiles.clone();
    let total_capacity = population.total_capacity();
    let rate = workload * total_capacity / 140.0;
    let mut rng = StdRng::seed_from_u64(3);
    let mut mediator = MediatorState::paper_default();
    let mut method_impl = method.build(0);
    let reputation = sqlb_reputation::ReputationStore::neutral();

    let mut busy_until = vec![0.0f64; providers.len()];
    let mut class_counts = [0u64; 3];
    let mut ci_sum = 0.0;
    let mut n = 0u64;
    let mut now = 0.0f64;
    let duration = 600.0;
    let mut qid = 0u32;
    let mut response_sum = 0.0;

    while now < duration {
        now += -(1.0 - rng.random::<f64>()).ln() / rate;
        let consumer = &consumers[rng.random_range(0..consumers.len())];
        let class = if rng.random_bool(0.5) {
            QueryClass::Light
        } else {
            QueryClass::Heavy
        };
        let query = Query::single(
            QueryId::new(qid),
            consumer.id(),
            class,
            SimTime::from_secs(now),
        );
        qid += 1;
        let infos: Vec<CandidateInfo> = providers
            .iter_mut()
            .map(|p| {
                let ci = consumer.intention_for(&query, p.id(), &reputation);
                let pi = p.intention_for(&query, SimTime::from_secs(now));
                let ut = p.utilization(SimTime::from_secs(now)).value();
                let mut info = CandidateInfo::new(p.id())
                    .with_consumer_intention(ci)
                    .with_provider_intention(pi)
                    .with_utilization(ut);
                if method.uses_bids() {
                    info = info.with_bid(p.bid_for(&query, SimTime::from_secs(now)));
                }
                info
            })
            .collect();
        let allocation = method_impl.allocate(&query, &infos, &mediator);
        mediator.record_allocation(&query, &infos, &allocation);
        let winner = allocation.selected[0];
        let winner_info = infos.iter().find(|i| i.provider == winner).unwrap();
        ci_sum += winner_info.consumer_intention;
        n += 1;
        match profiles[winner].interest {
            InterestClass::High => class_counts[0] += 1,
            InterestClass::Medium => class_counts[1] += 1,
            InterestClass::Low => class_counts[2] += 1,
        }
        for info in &infos {
            providers[info.provider.index()].record_proposal(
                &query,
                info.provider_intention,
                allocation.is_selected(info.provider),
            );
        }
        let p = &mut providers[winner.index()];
        let processing = p.assign(&query, SimTime::from_secs(now));
        let start = busy_until[winner.index()].max(now);
        let finish = start + processing.as_secs();
        busy_until[winner.index()] = finish;
        response_sum += finish - now;
    }

    let mut high_ut = Vec::new();
    let mut med_ut = Vec::new();
    let mut low_ut = Vec::new();
    for p in providers.iter_mut() {
        let u = p.utilization(SimTime::from_secs(duration)).value();
        match profiles[p.id()].interest {
            InterestClass::High => high_ut.push(u),
            InterestClass::Medium => med_ut.push(u),
            InterestClass::Low => low_ut.push(u),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    println!("method {:?} workload {workload}", method.name());
    println!("queries: {n}, mean selected CI: {:.3}", ci_sum / n as f64);
    println!(
        "allocations by interest class: high {:.1}%  medium {:.1}%  low {:.1}%",
        class_counts[0] as f64 / n as f64 * 100.0,
        class_counts[1] as f64 / n as f64 * 100.0,
        class_counts[2] as f64 / n as f64 * 100.0
    );
    println!(
        "final utilization by interest class: high {:.2}  medium {:.2}  low {:.2}",
        mean(&high_ut),
        mean(&med_ut),
        mean(&low_ut)
    );
    println!(
        "mean response time (no queueing of completions): {:.2}s",
        response_sum / n as f64
    );
}
