//! CI performance-regression gate.
//!
//! Re-measures the end-to-end shard-throughput benchmark (same
//! configuration as `benches/allocation.rs` and the committed
//! `BENCH_allocation.json`) and exits non-zero when allocations/s drops
//! more than the tolerance below the last committed trajectory record
//! for any shard count. When the baseline record also carries a
//! `transport` row (socket-transport wave round, PR-5 on) or `scale`
//! rows (`scale_1m` large-population points, PR-6 on), those are
//! re-measured and gated too — the transport row by its endpoints/ms
//! rate, the scale rows by allocations/s at each matching participant
//! count.
//!
//! ```text
//! cargo run --release -p sqlb-bench --bin perf_gate
//! ```
//!
//! * The baseline is the last record whose label is not `"latest"`
//!   (`"latest"` is the scratch label uncommitted `cargo bench` runs
//!   write) — a dirty working tree cannot silently become the gate.
//! * A baseline that is missing a swept shard count or carries a
//!   non-positive throughput (e.g. a corrupted file) is an error
//!   (exit 2), not a vacuous pass. Transport and scale rows are gated
//!   only when the baseline has them (older records predate them).
//! * Only the cheapest committed scale point is re-measured by default
//!   (a CI-budget smoke of the scale path); set `PERF_GATE_SCALE_FULL=1`
//!   to sweep every committed point, million-participant run included.
//! * `PERF_GATE_TOLERANCE` (a fraction, e.g. `0.35`) overrides the
//!   default tolerance for runners whose hardware differs substantially
//!   from the machine that produced the committed record.

use sqlb_bench::perf::{
    measure_obs_overhead, measure_scale, measure_shard_throughput, measure_transport_round,
    merge_best, parse_trajectory, regression_failures, scale_regression_failures, trajectory_path,
    transport_regression_failures, REGRESSION_TOLERANCE, SHARD_COUNTS, TRANSPORT_CONSUMERS,
};

fn main() {
    let path = trajectory_path();
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let records = parse_trajectory(&content);
    let Some(baseline) = records
        .iter()
        .rev()
        .find(|r| r.label != "latest")
        .or_else(|| records.last())
    else {
        eprintln!("perf_gate: {path} contains no trajectory record");
        std::process::exit(2);
    };

    // Validate the baseline before trusting it: a corrupted or truncated
    // record must fail the gate loudly instead of lowering the floor to 0.
    for &shards in &SHARD_COUNTS {
        match baseline.shards.iter().find(|b| b.mediator_shards == shards) {
            Some(row) if row.allocations_per_sec > 0.0 && row.allocations_per_sec.is_finite() => {}
            Some(row) => {
                eprintln!(
                    "perf_gate: baseline record \"{}\" has an unusable throughput {} for K={shards} \
                     — {path} is corrupted; regenerate it with \
                     `BENCH_LABEL=<pr> cargo bench -p sqlb-bench --bench allocation`",
                    baseline.label, row.allocations_per_sec
                );
                std::process::exit(2);
            }
            None => {
                eprintln!(
                    "perf_gate: baseline record \"{}\" is missing shard count K={shards} — \
                     {path} is incomplete; regenerate it",
                    baseline.label
                );
                std::process::exit(2);
            }
        }
    }

    let tolerance = match std::env::var("PERF_GATE_TOLERANCE") {
        Ok(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                eprintln!("perf_gate: PERF_GATE_TOLERANCE must be a fraction in [0, 1), got {raw}");
                std::process::exit(2);
            }
        },
        Err(_) => REGRESSION_TOLERANCE,
    };

    println!(
        "perf_gate: baseline record \"{}\" ({} shard counts), tolerance {:.0}%",
        baseline.label,
        baseline.shards.len(),
        tolerance * 100.0
    );
    let mut measured = measure_shard_throughput(5);
    if !regression_failures(baseline, &measured, tolerance).is_empty() {
        // A shard count came in below the floor: take a second best-of-5
        // pass and keep the best observation per count. Transient runner
        // contention disappears on the retry; a real regression does not.
        println!("perf_gate: below floor on first pass, taking a confirmation pass");
        let second = measure_shard_throughput(5);
        measured = merge_best(measured, &second);
    }
    for row in &measured {
        let base = baseline
            .shards
            .iter()
            .find(|b| b.mediator_shards == row.mediator_shards);
        println!(
            "  K={}: {:>10.1} allocations/s measured ({} queries, best {:.3} ms){}",
            row.mediator_shards,
            row.allocations_per_sec,
            row.issued_queries,
            row.best_wall_ms,
            match base {
                Some(b) => format!(
                    "  vs committed {:.1} ({:+.1}%)",
                    b.allocations_per_sec,
                    (row.allocations_per_sec / b.allocations_per_sec - 1.0) * 100.0
                ),
                None => "  (no committed baseline row)".to_string(),
            }
        );
    }

    let mut failures = regression_failures(baseline, &measured, tolerance);

    // Transport gate: the committed socket-transport wave round, compared
    // by endpoints/ms rate. Only for baselines that carry the row.
    match &baseline.transport {
        Some(base) if base.round_ms > 0.0 && base.round_ms.is_finite() => {
            let provider_endpoints = base.endpoints.saturating_sub(TRANSPORT_CONSUMERS as usize);
            let mut now = measure_transport_round(provider_endpoints as u32, 3);
            if !transport_regression_failures(base, &now, tolerance).is_empty() {
                println!("perf_gate: transport below floor on first pass, confirming");
                let second = measure_transport_round(provider_endpoints as u32, 3);
                // Keep the best observation per gated rate: transient
                // runner contention disappears on the retry.
                if second.round_ms < now.round_ms {
                    now.round_ms = second.round_ms;
                    now.median_ms = second.median_ms;
                }
                if second.pipelined_ms < now.pipelined_ms {
                    now.pipelined_ms = second.pipelined_ms;
                }
            }
            println!(
                "  transport: {} endpoints in {:.3} ms measured (median {}) vs committed {:.3} ms ({:+.1}%)",
                now.endpoints,
                now.round_ms,
                now.median_ms
                    .map_or("n/a".to_string(), |m| format!("{m:.3} ms")),
                base.round_ms,
                (base.round_ms / now.round_ms - 1.0) * 100.0
            );
            match (now.pipelined_ms, base.pipelined_ms) {
                (Some(pipelined), Some(committed)) => println!(
                    "  transport (pipelined): {pipelined:.3} ms measured  vs committed \
                     {committed:.3} ms ({:+.1}%)",
                    (committed / pipelined - 1.0) * 100.0
                ),
                (Some(pipelined), None) => println!(
                    "  transport (pipelined): {pipelined:.3} ms measured  (no committed row yet)"
                ),
                _ => {}
            }
            failures.extend(transport_regression_failures(base, &now, tolerance));
        }
        Some(base) => {
            eprintln!(
                "perf_gate: baseline record \"{}\" has an unusable transport round {} ms — \
                 {path} is corrupted; regenerate it with \
                 `BENCH_LABEL=<pr> cargo bench -p sqlb-bench --bench transport_scaling`",
                baseline.label, base.round_ms
            );
            std::process::exit(2);
        }
        None => println!("  transport: no committed baseline row — skipped"),
    }

    // Scale gate: the committed scale_1m points. Re-measuring the million-
    // participant point on every CI run is too slow, so by default only
    // the cheapest committed point runs; the rest are gated only under
    // PERF_GATE_SCALE_FULL=1 (scale_regression_failures ignores baseline
    // points with no fresh measurement).
    if baseline.scale.is_empty() {
        println!("  scale: no committed baseline rows — skipped");
    } else {
        let full = std::env::var("PERF_GATE_SCALE_FULL").is_ok_and(|v| v == "1");
        let mut points: Vec<u64> = baseline.scale.iter().map(|s| s.participants).collect();
        points.sort_unstable();
        if !full {
            points.truncate(1);
        }
        let mut scale_measured = Vec::new();
        for participants in points {
            let row = measure_scale(participants);
            let base = baseline
                .scale
                .iter()
                .find(|b| b.participants == participants);
            println!(
                "  scale {}: {:>10.1} allocations/s measured ({} queries, {:.1} bytes/participant){}",
                row.participants,
                row.allocations_per_sec,
                row.issued_queries,
                row.bytes_per_participant,
                match base {
                    Some(b) => format!(
                        "  vs committed {:.1} ({:+.1}%)",
                        b.allocations_per_sec,
                        (row.allocations_per_sec / b.allocations_per_sec - 1.0) * 100.0
                    ),
                    None => "  (no committed baseline row)".to_string(),
                }
            );
            scale_measured.push(row);
        }
        failures.extend(scale_regression_failures(
            &baseline.scale,
            &scale_measured,
            tolerance,
        ));
    }

    // Observability check: re-measure the instrumented-vs-off overhead on
    // the single-shard hot path. measure_obs_overhead panics (non-zero
    // exit) if instrumentation moves the report digest, so the
    // observation-only contract is gated here too; the wall-clock delta
    // itself is informational — the shard gate above already runs with
    // instrumentation off, so a disabled-path slowdown trips the main
    // tolerance, not a dedicated one.
    let obs = measure_obs_overhead(5);
    println!(
        "  obs overhead: off {:.3} ms, on {:.3} ms ({:+.2}%) — digests identical{}",
        obs.off_wall_ms,
        obs.on_wall_ms,
        obs.overhead_pct,
        match &baseline.obs {
            Some(b) => format!("  vs committed {:+.2}%", b.overhead_pct),
            None => "  (no committed baseline row)".to_string(),
        }
    );

    if failures.is_empty() {
        println!("perf_gate: OK — no gated row regressed past the tolerance");
        return;
    }
    eprintln!("perf_gate: FAILED");
    for failure in &failures {
        eprintln!("  {failure}");
    }
    std::process::exit(1);
}
