//! Regenerates Table 3: the providers' reasons for leaving the system at a
//! workload of 80 % of the total system capacity, broken down by consumer
//! interest, adaptation and capacity class.

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::table3_departure_breakdown;

fn main() {
    let args = parse_env_args();
    let workload = args
        .workloads
        .and_then(|w| w.first().copied())
        .unwrap_or(0.8);
    match table3_departure_breakdown(args.scale, workload) {
        Ok(result) => print!("{}", result.to_text()),
        Err(err) => {
            eprintln!("table3_departures failed: {err}");
            std::process::exit(1);
        }
    }
}
