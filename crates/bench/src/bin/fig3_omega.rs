//! Regenerates Figure 3: the values the trade-off weight ω can take
//! (Equation 6) as a function of consumer and provider satisfaction.

use sqlb_sim::experiments::{fig3_omega_surface, fig3_to_text};

fn main() {
    let points = fig3_omega_surface(41);
    println!("# Figure 3: omega = ((delta_s(c) - delta_s(p)) + 1) / 2");
    print!("{}", fig3_to_text(&points));
}
