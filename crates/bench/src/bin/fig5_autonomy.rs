//! Regenerates Figure 5: impact of providers' departures on performance.
//!
//! * `--panel a` — response times when providers may leave by
//!   dissatisfaction or starvation (Figure 5(a));
//! * `--panel b` — response times when providers may also leave by
//!   overutilization (Figure 5(b));
//! * `--panel c` — percentage of provider departures (Figure 5(c)).
//!
//! Without `--panel`, all three are printed.

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::{workload_sweep, AutonomySetting, PAPER_WORKLOADS};

fn main() {
    let args = parse_env_args();
    let workloads = args.workloads.unwrap_or_else(|| PAPER_WORKLOADS.to_vec());
    let panel = args.panel.map(|c| c.to_ascii_lowercase());

    let run = |setting: AutonomySetting| match workload_sweep(args.scale, &workloads, setting) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("fig5_autonomy failed: {err}");
            std::process::exit(1);
        }
    };

    if matches!(panel, None | Some('a')) {
        let result = run(AutonomySetting::DissatisfactionAndStarvation);
        println!("# Figure 5(a): response times, departures by dissatisfaction or starvation");
        print!("{}", result.response_times_to_text());
        println!();
    }
    if matches!(panel, None | Some('b') | Some('c')) {
        let result = run(AutonomySetting::AllReasons);
        if matches!(panel, None | Some('b')) {
            println!(
                "# Figure 5(b): response times, departures by dissatisfaction, starvation, or overutilization"
            );
            print!("{}", result.response_times_to_text());
            println!();
        }
        if matches!(panel, None | Some('c')) {
            println!("# Figure 5(c): number of providers' departures");
            print!("{}", result.provider_departures_to_text());
            println!();
        }
    }
}
