//! Prints Table 2: the simulation parameters of the paper's evaluation.

use sqlb_sim::experiments::table2_parameters;
use sqlb_sim::SimulationConfig;

fn main() {
    print!("{}", table2_parameters(&SimulationConfig::paper(42)));
}
