//! Regenerates Figure 4(i): response times versus workload with captive
//! participants, for SQLB, Capacity based and Mariposa-like.

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::{workload_sweep, AutonomySetting, PAPER_WORKLOADS};

fn main() {
    let args = parse_env_args();
    let workloads = args.workloads.unwrap_or_else(|| PAPER_WORKLOADS.to_vec());
    match workload_sweep(args.scale, &workloads, AutonomySetting::Captive) {
        Ok(result) => {
            println!("# Figure 4(i): ensured response times with captive participants");
            print!("{}", result.response_times_to_text());
        }
        Err(err) => {
            eprintln!("fig4i_response_time failed: {err}");
            std::process::exit(1);
        }
    }
}
