//! Scenario-campaign runner and CI drift gate.
//!
//! Runs the named scenario matrix of `sqlb_sim::campaign` (scenarios ×
//! allocation methods, one fixed seeded configuration) and checks or
//! records the committed `BENCH_campaign.json`:
//!
//! ```text
//! cargo run --release -p sqlb-bench --bin campaign -- --check   # default
//! cargo run --release -p sqlb-bench --bin campaign -- --smoke
//! cargo run --release -p sqlb-bench --bin campaign -- --write
//! ```
//!
//! * `--check` re-runs the full matrix and exits non-zero when any
//!   digest differs from the committed file (the engine is bit-exact
//!   per seed, so any drift is a behavioral change to re-commit
//!   deliberately).
//! * `--smoke` is the CI-budget subset: every scenario under the SQLB
//!   method only, identical configurations, gated the same way.
//! * `--write` re-runs the full matrix and rewrites the committed file.

use sqlb_sim::campaign::{
    campaign_digest, campaign_path, drift, parse_campaign, render_campaign, run_campaign,
    run_smoke, CampaignEntry,
};

enum Mode {
    Check,
    Smoke,
    Write,
}

fn measure(mode: &Mode) -> Vec<CampaignEntry> {
    let result = match mode {
        Mode::Smoke => run_smoke(),
        Mode::Check | Mode::Write => run_campaign(),
    };
    match result {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("campaign: run failed: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mode = match std::env::args().nth(1).as_deref() {
        None | Some("--check") => Mode::Check,
        Some("--smoke") => Mode::Smoke,
        Some("--write") => Mode::Write,
        Some(other) => {
            eprintln!("campaign: unknown mode {other} (use --check, --smoke or --write)");
            std::process::exit(2);
        }
    };
    let path = campaign_path();
    let entries = measure(&mode);
    for entry in &entries {
        println!(
            "{:<22} {:<16} digest {:#018x}  issued {:>5}  retention {:.4}  \
             satisfaction {:+.4}  balance {:.4}  churn -{}/+{}",
            entry.scenario,
            entry.method,
            entry.digest,
            entry.issued_queries,
            entry.retention,
            entry.satisfaction,
            entry.utilization_balance,
            entry.churn_departures,
            entry.churn_rejoins,
        );
    }
    println!("campaign digest: {:#018x}", campaign_digest(&entries));

    match mode {
        Mode::Write => {
            if let Err(e) = std::fs::write(path, render_campaign(&entries)) {
                eprintln!("campaign: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("campaign: wrote {} entries to {path}", entries.len());
        }
        Mode::Check | Mode::Smoke => {
            let content = match std::fs::read_to_string(path) {
                Ok(content) => content,
                Err(e) => {
                    eprintln!("campaign: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let committed = parse_campaign(&content);
            let failures = drift(&entries, &committed);
            if failures.is_empty() {
                println!(
                    "campaign: OK — {} entries match the committed digests",
                    entries.len()
                );
            } else {
                for failure in &failures {
                    eprintln!("campaign: DRIFT — {failure}");
                }
                std::process::exit(1);
            }
        }
    }
}
