//! Regenerates Figure 4(a)–(h): the quality metrics for a workload ramping
//! from 30 % to 100 % of the total system capacity with captive
//! participants, for SQLB, Capacity based and Mariposa-like.
//!
//! Usage: `--panel a..h` selects one panel (default: print all panels),
//! `--scale quick|default|paper` selects the experiment scale.

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::{fig4_captive_ramp, Fig4Panel};

fn main() {
    let args = parse_env_args();
    let result = match fig4_captive_ramp(args.scale) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("fig4_captive failed: {err}");
            std::process::exit(1);
        }
    };
    let panels: Vec<Fig4Panel> = match args.panel.and_then(Fig4Panel::from_letter) {
        Some(panel) => vec![panel],
        None => Fig4Panel::ALL.to_vec(),
    };
    for panel in panels {
        print!("{}", result.panel_to_text(panel));
        println!();
    }
}
