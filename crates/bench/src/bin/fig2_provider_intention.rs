//! Regenerates Figure 2: the provider-intention surface (Definition 8) over
//! preference × utilization for a fixed provider satisfaction of 0.5.

use sqlb_sim::experiments::{fig2_provider_intention_surface, fig2_to_text};

fn main() {
    let points = fig2_provider_intention_surface(0.5, 41);
    println!("# Figure 2: provider intention pi_p(q) for satisfaction 0.5");
    println!("# (preference in [-1,1], utilization in [0,2])");
    print!("{}", fig2_to_text(&points));
}
