//! Prints a bit-exact digest of simulation reports over a fixed
//! configuration matrix, optionally across all mediation backends
//! (threaded, reactor, and the loopback socket transport).
//!
//! The digest ([`sqlb_sim::SimulationReport::digest`]) folds the raw
//! IEEE-754 bits of every recorded metric series (plus the query
//! counters) into an FNV-1a hash, so two builds produce the same line if
//! and only if their engines are bit-identical for that configuration.
//! This is the tool behind two acceptance bars:
//!
//! * **"K=1 must stay bit-identical across PRs"** — run it on the
//!   previous commit and on the working tree and diff the output;
//! * **"all mediation backends must agree"** — run it with `--backends`:
//!   every configuration of the matrix is executed on the inline path,
//!   the legacy threaded runtime and the asynchronous reactor, and the
//!   process exits non-zero if any digest disagrees.
//!
//! ```text
//! cargo run --release -p sqlb-bench --bin report_digest
//! cargo run --release -p sqlb-bench --bin report_digest -- --backends
//! ```

use sqlb_sim::engine::run_simulation;
use sqlb_sim::{MediationMode, Method, SimulationConfig, WorkloadPattern};

fn main() {
    let compare_backends = std::env::args().any(|arg| arg == "--backends");
    let methods = [
        Method::Sqlb,
        Method::CapacityBased,
        Method::MariposaLike,
        Method::Random,
        Method::RoundRobin,
    ];
    let mut mismatches = 0u32;
    for method in methods {
        for (seed, duration, workload) in [
            (1u64, 300.0, WorkloadPattern::Fixed(0.5)),
            (9, 300.0, WorkloadPattern::paper_ramp()),
            (17, 500.0, WorkloadPattern::Fixed(0.8)),
        ] {
            let config = SimulationConfig::scaled(16, 32, duration, seed).with_workload(workload);
            let report = run_simulation(config, method).expect("valid config");
            let digest = report.digest();
            println!(
                "{:<14} seed={seed:<3} duration={duration:<6} digest={digest:016x}",
                report.method
            );
            if !compare_backends {
                continue;
            }
            for mode in [
                MediationMode::Threaded,
                MediationMode::Reactor,
                MediationMode::Socket,
            ] {
                let mediated = run_simulation(config.with_mediation(mode), method)
                    .expect("valid config")
                    .digest();
                let verdict = if mediated == digest { "ok" } else { "MISMATCH" };
                println!(
                    "    {:<10} seed={seed:<3} duration={duration:<6} digest={mediated:016x} {verdict}",
                    mode.name()
                );
                if mediated != digest {
                    mismatches += 1;
                }
            }
        }
    }
    if compare_backends {
        if mismatches > 0 {
            eprintln!("{mismatches} backend digest(s) diverged from the inline engine");
            std::process::exit(1);
        }
        println!("all backends bit-identical across the matrix");
    }
}
