//! Prints a bit-exact digest of simulation reports over a fixed
//! configuration matrix.
//!
//! The digest folds the raw IEEE-754 bits of every recorded metric series
//! (plus the query counters) into an FNV-1a hash, so two builds produce
//! the same line if and only if their engines are bit-identical for that
//! configuration. This is the tool behind the "K=1 must stay bit-identical
//! across PRs" acceptance bar: run it on the previous commit and on the
//! working tree and diff the output.
//!
//! ```text
//! cargo run --release -p sqlb-bench --bin report_digest
//! ```

use sqlb_sim::engine::run_simulation;
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn write_series(&mut self, series: &sqlb_metrics::TimeSeries) {
        for point in series.points() {
            self.write_f64(point.time);
            self.write_f64(point.value);
        }
    }
}

fn digest(report: &sqlb_sim::SimulationReport) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(report.issued_queries);
    h.write_u64(report.completed_queries);
    h.write_u64(report.unallocated_queries);
    h.write_u64(report.provider_departures.len() as u64);
    h.write_u64(report.consumer_departures.len() as u64);
    h.write_f64(report.mean_response_time());
    let s = &report.series;
    for series in [
        &s.provider_satisfaction_intention_mean,
        &s.provider_satisfaction_preference_mean,
        &s.provider_allocation_satisfaction_preference_mean,
        &s.provider_allocation_satisfaction_intention_mean,
        &s.provider_satisfaction_fairness,
        &s.consumer_allocation_satisfaction_mean,
        &s.consumer_satisfaction_mean,
        &s.consumer_satisfaction_fairness,
        &s.utilization_mean,
        &s.utilization_fairness,
        &s.workload_fraction,
        &s.active_providers,
        &s.active_consumers,
    ] {
        h.write_series(series);
    }
    h.0
}

fn main() {
    let methods = [
        Method::Sqlb,
        Method::CapacityBased,
        Method::MariposaLike,
        Method::Random,
        Method::RoundRobin,
    ];
    for method in methods {
        for (seed, duration, workload) in [
            (1u64, 300.0, WorkloadPattern::Fixed(0.5)),
            (9, 300.0, WorkloadPattern::paper_ramp()),
            (17, 500.0, WorkloadPattern::Fixed(0.8)),
        ] {
            let config = SimulationConfig::scaled(16, 32, duration, seed).with_workload(workload);
            let report = run_simulation(config, method).expect("valid config");
            println!(
                "{:<14} seed={seed:<3} duration={duration:<6} digest={:016x}",
                report.method,
                digest(&report)
            );
        }
    }
}
