//! The million-participant scale benchmark (`scale_1m`).
//!
//! Runs the scale points of [`perf::SCALE_POINTS`] — 10^5 and 10^6
//! participants, split 1:2 between consumers and providers, with
//! procedural (hash-derived) consumer preferences and providers
//! partitioned into paper-sized shards — and records throughput plus the
//! measured bytes-per-participant footprint into `BENCH_allocation.json`
//! (label from `BENCH_LABEL`, default `"latest"`).
//!
//! ```text
//! BENCH_LABEL=PR-6 cargo run --release -p sqlb-bench --bin scale_1m
//! cargo run --release -p sqlb-bench --bin scale_1m -- --smoke
//! ```
//!
//! `--smoke` runs only the cheap 10^5 point and does not touch the
//! committed record — the CI job that proves the scale path stays alive
//! without paying for a million-participant run.

use sqlb_bench::perf;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let points: &[u64] = if smoke {
        &perf::SCALE_POINTS[..1]
    } else {
        &perf::SCALE_POINTS
    };

    let mut rows = Vec::new();
    for &participants in points {
        println!("scale_1m: running {participants} participants…");
        let row = perf::measure_scale(participants);
        println!(
            "  {} participants ({} consumers + {} providers, {} shards): \
             {} queries in {:.1} ms = {:.1} allocations/s, {:.1} bytes/participant",
            row.participants,
            row.consumers,
            row.providers,
            row.mediator_shards,
            row.issued_queries,
            row.wall_ms,
            row.allocations_per_sec,
            row.bytes_per_participant,
        );
        assert!(
            row.issued_queries > 0,
            "a scale run that allocates nothing measures nothing"
        );
        rows.push(row);
    }

    if smoke {
        println!("scale_1m: smoke run only — committed record left untouched");
        return;
    }

    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "latest".to_string());
    let path = perf::trajectory_path();
    let existing = std::fs::read_to_string(path)
        .map(|content| perf::parse_trajectory(&content))
        .unwrap_or_default();
    let records = perf::upsert_scale(existing, &label, rows);
    match std::fs::write(path, perf::render_trajectory(&records)) {
        Ok(()) => println!("scale_1m: recorded under label \"{label}\" in {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
