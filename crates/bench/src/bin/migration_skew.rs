//! Regenerates the cross-shard load-migration comparison: a skewed
//! workload mediated by K=4 shards with and without least-loaded routing
//! and provider migration.
//!
//! ```text
//! cargo run --release -p sqlb-bench --bin migration_skew -- --scale default
//! ```

use sqlb_bench::parse_env_args;
use sqlb_sim::experiments::migration_skew;

fn main() {
    let args = parse_env_args();
    let result = migration_skew(args.scale, 4, 0.7).expect("valid experiment configuration");
    print!("{}", result.to_text());
}
