//! # sqlb-bench
//!
//! Benchmark harness for the SQLB reproduction. It has two parts:
//!
//! * **Criterion micro-benchmarks** (`benches/`) for the hot paths of the
//!   framework: intention computation, scoring, the allocation methods and
//!   simulation steps.
//! * **Regeneration binaries** (`src/bin/`), one per figure/table of the
//!   paper's evaluation. Each prints the corresponding data series as a
//!   whitespace-separated table on stdout. Run, for example:
//!
//!   ```text
//!   cargo run --release -p sqlb-bench --bin fig4_captive -- --scale default --panel a
//!   cargo run --release -p sqlb-bench --bin fig5_autonomy -- --panel c
//!   cargo run --release -p sqlb-bench --bin table3_departures
//!   ```
//!
//!   Every binary accepts `--scale quick|default|paper` (the paper scale
//!   reproduces Table 2 exactly but takes minutes per figure).
//!
//! This module contains the tiny argument-parsing helpers shared by the
//! binaries.

#![warn(missing_docs)]

pub mod perf;

use sqlb_sim::experiments::ExperimentScale;

/// Parsed common command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Optional `--panel <letter>` selector (Figure 4 / Figure 5 panels).
    pub panel: Option<char>,
    /// Optional `--workloads 0.2,0.4,...` override.
    pub workloads: Option<Vec<f64>>,
    /// Optional `--seed <u64>` override.
    pub seed: Option<u64>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: ExperimentScale::default_scaled(),
            panel: None,
            workloads: None,
            seed: None,
        }
    }
}

/// Parses the common options from an iterator of arguments (excluding the
/// program name). Unknown options are ignored so binaries can add their
/// own.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> CommonArgs {
    let mut parsed = CommonArgs::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                if let Some(value) = iter.next() {
                    parsed.scale = parse_scale(&value);
                }
            }
            "--panel" => {
                if let Some(value) = iter.next() {
                    parsed.panel = value.chars().next();
                }
            }
            "--workloads" => {
                if let Some(value) = iter.next() {
                    let workloads: Vec<f64> = value
                        .split(',')
                        .filter_map(|w| w.trim().parse::<f64>().ok())
                        .collect();
                    if !workloads.is_empty() {
                        parsed.workloads = Some(workloads);
                    }
                }
            }
            "--seed" => {
                if let Some(value) = iter.next() {
                    parsed.seed = value.trim().parse().ok();
                }
            }
            _ => {}
        }
    }
    if let Some(seed) = parsed.seed {
        parsed.scale.seed = seed;
    }
    parsed
}

/// Parses a scale name (`quick`, `default`, `paper`).
pub fn parse_scale(name: &str) -> ExperimentScale {
    match name.to_ascii_lowercase().as_str() {
        "paper" | "full" => ExperimentScale::paper(),
        "quick" | "test" => ExperimentScale::quick(),
        _ => ExperimentScale::default_scaled(),
    }
}

/// Convenience used by the binaries: parse `std::env::args()`.
pub fn parse_env_args() -> CommonArgs {
    parse_args(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CommonArgs {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_arguments() {
        let a = args(&[]);
        assert_eq!(a.scale, ExperimentScale::default_scaled());
        assert_eq!(a.panel, None);
        assert_eq!(a.workloads, None);
    }

    #[test]
    fn parses_scale_names() {
        assert_eq!(parse_scale("paper"), ExperimentScale::paper());
        assert_eq!(parse_scale("QUICK"), ExperimentScale::quick());
        assert_eq!(parse_scale("default"), ExperimentScale::default_scaled());
        assert_eq!(parse_scale("garbage"), ExperimentScale::default_scaled());
    }

    #[test]
    fn parses_panel_and_workloads_and_seed() {
        let a = args(&[
            "--scale",
            "quick",
            "--panel",
            "c",
            "--workloads",
            "0.2, 0.5,0.8",
            "--seed",
            "7",
        ]);
        assert_eq!(a.scale.consumers, ExperimentScale::quick().consumers);
        assert_eq!(a.panel, Some('c'));
        assert_eq!(a.workloads, Some(vec![0.2, 0.5, 0.8]));
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.scale.seed, 7);
    }

    #[test]
    fn ignores_unknown_options_and_bad_values() {
        let a = args(&["--unknown", "x", "--workloads", "not-a-number"]);
        assert_eq!(a.workloads, None);
        assert_eq!(a.scale, ExperimentScale::default_scaled());
    }
}
