//! Shard-throughput measurement and the tracked performance trajectory.
//!
//! `BENCH_allocation.json` at the repository root is the committed record
//! of end-to-end allocation throughput over time: one record per PR, each
//! with a row per mediator shard count. Two consumers share this module:
//!
//! * the criterion bench `benches/allocation.rs` re-measures the current
//!   tree and appends/refreshes a record (label from `BENCH_LABEL`,
//!   default `"latest"`) while preserving the committed history;
//! * the CI binary `perf_gate` re-measures and **fails** when throughput
//!   drops more than [`REGRESSION_TOLERANCE`] below the last committed
//!   record.
//!
//! The workspace vendors no JSON library, so the file is rendered and
//! parsed here; the format is owned by this module and pinned by
//! round-trip tests.

use std::time::{Duration, Instant};

use sqlb_sim::engine::run_simulation;
use sqlb_sim::{Method, SimulationConfig, WorkloadPattern};

/// Shard counts the throughput comparison sweeps.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Consumers in the benchmark population.
pub const CONSUMERS: u32 = 32;
/// Providers in the benchmark population.
pub const PROVIDERS: u32 = 64;
/// Virtual duration of one benchmark run, in seconds.
pub const DURATION_SECS: f64 = 400.0;
/// Workload fraction of the benchmark runs.
pub const WORKLOAD: f64 = 0.6;
/// Seed of the benchmark runs.
pub const SEED: u64 = 7;
/// Allocation method under measurement.
pub const METHOD: Method = Method::Sqlb;
/// Allowed throughput drop relative to the committed baseline (20 %).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// One measured row: end-to-end allocation throughput at a shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeasurement {
    /// Number of mediator shards.
    pub mediator_shards: usize,
    /// Queries issued by the measured run (identical across repetitions —
    /// the engine is deterministic per seed).
    pub issued_queries: u64,
    /// Best-of-N wall clock for the whole run, in milliseconds.
    pub best_wall_ms: f64,
    /// `issued_queries / best_wall` in allocations per second.
    pub allocations_per_sec: f64,
}

/// One measured socket-transport wave round (the `transport_scaling`
/// bench): how long one mediation wave touching every endpoint takes
/// over loopback sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportMeasurement {
    /// Participant endpoints touched by the wave.
    pub endpoints: usize,
    /// Participant-host connections the endpoints were multiplexed over.
    pub hosts: usize,
    /// Best-of-N wall clock of one full wave round, in milliseconds.
    pub round_ms: f64,
}

/// One labelled record of the performance trajectory (one per PR).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Record label (e.g. `"PR-2"`).
    pub label: String,
    /// One measurement per entry of [`SHARD_COUNTS`].
    pub shards: Vec<ShardMeasurement>,
    /// The socket-transport round measurement, for records from PR-5 on.
    pub transport: Option<TransportMeasurement>,
}

/// The benchmark configuration for a shard count.
pub fn bench_config(shards: usize) -> SimulationConfig {
    SimulationConfig::scaled(CONSUMERS, PROVIDERS, DURATION_SECS, SEED)
        .with_workload(WorkloadPattern::Fixed(WORKLOAD))
        .with_mediator_shards(shards)
}

/// Measures allocation throughput for every entry of [`SHARD_COUNTS`],
/// best-of-`runs_per_count` wall clock per entry.
pub fn measure_shard_throughput(runs_per_count: usize) -> Vec<ShardMeasurement> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let config = bench_config(shards);
            // One untimed warmup run per shard count: the first run pays
            // for page faults and allocator growth that best-of-N timing
            // should not include.
            let _ = run_simulation(config, METHOD).expect("warmup run");
            let mut best = Duration::MAX;
            let mut issued = 0u64;
            for _ in 0..runs_per_count.max(1) {
                let start = Instant::now();
                let report = run_simulation(config, METHOD).expect("benchmark run");
                let elapsed = start.elapsed();
                issued = report.issued_queries;
                best = best.min(elapsed);
            }
            ShardMeasurement {
                mediator_shards: shards,
                issued_queries: issued,
                best_wall_ms: best.as_secs_f64() * 1e3,
                allocations_per_sec: issued as f64 / best.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the full trajectory file.
pub fn render_trajectory(records: &[TrajectoryRecord]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"allocation_throughput\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"consumers\": {CONSUMERS}, \"providers\": {PROVIDERS}, \"duration_secs\": {DURATION_SECS}, \"workload\": {WORKLOAD}, \"method\": \"{}\"}},\n",
        METHOD.name(),
    ));
    out.push_str("  \"records\": [\n");
    for (r, record) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"shards\": [\n",
            record.label
        ));
        for (i, row) in record.shards.iter().enumerate() {
            let comma = if i + 1 < record.shards.len() { "," } else { "" };
            out.push_str(&format!(
                "      {{\"mediator_shards\": {}, \"issued_queries\": {}, \"best_wall_ms\": {:.3}, \"allocations_per_sec\": {:.1}}}{comma}\n",
                row.mediator_shards, row.issued_queries, row.best_wall_ms, row.allocations_per_sec,
            ));
        }
        let comma = if r + 1 < records.len() { "," } else { "" };
        match &record.transport {
            Some(transport) => out.push_str(&format!(
                "    ], \"transport\": {{\"endpoints\": {}, \"hosts\": {}, \"round_ms\": {:.3}}}}}{comma}\n",
                transport.endpoints, transport.hosts, transport.round_ms,
            )),
            None => out.push_str(&format!("    ]}}{comma}\n")),
        }
    }
    out.push_str("  ]\n}\n");
    out
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start_matches([':', ' ', '"']);
    let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses a trajectory file produced by [`render_trajectory`] (the
/// pre-trajectory single-record format is accepted too: its shard rows
/// are collected under a `"PR-1"` label).
pub fn parse_trajectory(content: &str) -> Vec<TrajectoryRecord> {
    let mut records: Vec<TrajectoryRecord> = Vec::new();
    for line in content.lines() {
        if let Some(label) = field(line, "\"label\"") {
            records.push(TrajectoryRecord {
                label: label.to_string(),
                shards: Vec::new(),
                transport: None,
            });
        }
        if line.contains("\"transport\"") {
            if let Some(record) = records.last_mut() {
                record.transport = Some(TransportMeasurement {
                    endpoints: field(line, "\"endpoints\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    hosts: field(line, "\"hosts\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    round_ms: field(line, "\"round_ms\"")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0.0),
                });
            }
        }
        if line.contains("\"mediator_shards\"") {
            let row = ShardMeasurement {
                mediator_shards: field(line, "\"mediator_shards\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                issued_queries: field(line, "\"issued_queries\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                best_wall_ms: field(line, "\"best_wall_ms\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                allocations_per_sec: field(line, "\"allocations_per_sec\"")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
            };
            if records.is_empty() {
                records.push(TrajectoryRecord {
                    label: "PR-1".to_string(),
                    shards: Vec::new(),
                    transport: None,
                });
            }
            records.last_mut().expect("record exists").shards.push(row);
        }
    }
    records
}

/// Replaces the record with `label` (or appends it) and returns the new
/// trajectory. A transport measurement already attached to the record is
/// preserved (the shard and transport benches write independently).
pub fn upsert_record(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    shards: Vec<ShardMeasurement>,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.shards = shards,
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards,
            transport: None,
        }),
    }
    records
}

/// Attaches a transport round measurement to the record with `label`
/// (creating the record, with no shard rows yet, if needed).
pub fn upsert_transport(
    mut records: Vec<TrajectoryRecord>,
    label: &str,
    transport: TransportMeasurement,
) -> Vec<TrajectoryRecord> {
    match records.iter_mut().find(|r| r.label == label) {
        Some(existing) => existing.transport = Some(transport),
        None => records.push(TrajectoryRecord {
            label: label.to_string(),
            shards: Vec::new(),
            transport: Some(transport),
        }),
    }
    records
}

/// Merges two measurement passes, keeping the best (fastest) observation
/// per shard count. Used by the regression gate to absorb transient
/// contention on shared CI runners: a genuine regression stays slow on
/// every pass, noise does not.
pub fn merge_best(a: Vec<ShardMeasurement>, b: &[ShardMeasurement]) -> Vec<ShardMeasurement> {
    a.into_iter()
        .map(
            |row| match b.iter().find(|m| m.mediator_shards == row.mediator_shards) {
                Some(other) if other.allocations_per_sec > row.allocations_per_sec => other.clone(),
                _ => row,
            },
        )
        .collect()
}

/// Compares a fresh measurement against a baseline record: returns one
/// human-readable failure per shard count whose throughput dropped more
/// than `tolerance` below the baseline.
pub fn regression_failures(
    baseline: &TrajectoryRecord,
    measured: &[ShardMeasurement],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for base in &baseline.shards {
        let Some(now) = measured
            .iter()
            .find(|m| m.mediator_shards == base.mediator_shards)
        else {
            failures.push(format!(
                "K={}: baseline has a row but nothing was measured",
                base.mediator_shards
            ));
            continue;
        };
        let floor = base.allocations_per_sec * (1.0 - tolerance);
        if now.allocations_per_sec < floor {
            failures.push(format!(
                "K={}: {:.1} allocations/s is below the regression floor {:.1} \
                 ({:.1} committed in record \"{}\", tolerance {:.0}%)",
                base.mediator_shards,
                now.allocations_per_sec,
                floor,
                base.allocations_per_sec,
                baseline.label,
                tolerance * 100.0,
            ));
        }
    }
    failures
}

/// Path of the committed trajectory file (repo root).
pub fn trajectory_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_allocation.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, throughput: f64) -> TrajectoryRecord {
        TrajectoryRecord {
            label: label.to_string(),
            transport: None,
            shards: vec![
                ShardMeasurement {
                    mediator_shards: 1,
                    issued_queries: 5753,
                    best_wall_ms: 40.0,
                    allocations_per_sec: throughput,
                },
                ShardMeasurement {
                    mediator_shards: 2,
                    issued_queries: 5753,
                    best_wall_ms: 20.0,
                    allocations_per_sec: throughput * 2.0,
                },
            ],
        }
    }

    #[test]
    fn trajectory_round_trips_through_render_and_parse() {
        let records = vec![record("PR-1", 99000.0), record("PR-2", 150000.0)];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "PR-1");
        assert_eq!(parsed[1].label, "PR-2");
        assert_eq!(parsed[0].shards.len(), 2);
        assert_eq!(parsed[1].shards[0].mediator_shards, 1);
        assert_eq!(parsed[1].shards[0].issued_queries, 5753);
        assert!((parsed[1].shards[0].allocations_per_sec - 150000.0).abs() < 0.1);
        assert!((parsed[0].shards[1].best_wall_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn parse_accepts_the_legacy_single_record_format() {
        let legacy = r#"{
  "benchmark": "allocation_throughput",
  "config": {"consumers": 32, "providers": 64},
  "shards": [
    {"mediator_shards": 1, "issued_queries": 5753, "best_wall_ms": 58.086, "allocations_per_sec": 99043.6},
    {"mediator_shards": 8, "issued_queries": 5753, "best_wall_ms": 13.339, "allocations_per_sec": 431286.4}
  ]
}"#;
        let parsed = parse_trajectory(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].label, "PR-1");
        assert_eq!(parsed[0].shards.len(), 2);
        assert!((parsed[0].shards[0].allocations_per_sec - 99043.6).abs() < 0.1);
        assert_eq!(parsed[0].shards[1].mediator_shards, 8);
    }

    #[test]
    fn transport_measurements_round_trip_and_survive_shard_upserts() {
        let mut with_transport = record("PR-5", 180000.0);
        with_transport.transport = Some(TransportMeasurement {
            endpoints: 10_304,
            hosts: 8,
            round_ms: 41.5,
        });
        let records = vec![record("PR-4", 170000.0), with_transport.clone()];
        let parsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].transport, None, "older records carry none");
        let transport = parsed[1].transport.as_ref().unwrap();
        assert_eq!(transport.endpoints, 10_304);
        assert_eq!(transport.hosts, 8);
        assert!((transport.round_ms - 41.5).abs() < 1e-9);

        // Re-measuring the shard rows must not drop the transport row.
        let records = upsert_record(parsed, "PR-5", record("PR-5", 190000.0).shards);
        assert!(records[1].transport.is_some());
        // And the transport row can be written first, creating the record.
        let records = upsert_transport(
            Vec::new(),
            "PR-6",
            TransportMeasurement {
                endpoints: 1,
                hosts: 1,
                round_ms: 0.5,
            },
        );
        assert_eq!(records[0].label, "PR-6");
        assert!(records[0].shards.is_empty());
        let reparsed = parse_trajectory(&render_trajectory(&records));
        assert_eq!(reparsed[0].transport.as_ref().unwrap().endpoints, 1);
    }

    #[test]
    fn upsert_replaces_matching_label_and_appends_new() {
        let records = vec![record("PR-1", 99000.0)];
        let records = upsert_record(records, "PR-2", record("PR-2", 150000.0).shards);
        assert_eq!(records.len(), 2);
        let records = upsert_record(records, "PR-2", record("PR-2", 160000.0).shards);
        assert_eq!(records.len(), 2);
        assert!((records[1].shards[0].allocations_per_sec - 160000.0).abs() < 0.1);
    }

    #[test]
    fn merge_best_keeps_the_faster_observation_per_shard_count() {
        let first = record("a", 90000.0).shards;
        let mut second = record("b", 100000.0).shards;
        second[1].allocations_per_sec = 100.0; // second pass slower at K=2
        let merged = merge_best(first, &second);
        assert!((merged[0].allocations_per_sec - 100000.0).abs() < 0.1);
        assert!((merged[1].allocations_per_sec - 180000.0).abs() < 0.1);
    }

    #[test]
    fn regression_gate_trips_only_past_tolerance() {
        let baseline = record("PR-2", 100000.0);
        // 15 % below: fine at 20 % tolerance.
        let ok = vec![
            ShardMeasurement {
                mediator_shards: 1,
                issued_queries: 5753,
                best_wall_ms: 47.0,
                allocations_per_sec: 85000.0,
            },
            ShardMeasurement {
                mediator_shards: 2,
                issued_queries: 5753,
                best_wall_ms: 23.0,
                allocations_per_sec: 170000.0,
            },
        ];
        assert!(regression_failures(&baseline, &ok, REGRESSION_TOLERANCE).is_empty());
        // 25 % below on one shard count: trips.
        let bad = vec![
            ShardMeasurement {
                mediator_shards: 1,
                issued_queries: 5753,
                best_wall_ms: 53.0,
                allocations_per_sec: 75000.0,
            },
            ShardMeasurement {
                mediator_shards: 2,
                issued_queries: 5753,
                best_wall_ms: 23.0,
                allocations_per_sec: 170000.0,
            },
        ];
        let failures = regression_failures(&baseline, &bad, REGRESSION_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("K=1"));
        // A missing shard count is also a failure.
        let failures = regression_failures(&baseline, &ok[..1], REGRESSION_TOLERANCE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("K=2"));
    }
}
